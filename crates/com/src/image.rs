//! Modeled application binary images.
//!
//! Coign's binary rewriter makes two modifications to an application binary:
//! it inserts the Coign runtime DLL into the **first slot** of the
//! executable's import table (so the runtime loads and initializes before the
//! application or any of its DLLs), and it appends a **configuration record**
//! data segment holding profiling instructions, summarized profiles, the
//! classifier map, and eventually the chosen distribution.
//!
//! [`AppImage`] models exactly those aspects of a PE binary: a name, an
//! ordered import table, a set of named sections, and the list of component
//! classes the binary implements (standing in for the class table a real
//! binary would register).

use crate::codec::{Decoder, Encoder};
use crate::error::{ComError, ComResult};
use crate::guid::Clsid;

/// Name of the section holding the Coign configuration record.
pub const CONFIG_SECTION: &str = ".coign";

/// One import-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DllImport {
    /// Imported module name, e.g. `"ole32.dll"`.
    pub name: String,
}

impl DllImport {
    /// Creates an import entry.
    pub fn new(name: &str) -> Self {
        DllImport {
            name: name.to_string(),
        }
    }
}

/// A named data section appended to the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSection {
    /// Section name, e.g. [`CONFIG_SECTION`].
    pub name: String,
    /// Raw section contents.
    pub data: Vec<u8>,
}

/// A modeled application binary (executable plus its component DLLs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppImage {
    /// Application name, e.g. `"octarine.exe"`.
    pub name: String,
    /// DLL import table, in load order.
    pub imports: Vec<DllImport>,
    /// Data sections (the rewriter appends the configuration record here).
    pub sections: Vec<ConfigSection>,
    /// Component classes implemented by the binary.
    pub classes: Vec<Clsid>,
}

impl AppImage {
    /// Creates an image with a standard system import table.
    pub fn new(name: &str, classes: Vec<Clsid>) -> Self {
        AppImage {
            name: name.to_string(),
            imports: vec![
                DllImport::new("kernel32.dll"),
                DllImport::new("ole32.dll"),
                DllImport::new("user32.dll"),
            ],
            sections: Vec::new(),
            classes,
        }
    }

    /// Starts a fluent builder for programmatic image construction (used
    /// by synthetic application generators, where classes and imports
    /// accumulate incrementally rather than arriving as one vector).
    pub fn builder(name: &str) -> ImageBuilder {
        ImageBuilder {
            image: AppImage::new(name, Vec::new()),
        }
    }

    /// Returns true if the image imports the given module.
    pub fn has_import(&self, name: &str) -> bool {
        self.imports.iter().any(|imp| imp.name == name)
    }

    /// Inserts a module into the *first* import slot (so it loads before
    /// everything else). Idempotent: an existing entry is moved to front.
    pub fn insert_import_first(&mut self, name: &str) {
        self.imports.retain(|imp| imp.name != name);
        self.imports.insert(0, DllImport::new(name));
    }

    /// Removes an import entirely.
    pub fn remove_import(&mut self, name: &str) {
        self.imports.retain(|imp| imp.name != name);
    }

    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Option<&ConfigSection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Writes (or replaces) a section.
    pub fn set_section(&mut self, name: &str, data: Vec<u8>) {
        if let Some(s) = self.sections.iter_mut().find(|s| s.name == name) {
            s.data = data;
        } else {
            self.sections.push(ConfigSection {
                name: name.to_string(),
                data,
            });
        }
    }

    /// Removes a section; returns its former contents.
    pub fn remove_section(&mut self, name: &str) -> Option<Vec<u8>> {
        let idx = self.sections.iter().position(|s| s.name == name)?;
        Some(self.sections.remove(idx).data)
    }

    /// Shorthand: the Coign configuration record bytes, if present.
    pub fn config_record(&self) -> Option<&[u8]> {
        self.section(CONFIG_SECTION).map(|s| s.data.as_slice())
    }

    /// Shorthand: writes the Coign configuration record.
    pub fn set_config_record(&mut self, data: Vec<u8>) {
        self.set_section(CONFIG_SECTION, data);
    }

    /// Total modeled size of the image in bytes (for reporting).
    pub fn total_size(&self) -> usize {
        let imports: usize = self.imports.iter().map(|i| i.name.len() + 8).sum();
        let sections: usize = self
            .sections
            .iter()
            .map(|s| s.name.len() + s.data.len() + 16)
            .sum();
        64 + self.name.len() + imports + sections + self.classes.len() * 16
    }

    /// Serializes the image to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str("COIGNIMG");
        e.put_str(&self.name);
        e.put_seq(self.imports.len());
        for imp in &self.imports {
            e.put_str(&imp.name);
        }
        e.put_seq(self.sections.len());
        for s in &self.sections {
            e.put_str(&s.name);
            e.put_bytes(&s.data);
        }
        e.put_seq(self.classes.len());
        for c in &self.classes {
            e.put_guid(c.0);
        }
        e.finish()
    }

    /// Deserializes an image from bytes.
    pub fn decode(bytes: &[u8]) -> ComResult<Self> {
        let mut d = Decoder::new(bytes);
        let magic = d.get_str()?;
        if magic != "COIGNIMG" {
            return Err(ComError::Codec(format!("bad image magic {magic:?}")));
        }
        let name = d.get_str()?;
        let n_imports = d.get_seq(4)?;
        let mut imports = Vec::with_capacity(n_imports);
        for _ in 0..n_imports {
            imports.push(DllImport::new(&d.get_str()?));
        }
        let n_sections = d.get_seq(8)?;
        let mut sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name = d.get_str()?;
            let data = d.get_bytes()?;
            sections.push(ConfigSection { name, data });
        }
        let n_classes = d.get_seq(16)?;
        let mut classes = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            classes.push(Clsid(d.get_guid()?));
        }
        Ok(AppImage {
            name,
            imports,
            sections,
            classes,
        })
    }
}

/// Fluent constructor for [`AppImage`]: starts from the standard system
/// import table and accumulates classes, extra imports, and sections.
///
/// # Examples
///
/// ```
/// use coign_com::{AppImage, Clsid};
///
/// let image = AppImage::builder("gen-7-small.exe")
///     .class(Clsid::from_name("GenDoc"))
///     .classes([Clsid::from_name("GenStore")])
///     .import("odbc32.dll")
///     .build();
/// assert_eq!(image.classes.len(), 2);
/// assert!(image.has_import("odbc32.dll"));
/// ```
#[derive(Debug, Clone)]
pub struct ImageBuilder {
    image: AppImage,
}

impl ImageBuilder {
    /// Adds one component class.
    pub fn class(mut self, clsid: Clsid) -> Self {
        self.image.classes.push(clsid);
        self
    }

    /// Adds a batch of component classes, preserving order.
    pub fn classes<I: IntoIterator<Item = Clsid>>(mut self, clsids: I) -> Self {
        self.image.classes.extend(clsids);
        self
    }

    /// Appends an import-table entry (deduplicated; order of first
    /// appearance is kept, matching how a linker emits the table).
    pub fn import(mut self, name: &str) -> Self {
        if !self.image.has_import(name) {
            self.image.imports.push(DllImport::new(name));
        }
        self
    }

    /// Writes (or replaces) a named data section.
    pub fn section(mut self, name: &str, data: Vec<u8>) -> Self {
        self.image.set_section(name, data);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> AppImage {
        self.image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppImage {
        AppImage::new(
            "octarine.exe",
            vec![Clsid::from_name("Story"), Clsid::from_name("TableLayout")],
        )
    }

    #[test]
    fn new_image_has_system_imports() {
        let img = sample();
        assert!(img.has_import("ole32.dll"));
        assert!(img.config_record().is_none());
    }

    #[test]
    fn insert_first_places_at_slot_zero() {
        let mut img = sample();
        img.insert_import_first("coign_rte.dll");
        assert_eq!(img.imports[0].name, "coign_rte.dll");
        // Idempotent: re-inserting keeps exactly one entry, still first.
        img.insert_import_first("coign_rte.dll");
        assert_eq!(
            img.imports
                .iter()
                .filter(|i| i.name == "coign_rte.dll")
                .count(),
            1
        );
        assert_eq!(img.imports[0].name, "coign_rte.dll");
    }

    #[test]
    fn sections_write_replace_remove() {
        let mut img = sample();
        img.set_config_record(vec![1, 2, 3]);
        assert_eq!(img.config_record(), Some(&[1u8, 2, 3][..]));
        img.set_config_record(vec![9]);
        assert_eq!(img.config_record(), Some(&[9u8][..]));
        assert_eq!(img.sections.len(), 1);
        assert_eq!(img.remove_section(CONFIG_SECTION), Some(vec![9]));
        assert!(img.config_record().is_none());
        assert_eq!(img.remove_section(CONFIG_SECTION), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut img = sample();
        img.insert_import_first("coign_rte.dll");
        img.set_config_record(vec![5; 100]);
        let bytes = img.encode();
        let back = AppImage::decode(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AppImage::decode(&[0xde, 0xad]).is_err());
        let mut e = crate::codec::Encoder::new();
        e.put_str("WRONGMAG");
        assert!(AppImage::decode(&e.finish()).is_err());
    }

    #[test]
    fn builder_accumulates_and_dedups_imports() {
        let img = AppImage::builder("gen-1-small.exe")
            .class(Clsid::from_name("A"))
            .classes([Clsid::from_name("B"), Clsid::from_name("C")])
            .import("odbc32.dll")
            .import("odbc32.dll")
            .import("user32.dll") // already in the system table
            .section(".gen", vec![1, 2])
            .build();
        assert_eq!(img.classes.len(), 3);
        assert_eq!(
            img.imports
                .iter()
                .filter(|i| i.name == "odbc32.dll")
                .count(),
            1
        );
        assert_eq!(
            img.imports
                .iter()
                .filter(|i| i.name == "user32.dll")
                .count(),
            1
        );
        assert_eq!(img.section(".gen").unwrap().data, vec![1, 2]);
        // The builder path and the direct path agree on the system table.
        assert_eq!(img.imports[0].name, "kernel32.dll");
    }

    #[test]
    fn size_grows_with_config_record() {
        let mut img = sample();
        let before = img.total_size();
        img.set_config_record(vec![0; 1000]);
        assert!(img.total_size() >= before + 1000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn image_roundtrip(
            name in "[a-z]{1,12}\\.exe",
            imports in proptest::collection::vec("[a-z0-9_]{1,16}\\.dll", 0..8),
            data in proptest::collection::vec(any::<u8>(), 0..256),
            classes in proptest::collection::vec(any::<u128>(), 0..8),
        ) {
            let mut img = AppImage {
                name,
                imports: imports.iter().map(|s| DllImport::new(s)).collect(),
                sections: Vec::new(),
                classes: classes.into_iter().map(|g| Clsid(crate::guid::Guid(g))).collect(),
            };
            img.set_config_record(data);
            let back = AppImage::decode(&img.encode()).unwrap();
            prop_assert_eq!(back, img);
        }
    }
}
