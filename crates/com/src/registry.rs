//! The class registry: CLSID → class metadata and factory.
//!
//! Besides the factory function, each class records which **system API
//! families** its binary statically imports. Coign's profile analysis engine
//! performs static analysis on component binaries to find calls to known GUI
//! or storage APIs and pins such components to the client or server
//! respectively; the `imports` field is the simulation's stand-in for that
//! import-table scan.

use crate::error::{ComError, ComResult};
use crate::guid::Clsid;
use crate::idl::InterfaceDesc;
use crate::object::{ComObject, InstanceId};
use crate::runtime::ComRuntime;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Bit set of system API families a component binary imports.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ApiImports(pub u32);

impl ApiImports {
    /// No recognized system imports.
    pub const NONE: ApiImports = ApiImports(0);
    /// GUI APIs (User32/GDI32 equivalents) — pins a component to the client.
    pub const GUI: ApiImports = ApiImports(1);
    /// Storage APIs (file system) — pins a component to the server.
    pub const STORAGE: ApiImports = ApiImports(2);
    /// Database connectivity (ODBC) — pins a component to the server.
    pub const DATABASE: ApiImports = ApiImports(4);

    /// Union of two import sets.
    pub fn union(self, other: ApiImports) -> ApiImports {
        ApiImports(self.0 | other.0)
    }

    /// Returns true if all bits of `flags` are present.
    pub fn contains(self, flags: ApiImports) -> bool {
        self.0 & flags.0 == flags.0
    }

    /// Returns true if the component uses GUI APIs.
    pub fn uses_gui(self) -> bool {
        self.contains(ApiImports::GUI)
    }

    /// Returns true if the component uses storage or database APIs.
    pub fn uses_storage(self) -> bool {
        self.0 & (ApiImports::STORAGE.0 | ApiImports::DATABASE.0) != 0
    }
}

impl fmt::Debug for ApiImports {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.uses_gui() {
            parts.push("GUI");
        }
        if self.contains(ApiImports::STORAGE) {
            parts.push("STORAGE");
        }
        if self.contains(ApiImports::DATABASE) {
            parts.push("DATABASE");
        }
        if parts.is_empty() {
            parts.push("NONE");
        }
        write!(f, "ApiImports({})", parts.join("|"))
    }
}

/// Factory signature: builds the implementation object for a new instance.
pub type FactoryFn = dyn Fn(&ComRuntime, InstanceId) -> Arc<dyn ComObject> + Send + Sync;

/// Static metadata for a registered component class.
pub struct ClassDesc {
    /// Class identifier (derived from `name`).
    pub clsid: Clsid,
    /// Human-readable class name, e.g. `"SpriteCache"`.
    pub name: String,
    /// Interfaces the class implements.
    pub interfaces: Vec<Arc<InterfaceDesc>>,
    /// System API families the class binary statically imports.
    pub imports: ApiImports,
    /// Factory constructing the implementation.
    pub factory: Arc<FactoryFn>,
}

impl ClassDesc {
    /// Looks up an implemented interface by IID.
    pub fn interface(&self, iid: crate::guid::Iid) -> Option<&Arc<InterfaceDesc>> {
        self.interfaces.iter().find(|d| d.iid == iid)
    }
}

impl fmt::Debug for ClassDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassDesc")
            .field("name", &self.name)
            .field("interfaces", &self.interfaces.len())
            .field("imports", &self.imports)
            .finish()
    }
}

/// Registry of all component classes known to a runtime.
#[derive(Default)]
pub struct ClassRegistry {
    classes: RwLock<HashMap<Clsid, Arc<ClassDesc>>>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ClassRegistry::default()
    }

    /// Registers a class; returns its CLSID.
    ///
    /// Re-registering a name replaces the previous entry (tests rely on
    /// this to substitute instrumented factories).
    pub fn register(
        &self,
        name: &str,
        interfaces: Vec<Arc<InterfaceDesc>>,
        imports: ApiImports,
        factory: impl Fn(&ComRuntime, InstanceId) -> Arc<dyn ComObject> + Send + Sync + 'static,
    ) -> Clsid {
        let clsid = Clsid::from_name(name);
        let desc = Arc::new(ClassDesc {
            clsid,
            name: name.to_string(),
            interfaces,
            imports,
            factory: Arc::new(factory),
        });
        self.classes.write().insert(clsid, desc);
        clsid
    }

    /// Looks up a class by CLSID.
    pub fn get(&self, clsid: Clsid) -> ComResult<Arc<ClassDesc>> {
        self.classes
            .read()
            .get(&clsid)
            .cloned()
            .ok_or(ComError::UnknownClass(clsid))
    }

    /// Returns all registered classes (order unspecified).
    pub fn all(&self) -> Vec<Arc<ClassDesc>> {
        self.classes.read().values().cloned().collect()
    }

    /// Looks up an interface description by IID across all registered
    /// classes. Interface descriptions are shared (`Arc`), so any class
    /// declaring the IID yields the same metadata.
    pub fn interface_by_iid(&self, iid: crate::guid::Iid) -> Option<Arc<InterfaceDesc>> {
        self.classes
            .read()
            .values()
            .flat_map(|class| &class.interfaces)
            .find(|desc| desc.iid == iid)
            .cloned()
    }

    /// The set of interface IIDs declared by at least one registered class.
    pub fn declared_iids(&self) -> std::collections::HashSet<crate::guid::Iid> {
        self.classes
            .read()
            .values()
            .flat_map(|class| &class.interfaces)
            .map(|desc| desc.iid)
            .collect()
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.read().len()
    }

    /// Returns true if no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.classes.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ComResult;
    use crate::guid::Iid;
    use crate::idl::InterfaceBuilder;
    use crate::interface::Message;
    use crate::object::CallCtx;

    struct Nop;
    impl ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            _msg: &mut Message,
        ) -> ComResult<()> {
            Ok(())
        }
    }

    #[test]
    fn imports_flags() {
        let both = ApiImports::GUI.union(ApiImports::STORAGE);
        assert!(both.uses_gui());
        assert!(both.uses_storage());
        assert!(!ApiImports::NONE.uses_gui());
        assert!(ApiImports::DATABASE.uses_storage());
        assert!(both.contains(ApiImports::GUI));
        assert!(!ApiImports::GUI.contains(both));
    }

    #[test]
    fn register_and_lookup() {
        let reg = ClassRegistry::new();
        let iface = InterfaceBuilder::new("INop").build();
        let clsid = reg.register("Nop", vec![iface.clone()], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        let desc = reg.get(clsid).unwrap();
        assert_eq!(desc.name, "Nop");
        assert!(desc.interface(iface.iid).is_some());
        assert!(desc.interface(Iid::from_name("IOther")).is_none());
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn interfaces_resolve_by_iid_across_classes() {
        let reg = ClassRegistry::new();
        let ia = InterfaceBuilder::new("IAlpha").build();
        let ib = InterfaceBuilder::new("IBeta").build();
        reg.register("A", vec![ia.clone()], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        reg.register(
            "B",
            vec![ib.clone(), ia.clone()],
            ApiImports::NONE,
            |_, _| Arc::new(Nop),
        );
        assert_eq!(reg.interface_by_iid(ia.iid).unwrap().name, "IAlpha");
        assert_eq!(reg.interface_by_iid(ib.iid).unwrap().name, "IBeta");
        assert!(reg.interface_by_iid(Iid::from_name("IGhost")).is_none());
        let declared = reg.declared_iids();
        assert_eq!(declared.len(), 2);
        assert!(declared.contains(&ia.iid) && declared.contains(&ib.iid));
    }

    #[test]
    fn unknown_class_errors() {
        let reg = ClassRegistry::new();
        let missing = Clsid::from_name("Missing");
        assert!(matches!(
            reg.get(missing),
            Err(ComError::UnknownClass(c)) if c == missing
        ));
    }

    #[test]
    fn reregistering_replaces() {
        let reg = ClassRegistry::new();
        reg.register("X", vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
        reg.register("X", vec![], ApiImports::GUI, |_, _| Arc::new(Nop));
        assert_eq!(reg.len(), 1);
        assert!(reg.get(Clsid::from_name("X")).unwrap().imports.uses_gui());
    }

    #[test]
    fn debug_output_names_flags() {
        let s = format!("{:?}", ApiImports::GUI.union(ApiImports::DATABASE));
        assert!(s.contains("GUI") && s.contains("DATABASE"));
        assert_eq!(format!("{:?}", ApiImports::NONE), "ApiImports(NONE)");
    }
}
