//! Virtual time for the simulation.
//!
//! All execution-time and communication-time numbers in the reproduction are
//! *simulated*: components charge compute time explicitly and the transport
//! layer charges message latencies. Two clock disciplines coexist:
//!
//! * [`SimClock`] — a single monotone stepped clock. Correct for the
//!   client/server model because DCOM calls are synchronous — compute on
//!   either machine and time on the wire strictly serialize, so one counter
//!   that only ever moves forward captures the whole schedule. It is the
//!   degenerate (one pending event) case of the scheduler below.
//! * [`EventQueue`] — a discrete-event scheduler: a binary-heap agenda of
//!   future events keyed by simulated microseconds. The serving harness
//!   multiplexes thousands of concurrent sessions whose calls interleave
//!   arbitrarily, so "advance by the cost of the current call" no longer
//!   works; instead every future happening is scheduled and the clock jumps
//!   to the earliest pending event. Ties are broken by insertion order,
//!   which keeps pop order — and therefore every simulation built on the
//!   queue — fully deterministic.

use std::cmp::Ordering as CmpOrdering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotonically advancing virtual clock counting microseconds.
///
/// Cloning a `SimClock` yields a handle to the same underlying clock.
///
/// # Examples
///
/// ```
/// use coign_com::SimClock;
/// let clock = SimClock::new();
/// let handle = clock.clone();
/// clock.advance_us(250);
/// assert_eq!(handle.now_us(), 250);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Advances the clock by `us` microseconds and returns the new time.
    pub fn advance_us(&self, us: u64) -> u64 {
        self.micros.fetch_add(us, Ordering::Relaxed) + us
    }

    /// Resets the clock to zero (between scenario runs).
    pub fn reset(&self) {
        self.micros.store(0, Ordering::Relaxed);
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_us() as f64 / 1e6
    }
}

/// One scheduled event: a due time, an insertion sequence number for
/// deterministic tie-breaking, and an opaque payload.
///
/// Ordering ignores the payload entirely — two entries compare equal iff
/// their `(at_us, seq)` keys are equal, and `seq` is unique per queue, so
/// the heap order is a total order independent of `T`.
#[derive(Debug)]
struct Entry<T> {
    at_us: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// A discrete-event scheduler over simulated microseconds.
///
/// The queue owns its notion of "now": popping an event advances the clock
/// to that event's due time. Events scheduled in the past (a zero-delay
/// follow-up, say) are clamped to the current time rather than rewinding —
/// simulated time is monotone, exactly like [`SimClock`].
///
/// # Examples
///
/// ```
/// use coign_com::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(20, "reply");
/// q.schedule(10, "request");
/// q.schedule(10, "tiebreak-after-request");
/// assert_eq!(q.pop(), Some((10, "request")));
/// assert_eq!(q.pop(), Some((10, "tiebreak-after-request")));
/// assert_eq!(q.now_us(), 10);
/// assert_eq!(q.pop(), Some((20, "reply")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
    now_us: u64,
    high_water: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now_us: 0,
            high_water: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now_us: 0,
            high_water: 0,
        }
    }

    /// Schedules `payload` to fire at `at_us` (clamped to now if earlier)
    /// and returns the actual due time.
    pub fn schedule(&mut self, at_us: u64, payload: T) -> u64 {
        let at_us = at_us.max(self.now_us);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            at_us,
            seq,
            payload,
        }));
        self.high_water = self.high_water.max(self.heap.len());
        at_us
    }

    /// Schedules `payload` to fire `delay_us` after the current time.
    pub fn schedule_in(&mut self, delay_us: u64, payload: T) -> u64 {
        self.schedule(self.now_us.saturating_add(delay_us), payload)
    }

    /// Pops the earliest pending event, advancing the clock to its due
    /// time. Returns `None` when the agenda is empty (simulation done).
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now_us = entry.at_us;
        Some((entry.at_us, entry.payload))
    }

    /// Due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.at_us)
    }

    /// Current simulated time: the due time of the last popped event.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the agenda is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The queue-depth hook for telemetry: the most pending events the
    /// agenda has ever held. Tracked in `schedule` (one `max` per push),
    /// so samplers read it for free instead of instrumenting every push
    /// site themselves.
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_us(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.advance_us(10), 10);
        assert_eq!(c.advance_us(5), 15);
        assert_eq!(c.now_us(), 15);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_us(100);
        assert_eq!(b.now_us(), 100);
        b.reset();
        assert_eq!(a.now_us(), 0);
    }

    #[test]
    fn seconds_conversion() {
        let c = SimClock::new();
        c.advance_us(2_500_000);
        assert!((c.now_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn event_queue_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.now_us(), 30);
    }

    #[test]
    fn event_queue_breaks_ties_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(42, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn event_queue_clamps_past_events_to_now() {
        let mut q = EventQueue::new();
        q.schedule(50, "late");
        assert_eq!(q.pop(), Some((50, "late")));
        // A zero-delay follow-up lands *at* now, never before it.
        assert_eq!(q.schedule(10, "clamped"), 50);
        assert_eq!(q.pop(), Some((50, "clamped")));
        assert_eq!(q.now_us(), 50);
    }

    #[test]
    fn event_queue_schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        assert_eq!(q.schedule_in(25, ()), 125);
        assert_eq!(q.pop(), Some((125, ())));
    }

    #[test]
    fn event_queue_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water_mark(), 0);
        q.schedule(10, "a");
        q.schedule(20, "b");
        q.schedule(30, "c");
        assert_eq!(q.high_water_mark(), 3);
        q.pop();
        q.pop();
        // The mark remembers the peak, not the current depth.
        assert_eq!(q.len(), 1);
        assert_eq!(q.high_water_mark(), 3);
        q.schedule(40, "d");
        assert_eq!(q.high_water_mark(), 3, "peak only moves on a new high");
    }

    #[test]
    fn event_queue_interleaved_schedule_and_pop_is_deterministic() {
        // The serving harness schedules follow-ups while draining; replay
        // the same trace twice and demand identical pop order.
        let run = || {
            let mut q = EventQueue::new();
            let mut order = Vec::new();
            q.schedule(5, 0u64);
            q.schedule(5, 1);
            q.schedule(9, 2);
            let mut next = 3u64;
            while let Some((t, id)) = q.pop() {
                order.push((t, id));
                if next < 12 {
                    q.schedule(t + (id % 3), next);
                    next += 1;
                }
            }
            order
        };
        assert_eq!(run(), run());
    }
}
