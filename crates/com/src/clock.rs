//! Virtual time for the simulation.
//!
//! All execution-time and communication-time numbers in the reproduction are
//! *simulated*: components charge compute time explicitly and the transport
//! layer charges message latencies. A single monotone clock is correct for
//! the client/server model because DCOM calls are synchronous — compute on
//! either machine and time on the wire strictly serialize.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotonically advancing virtual clock counting microseconds.
///
/// Cloning a `SimClock` yields a handle to the same underlying clock.
///
/// # Examples
///
/// ```
/// use coign_com::SimClock;
/// let clock = SimClock::new();
/// let handle = clock.clone();
/// clock.advance_us(250);
/// assert_eq!(handle.now_us(), 250);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Advances the clock by `us` microseconds and returns the new time.
    pub fn advance_us(&self, us: u64) -> u64 {
        self.micros.fetch_add(us, Ordering::Relaxed) + us
    }

    /// Resets the clock to zero (between scenario runs).
    pub fn reset(&self) {
        self.micros.store(0, Ordering::Relaxed);
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_us() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_us(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.advance_us(10), 10);
        assert_eq!(c.advance_us(5), 15);
        assert_eq!(c.now_us(), 15);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_us(100);
        assert_eq!(b.now_us(), 100);
        b.reset();
        assert_eq!(a.now_us(), 0);
    }

    #[test]
    fn seconds_conversion() {
        let c = SimClock::new();
        c.advance_us(2_500_000);
        assert!((c.now_secs() - 2.5).abs() < 1e-12);
    }
}
