//! The component runtime: instantiation, interception, and accounting.
//!
//! [`ComRuntime`] plays the role of the COM library (`ole32`). Everything
//! Coign needs to trap is funneled through it:
//!
//! * **Instantiation.** [`ComRuntime::create_instance`] is the
//!   `CoCreateInstance` equivalent. Registered [`RuntimeHook`]s may fulfill
//!   the request themselves (the component factory relocating an instance to
//!   another machine) and may wrap every freshly minted interface pointer
//!   (the RTE's interface wrapping).
//! * **The call stack.** The runtime maintains the current interface-call
//!   back-trace, which the instance classifiers consume at instantiation
//!   time.
//! * **Time.** Compute charges are scaled by the executing machine's CPU
//!   factor; the transport layer reports communication time here so the
//!   run's execution/communication split is observable.

use crate::clock::SimClock;
use crate::error::{ComError, ComResult};
use crate::guid::{Clsid, Iid};
use crate::interface::{CallInfo, InterfacePtr, Invoker, Message};
use crate::object::{CallCtx, ComObject, Instance, InstanceId, MachineId};
use crate::registry::ClassRegistry;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One entry of the interface-call back-trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// Instance executing the frame.
    pub instance: InstanceId,
    /// Class of that instance.
    pub clsid: Clsid,
    /// Interface through which the instance was entered.
    pub iid: Iid,
    /// Method index within the interface.
    pub method: u32,
}

/// A component instantiation request, as seen by interception hooks.
#[derive(Debug, Clone, Copy)]
pub struct CreateRequest {
    /// Class being instantiated.
    pub clsid: Clsid,
    /// Interface requested on the new instance.
    pub iid: Iid,
}

/// Interception points offered by the runtime.
///
/// The Coign Runtime Executive registers exactly one hook; its methods
/// correspond to the RTE services of §3.1 of the paper (instantiation
/// trapping and interface wrapping).
pub trait RuntimeHook: Send + Sync {
    /// Offered a chance to fulfill an instantiation request (e.g. on a
    /// different machine). Returning `None` falls through to the default
    /// local instantiation.
    fn fulfill_create(
        &self,
        _rt: &ComRuntime,
        _req: &CreateRequest,
    ) -> Option<ComResult<InterfacePtr>> {
        None
    }

    /// Notified after any instance is created.
    fn instance_created(&self, _rt: &ComRuntime, _id: InstanceId, _clsid: Clsid) {}

    /// Notified when an instance is released.
    fn instance_released(&self, _rt: &ComRuntime, _id: InstanceId) {}

    /// Wraps a freshly minted interface pointer (identity must be preserved).
    fn wrap_interface(&self, _rt: &ComRuntime, ptr: InterfacePtr) -> InterfacePtr {
        ptr
    }

    /// Notified on every direct (terminal) interface dispatch.
    fn call_dispatched(&self, _rt: &ComRuntime, _call: &CallInfo<'_>) {}
}

/// A machine participating in the simulated topology.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Display name, e.g. `"client"`.
    pub name: String,
    /// Relative CPU speed; compute charges are divided by this factor.
    pub cpu_scale: f64,
}

impl MachineSpec {
    /// Creates a machine spec.
    pub fn new(name: &str, cpu_scale: f64) -> Self {
        MachineSpec {
            name: name.to_string(),
            cpu_scale,
        }
    }
}

/// Aggregate execution statistics for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RtStats {
    /// Total compute time charged, in microseconds.
    pub compute_us: u64,
    /// Total communication time charged, in microseconds.
    pub comm_us: u64,
    /// Total number of network messages.
    pub messages: u64,
    /// Total bytes crossing machine boundaries.
    pub bytes: u64,
    /// Total interface dispatches.
    pub calls: u64,
    /// Interface dispatches that crossed a machine boundary.
    pub cross_machine_calls: u64,
}

/// The component runtime (`CoCreateInstance`, interception, accounting).
pub struct ComRuntime {
    registry: ClassRegistry,
    clock: SimClock,
    machines: Vec<MachineSpec>,
    instances: RwLock<HashMap<InstanceId, Arc<Instance>>>,
    next_instance: AtomicU64,
    hooks: RwLock<Vec<Arc<dyn RuntimeHook>>>,
    stack: Mutex<Vec<Frame>>,
    stats: Mutex<RtStats>,
}

impl ComRuntime {
    /// Creates a runtime with the given machine topology.
    ///
    /// Machine index 0 is the client by convention.
    pub fn new(machines: Vec<MachineSpec>) -> Self {
        assert!(!machines.is_empty(), "topology needs at least one machine");
        ComRuntime {
            registry: ClassRegistry::new(),
            clock: SimClock::new(),
            machines,
            instances: RwLock::new(HashMap::new()),
            next_instance: AtomicU64::new(1),
            hooks: RwLock::new(Vec::new()),
            stack: Mutex::new(Vec::new()),
            stats: Mutex::new(RtStats::default()),
        }
    }

    /// Single-machine runtime (a non-distributed desktop application).
    pub fn single_machine() -> Self {
        ComRuntime::new(vec![MachineSpec::new("client", 1.0)])
    }

    /// Two-machine client/server runtime of equal compute power — the
    /// paper's experimental environment.
    pub fn client_server() -> Self {
        ComRuntime::new(vec![
            MachineSpec::new("client", 1.0),
            MachineSpec::new("server", 1.0),
        ])
    }

    /// The class registry.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The machine topology.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// Registers an interception hook (appended to the chain).
    pub fn add_hook(&self, hook: Arc<dyn RuntimeHook>) {
        self.hooks.write().push(hook);
    }

    /// Removes all interception hooks.
    pub fn clear_hooks(&self) {
        self.hooks.write().clear();
    }

    fn hooks_snapshot(&self) -> Vec<Arc<dyn RuntimeHook>> {
        self.hooks.read().clone()
    }

    /// Instantiates a component, giving hooks a chance to intercept
    /// (the `CoCreateInstance` entry point).
    pub fn create_instance(&self, clsid: Clsid, iid: Iid) -> ComResult<InterfacePtr> {
        let req = CreateRequest { clsid, iid };
        for hook in self.hooks_snapshot() {
            if let Some(result) = hook.fulfill_create(self, &req) {
                return result;
            }
        }
        self.create_direct(clsid, iid, None)
    }

    /// Instantiates a component locally, bypassing `fulfill_create` hooks.
    ///
    /// `machine` defaults to the machine of the currently executing instance
    /// (the creator), or the client at top level. Wrap hooks still apply, so
    /// instrumentation sees every pointer.
    pub fn create_direct(
        &self,
        clsid: Clsid,
        iid: Iid,
        machine: Option<MachineId>,
    ) -> ComResult<InterfacePtr> {
        let class = self.registry.get(clsid)?;
        if class.interface(iid).is_none() {
            return Err(ComError::NoInterface { clsid, iid });
        }
        let machine = machine.unwrap_or_else(|| self.current_machine());
        if machine.0 as usize >= self.machines.len() {
            return Err(ComError::App(format!(
                "machine {machine} is not part of the topology"
            )));
        }
        let id = InstanceId(self.next_instance.fetch_add(1, Ordering::Relaxed));
        let object = (class.factory)(self, id);
        let instance = Instance::new(id, clsid, object, machine);
        self.instances.write().insert(id, instance);
        for hook in self.hooks_snapshot() {
            hook.instance_created(self, id, clsid);
        }
        self.make_ptr(id, iid)
    }

    /// Builds a (wrapped) interface pointer for an existing instance —
    /// the `QueryInterface` equivalent by instance id.
    pub fn make_ptr(&self, id: InstanceId, iid: Iid) -> ComResult<InterfacePtr> {
        let instance = self.instance(id).ok_or(ComError::DeadInstance(id.0))?;
        let class = self.registry.get(instance.clsid)?;
        let desc = class
            .interface(iid)
            .ok_or(ComError::NoInterface {
                clsid: instance.clsid,
                iid,
            })?
            .clone();
        let raw = InterfacePtr::from_parts(
            desc,
            id,
            instance.clsid,
            Arc::new(DirectInvoker {
                object: instance.object.clone(),
            }),
        );
        let mut ptr = raw;
        for hook in self.hooks_snapshot() {
            ptr = hook.wrap_interface(self, ptr);
        }
        Ok(ptr)
    }

    /// Returns another interface of the same instance (`QueryInterface`).
    pub fn query_interface(&self, ptr: &InterfacePtr, iid: Iid) -> ComResult<InterfacePtr> {
        self.make_ptr(ptr.owner(), iid)
    }

    /// Releases an instance, removing it from the instance table.
    pub fn release_instance(&self, id: InstanceId) -> ComResult<()> {
        let removed = self.instances.write().remove(&id);
        if removed.is_none() {
            return Err(ComError::DeadInstance(id.0));
        }
        for hook in self.hooks_snapshot() {
            hook.instance_released(self, id);
        }
        Ok(())
    }

    /// Looks up a live instance.
    pub fn instance(&self, id: InstanceId) -> Option<Arc<Instance>> {
        self.instances.read().get(&id).cloned()
    }

    /// Number of live instances.
    pub fn instance_count(&self) -> usize {
        self.instances.read().len()
    }

    /// Snapshot of all live instances, ordered by instance id.
    pub fn instances_snapshot(&self) -> Vec<Arc<Instance>> {
        let mut all: Vec<_> = self.instances.read().values().cloned().collect();
        all.sort_by_key(|i| i.id);
        all
    }

    /// The machine of the currently executing instance (client at top level).
    pub fn current_machine(&self) -> MachineId {
        let stack = self.stack.lock();
        match stack.last() {
            Some(frame) => self
                .instance(frame.instance)
                .map(|i| i.machine())
                .unwrap_or(MachineId::CLIENT),
            None => MachineId::CLIENT,
        }
    }

    /// Snapshot of the interface-call back-trace (innermost frame last).
    pub fn call_stack(&self) -> Vec<Frame> {
        self.stack.lock().clone()
    }

    /// Depth of the current call stack.
    pub fn stack_depth(&self) -> usize {
        self.stack.lock().len()
    }

    pub(crate) fn push_frame(&self, frame: Frame) {
        self.stack.lock().push(frame);
    }

    pub(crate) fn pop_frame(&self) {
        self.stack.lock().pop();
    }

    /// Charges `us` microseconds of compute on the instance's machine,
    /// scaled by that machine's CPU factor.
    pub fn charge_compute(&self, instance: InstanceId, us: u64) {
        let machine = self
            .instance(instance)
            .map(|i| i.machine())
            .unwrap_or(MachineId::CLIENT);
        let scale = self
            .machines
            .get(machine.0 as usize)
            .map(|m| m.cpu_scale)
            .unwrap_or(1.0);
        let scaled = (us as f64 / scale).round() as u64;
        self.clock.advance_us(scaled);
        self.stats.lock().compute_us += scaled;
    }

    /// Records `us` microseconds of communication moving `bytes` bytes in
    /// `messages` messages (called by the transport layer).
    pub fn charge_comm(&self, us: u64, bytes: u64, messages: u64) {
        self.clock.advance_us(us);
        let mut stats = self.stats.lock();
        stats.comm_us += us;
        stats.bytes += bytes;
        stats.messages += messages;
        stats.cross_machine_calls += 1;
    }

    /// Snapshot of the run statistics.
    pub fn stats(&self) -> RtStats {
        *self.stats.lock()
    }

    /// Resets statistics and the clock (between scenario runs).
    pub fn reset_accounting(&self) {
        *self.stats.lock() = RtStats::default();
        self.clock.reset();
    }

    /// Releases every instance and clears the call stack; statistics and
    /// hooks are preserved.
    pub fn clear_instances(&self) {
        self.instances.write().clear();
        self.stack.lock().clear();
        self.next_instance.store(1, Ordering::Relaxed);
    }
}

/// Terminal invoker: dispatches into the component object, maintaining the
/// call-frame stack around the dispatch.
struct DirectInvoker {
    object: Arc<dyn ComObject>,
}

/// Pops the frame on drop so a propagating error cannot corrupt the stack.
struct FrameGuard<'a> {
    rt: &'a ComRuntime,
}

impl Drop for FrameGuard<'_> {
    fn drop(&mut self) {
        self.rt.pop_frame();
    }
}

impl Invoker for DirectInvoker {
    fn invoke(&self, rt: &ComRuntime, call: CallInfo<'_>, msg: &mut Message) -> ComResult<()> {
        rt.stats.lock().calls += 1;
        for hook in rt.hooks_snapshot() {
            hook.call_dispatched(rt, &call);
        }
        rt.push_frame(Frame {
            instance: call.owner,
            clsid: call.owner_clsid,
            iid: call.desc.iid,
            method: call.method,
        });
        let _guard = FrameGuard { rt };
        let ctx = CallCtx::new(rt, call.owner, call.owner_clsid);
        self.object.invoke(&ctx, call.desc.iid, call.method, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idl::InterfaceBuilder;
    use crate::registry::ApiImports;
    use crate::value::{PType, Value};
    use parking_lot::Mutex as PlMutex;

    /// A counter component: `Add(x)` accumulates, `Total() -> i4` reports.
    struct Counter {
        total: PlMutex<i32>,
    }

    impl ComObject for Counter {
        fn invoke(
            &self,
            ctx: &CallCtx<'_>,
            _iid: Iid,
            method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            match method {
                0 => {
                    let x = msg.arg(0).and_then(Value::as_i4).unwrap_or(0);
                    *self.total.lock() += x;
                    ctx.compute(5);
                    Ok(())
                }
                1 => {
                    msg.set(0, Value::I4(*self.total.lock()));
                    Ok(())
                }
                _ => Err(ComError::App("bad method".into())),
            }
        }
    }

    fn icounter() -> std::sync::Arc<crate::idl::InterfaceDesc> {
        InterfaceBuilder::new("ICounter")
            .method("Add", |m| m.input("x", PType::I4))
            .method("Total", |m| m.output("total", PType::I4))
            .build()
    }

    fn setup() -> (ComRuntime, Clsid, Iid) {
        let rt = ComRuntime::client_server();
        let iface = icounter();
        let iid = iface.iid;
        let clsid = rt
            .registry()
            .register("Counter", vec![iface], ApiImports::NONE, |_, _| {
                Arc::new(Counter {
                    total: PlMutex::new(0),
                })
            });
        (rt, clsid, iid)
    }

    #[test]
    fn create_call_roundtrip() {
        let (rt, clsid, iid) = setup();
        let ptr = rt.create_instance(clsid, iid).unwrap();
        ptr.call(&rt, 0, &mut Message::new(vec![Value::I4(7)]))
            .unwrap();
        ptr.call(&rt, 0, &mut Message::new(vec![Value::I4(3)]))
            .unwrap();
        let mut out = Message::outputs(1);
        ptr.call(&rt, 1, &mut out).unwrap();
        assert_eq!(out.arg(0).unwrap().as_i4(), Some(10));
    }

    #[test]
    fn compute_time_is_charged() {
        let (rt, clsid, iid) = setup();
        let ptr = rt.create_instance(clsid, iid).unwrap();
        ptr.call(&rt, 0, &mut Message::new(vec![Value::I4(1)]))
            .unwrap();
        assert_eq!(rt.clock().now_us(), 5);
        assert_eq!(rt.stats().compute_us, 5);
        assert_eq!(rt.stats().calls, 1);
    }

    #[test]
    fn cpu_scale_divides_compute() {
        let rt = ComRuntime::new(vec![MachineSpec::new("fast", 2.0)]);
        let iface = icounter();
        let iid = iface.iid;
        let clsid = rt
            .registry()
            .register("Counter", vec![iface], ApiImports::NONE, |_, _| {
                Arc::new(Counter {
                    total: PlMutex::new(0),
                })
            });
        let ptr = rt.create_instance(clsid, iid).unwrap();
        ptr.call(&rt, 0, &mut Message::new(vec![Value::I4(1)]))
            .unwrap();
        assert_eq!(rt.clock().now_us(), 3); // 5 us / 2.0, rounded
    }

    #[test]
    fn missing_interface_is_rejected() {
        let (rt, clsid, _) = setup();
        let err = rt
            .create_instance(clsid, Iid::from_name("IOther"))
            .unwrap_err();
        assert!(matches!(err, ComError::NoInterface { .. }));
        // Failed creation leaves no orphan instance behind.
        assert_eq!(rt.instance_count(), 0);
    }

    #[test]
    fn unknown_class_is_rejected() {
        let (rt, _, iid) = setup();
        let err = rt
            .create_instance(Clsid::from_name("Nope"), iid)
            .unwrap_err();
        assert!(matches!(err, ComError::UnknownClass(_)));
    }

    #[test]
    fn release_removes_instance() {
        let (rt, clsid, iid) = setup();
        let ptr = rt.create_instance(clsid, iid).unwrap();
        assert_eq!(rt.instance_count(), 1);
        rt.release_instance(ptr.owner()).unwrap();
        assert_eq!(rt.instance_count(), 0);
        assert!(rt.release_instance(ptr.owner()).is_err());
        // The pointer still dispatches (the object is kept alive by the
        // invoker), but a fresh QueryInterface fails.
        assert!(rt.make_ptr(ptr.owner(), iid).is_err());
    }

    #[test]
    fn hook_can_fulfill_creation_remotely() {
        struct RemoteHook;
        impl RuntimeHook for RemoteHook {
            fn fulfill_create(
                &self,
                rt: &ComRuntime,
                req: &CreateRequest,
            ) -> Option<ComResult<InterfacePtr>> {
                Some(rt.create_direct(req.clsid, req.iid, Some(MachineId::SERVER)))
            }
        }
        let (rt, clsid, iid) = setup();
        rt.add_hook(Arc::new(RemoteHook));
        let ptr = rt.create_instance(clsid, iid).unwrap();
        assert_eq!(
            rt.instance(ptr.owner()).unwrap().machine(),
            MachineId::SERVER
        );
    }

    #[test]
    fn wrap_hook_sees_every_pointer() {
        struct CountingWrap {
            wrapped: AtomicU64,
        }
        impl RuntimeHook for CountingWrap {
            fn wrap_interface(&self, _rt: &ComRuntime, ptr: InterfacePtr) -> InterfacePtr {
                self.wrapped.fetch_add(1, Ordering::Relaxed);
                ptr
            }
        }
        let (rt, clsid, iid) = setup();
        let hook = Arc::new(CountingWrap {
            wrapped: AtomicU64::new(0),
        });
        rt.add_hook(hook.clone());
        let ptr = rt.create_instance(clsid, iid).unwrap();
        rt.query_interface(&ptr, iid).unwrap();
        assert_eq!(hook.wrapped.load(Ordering::Relaxed), 2);
    }

    /// A component that creates a child during a call, so tests can observe
    /// the call stack at instantiation time.
    struct Spawner {
        child_clsid: Clsid,
        child_iid: Iid,
    }

    impl ComObject for Spawner {
        fn invoke(
            &self,
            ctx: &CallCtx<'_>,
            _iid: Iid,
            method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            match method {
                0 => {
                    let child = ctx.create(self.child_clsid, self.child_iid)?;
                    msg.set(0, Value::Interface(Some(child)));
                    Ok(())
                }
                _ => Err(ComError::App("bad method".into())),
            }
        }
    }

    #[test]
    fn stack_is_visible_at_instantiation_time() {
        struct StackSnap {
            depth_at_create: AtomicU64,
        }
        impl RuntimeHook for StackSnap {
            fn instance_created(&self, rt: &ComRuntime, _id: InstanceId, clsid: Clsid) {
                if clsid == Clsid::from_name("Counter") {
                    self.depth_at_create
                        .store(rt.stack_depth() as u64, Ordering::Relaxed);
                }
            }
        }

        let (rt, counter_clsid, counter_iid) = setup();
        let ispawn = InterfaceBuilder::new("ISpawner")
            .method("Spawn", |m| {
                m.output("child", PType::Interface(Iid::from_name("ICounter")))
            })
            .build();
        let spawn_iid = ispawn.iid;
        let spawn_clsid =
            rt.registry()
                .register("Spawner", vec![ispawn], ApiImports::NONE, move |_, _| {
                    Arc::new(Spawner {
                        child_clsid: counter_clsid,
                        child_iid: counter_iid,
                    })
                });
        let hook = Arc::new(StackSnap {
            depth_at_create: AtomicU64::new(99),
        });
        rt.add_hook(hook.clone());

        let spawner = rt.create_instance(spawn_clsid, spawn_iid).unwrap();
        let mut msg = Message::outputs(1);
        spawner.call(&rt, 0, &mut msg).unwrap();
        // The Counter was created from inside Spawner::Spawn → depth 1.
        assert_eq!(hook.depth_at_create.load(Ordering::Relaxed), 1);
        // After the call returns the stack is empty again.
        assert_eq!(rt.stack_depth(), 0);
        // The returned child pointer works.
        let child = msg.arg(0).unwrap().as_interface().unwrap().clone();
        child
            .call(&rt, 0, &mut Message::new(vec![Value::I4(2)]))
            .unwrap();
    }

    #[test]
    fn stack_unwinds_on_error() {
        let (rt, clsid, iid) = setup();
        let ptr = rt.create_instance(clsid, iid).unwrap();
        let err = ptr.call(&rt, 1, &mut Message::empty());
        // Method 1 wants one out param; arity check fails before dispatch...
        assert!(err.is_err());
        // ...and even a dispatched failure leaves the stack clean.
        assert_eq!(rt.stack_depth(), 0);
    }

    #[test]
    fn reset_accounting_clears_clock_and_stats() {
        let (rt, clsid, iid) = setup();
        let ptr = rt.create_instance(clsid, iid).unwrap();
        ptr.call(&rt, 0, &mut Message::new(vec![Value::I4(1)]))
            .unwrap();
        rt.charge_comm(100, 64, 2);
        assert!(rt.stats().comm_us > 0);
        rt.reset_accounting();
        assert_eq!(rt.stats(), RtStats::default());
        assert_eq!(rt.clock().now_us(), 0);
    }

    #[test]
    fn clear_instances_resets_ids() {
        let (rt, clsid, iid) = setup();
        rt.create_instance(clsid, iid).unwrap();
        rt.clear_instances();
        assert_eq!(rt.instance_count(), 0);
        let ptr = rt.create_instance(clsid, iid).unwrap();
        assert_eq!(ptr.owner(), InstanceId(1));
    }

    #[test]
    fn snapshot_is_ordered_by_id() {
        let (rt, clsid, iid) = setup();
        for _ in 0..5 {
            rt.create_instance(clsid, iid).unwrap();
        }
        let snap = rt.instances_snapshot();
        assert_eq!(snap.len(), 5);
        assert!(snap.windows(2).all(|w| w[0].id < w[1].id));
    }
}
