//! simCOM: a miniature component object model.
//!
//! This crate is the substrate substitution for Microsoft COM in the Coign
//! reproduction (see `DESIGN.md` at the workspace root). Coign relies on two
//! properties of COM, both of which this crate provides:
//!
//! 1. **Interposability** — all first-class communication between components
//!    crosses binary interface boundaries ([`InterfacePtr`]) that a runtime can
//!    transparently wrap with instrumentation or remote proxies.
//! 2. **Trappable instantiation** — every component instance is created through
//!    a single runtime API ([`ComRuntime::create_instance`]) that registered
//!    hooks can intercept and relocate.
//!
//! On top of those, the crate models the pieces of the COM ecosystem the Coign
//! tool chain touches: MIDL-style interface metadata ([`idl`]), a class registry
//! with static API-import information ([`registry`]), application binary images
//! with import tables and configuration records ([`image`]), and a small binary
//! codec ([`codec`]) used to persist profiles into those images.
//!
//! The crate contains no `unsafe` code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod codec;
pub mod error;
pub mod guid;
pub mod idl;
pub mod image;
pub mod interface;
pub mod object;
pub mod registry;
pub mod runtime;
pub mod value;

pub use clock::{EventQueue, SimClock};
pub use error::{ComError, ComResult};
pub use guid::{Clsid, Guid, Iid};
pub use idl::{InterfaceDesc, MethodDesc, ParamDesc, ParamDir, StateEffect};
pub use image::{AppImage, ConfigSection, DllImport, ImageBuilder};
pub use interface::{InterfacePtr, Invoker, Message};
pub use object::{CallCtx, ComObject, InstanceId, MachineId};
pub use registry::{ApiImports, ClassDesc, ClassRegistry};
pub use runtime::{ComRuntime, CreateRequest, Frame, MachineSpec, RtStats, RuntimeHook};
pub use value::{PType, Value};
