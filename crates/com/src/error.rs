//! Error types for the simCOM substrate.

use crate::guid::{Clsid, Iid};
use crate::object::MachineId;
use std::fmt;

/// Result alias used throughout the simCOM substrate.
pub type ComResult<T> = Result<T, ComError>;

/// Errors produced by the component model.
///
/// These stand in for COM `HRESULT` failure codes; like `HRESULT`s they are
/// propagated across interface calls rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComError {
    /// No class with the given CLSID is registered (`REGDB_E_CLASSNOTREG`).
    UnknownClass(Clsid),
    /// The component does not implement the requested interface
    /// (`E_NOINTERFACE`).
    NoInterface {
        /// The class that was queried.
        clsid: Clsid,
        /// The interface that was requested.
        iid: Iid,
    },
    /// A method index was out of range for the interface vtable.
    BadMethod {
        /// Interface that was called.
        iid: Iid,
        /// Method index that was out of range.
        method: u32,
    },
    /// A call argument did not match the IDL signature.
    BadParam {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An attempt was made to marshal a non-remotable value (e.g. a raw
    /// shared-memory pointer) across machines (`E_NOTIMPL` from the standard
    /// marshaler).
    NotRemotable {
        /// Interface whose call could not be marshaled.
        iid: Iid,
        /// Description of the offending parameter.
        detail: String,
    },
    /// The referenced component instance no longer exists.
    DeadInstance(u64),
    /// A remote call exceeded its timeout budget on every attempt the call
    /// policy allowed (`RPC_E_TIMEOUT`). The detail names the link and the
    /// number of attempts made.
    Timeout {
        /// Human-readable description of the failing call path.
        detail: String,
    },
    /// The network link between two machines is severed
    /// (`RPC_E_DISCONNECTED`): every send in the partition window is lost.
    Partitioned {
        /// Machine the call originated from.
        from: MachineId,
        /// Machine the call could not reach.
        to: MachineId,
    },
    /// The target machine has failed entirely (`RPC_E_SERVERDIED_DNE`).
    MachineDown(MachineId),
    /// A configuration record or profile log failed to decode.
    Codec(String),
    /// Application-defined failure surfaced through an interface call.
    App(String),
}

impl fmt::Display for ComError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComError::UnknownClass(clsid) => write!(f, "unknown class {clsid}"),
            ComError::NoInterface { clsid, iid } => {
                write!(f, "class {clsid} does not implement interface {iid}")
            }
            ComError::BadMethod { iid, method } => {
                write!(f, "interface {iid} has no method #{method}")
            }
            ComError::BadParam { detail } => write!(f, "bad parameter: {detail}"),
            ComError::NotRemotable { iid, detail } => {
                write!(f, "interface {iid} is not remotable: {detail}")
            }
            ComError::DeadInstance(id) => write!(f, "instance #{id} has been released"),
            ComError::Timeout { detail } => write!(f, "remote call timed out: {detail}"),
            ComError::Partitioned { from, to } => {
                write!(f, "network partitioned between {from} and {to}")
            }
            ComError::MachineDown(machine) => write!(f, "machine {machine} is down"),
            ComError::Codec(detail) => write!(f, "codec error: {detail}"),
            ComError::App(detail) => write!(f, "application error: {detail}"),
        }
    }
}

impl std::error::Error for ComError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guid::Guid;

    #[test]
    fn display_is_human_readable() {
        let clsid = Clsid(Guid::from_name("TestClass"));
        let iid = Iid(Guid::from_name("ITest"));
        let err = ComError::NoInterface { clsid, iid };
        let text = err.to_string();
        assert!(text.contains("does not implement"));
    }

    #[test]
    fn errors_compare_by_value() {
        let a = ComError::Codec("truncated".into());
        let b = ComError::Codec("truncated".into());
        assert_eq!(a, b);
        assert_ne!(a, ComError::Codec("other".into()));
    }

    #[test]
    fn fault_errors_render_the_failing_machines() {
        let err = ComError::Partitioned {
            from: MachineId::CLIENT,
            to: MachineId::SERVER,
        };
        assert_eq!(
            err.to_string(),
            "network partitioned between client and server"
        );
        assert_eq!(
            ComError::MachineDown(MachineId::SERVER).to_string(),
            "machine server is down"
        );
        let timeout = ComError::Timeout {
            detail: "client→server after 4 attempt(s)".into(),
        };
        assert!(timeout.to_string().contains("timed out"));
    }

    #[test]
    fn error_trait_object_works() {
        let err: Box<dyn std::error::Error> = Box::new(ComError::DeadInstance(7));
        assert!(err.to_string().contains("#7"));
    }
}
