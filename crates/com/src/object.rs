//! Component objects, instances, and machine placement.

use crate::error::ComResult;
use crate::guid::{Clsid, Iid};
use crate::interface::Message;
use crate::runtime::ComRuntime;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Identifies one component *instance* within an execution.
///
/// Instance ids are allocated sequentially by the runtime; the order of
/// allocation is what the paper's "incremental" straw-man classifier keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifies a machine in the network topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u16);

impl MachineId {
    /// The client machine — where a non-distributed application runs.
    pub const CLIENT: MachineId = MachineId(0);
    /// The server machine of a two-machine, client/server distribution.
    pub const SERVER: MachineId = MachineId(1);
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MachineId::CLIENT => write!(f, "client"),
            MachineId::SERVER => write!(f, "server"),
            MachineId(n) => write!(f, "machine{n}"),
        }
    }
}

/// Per-call context handed to a component implementation.
///
/// Gives the component access to the runtime (to instantiate children, make
/// nested calls, or charge compute time) and to its own identity.
pub struct CallCtx<'a> {
    rt: &'a ComRuntime,
    self_id: InstanceId,
    self_clsid: Clsid,
}

impl<'a> CallCtx<'a> {
    /// Creates a call context (used by the dispatch machinery).
    pub fn new(rt: &'a ComRuntime, self_id: InstanceId, self_clsid: Clsid) -> Self {
        CallCtx {
            rt,
            self_id,
            self_clsid,
        }
    }

    /// The runtime executing this call.
    pub fn rt(&self) -> &'a ComRuntime {
        self.rt
    }

    /// The instance being invoked.
    pub fn self_id(&self) -> InstanceId {
        self.self_id
    }

    /// The class of the instance being invoked.
    pub fn self_clsid(&self) -> Clsid {
        self.self_clsid
    }

    /// Instantiates a child component (equivalent to `CoCreateInstance`).
    pub fn create(&self, clsid: Clsid, iid: Iid) -> ComResult<crate::interface::InterfacePtr> {
        self.rt.create_instance(clsid, iid)
    }

    /// Charges `us` microseconds of compute time on this instance's machine.
    pub fn compute(&self, us: u64) {
        self.rt.charge_compute(self.self_id, us);
    }
}

/// The behavior of a component class: every simCOM component implements this.
///
/// `invoke` receives the interface and method being called plus the message
/// holding `[in]` arguments; it fills `[out]` arguments in place. This is the
/// moral equivalent of a COM vtable dispatch, routed dynamically so runtimes
/// can interpose.
pub trait ComObject: Send + Sync {
    /// Dispatches a method call on one of the component's interfaces.
    fn invoke(&self, ctx: &CallCtx<'_>, iid: Iid, method: u32, msg: &mut Message) -> ComResult<()>;

    /// A hash of the component's observable instance state, if the
    /// component exposes one.
    ///
    /// The profiling runtime fingerprints instances before and after each
    /// call to cross-check declared [`crate::idl::StateEffect`] annotations:
    /// a method declared `Pure`/`ReadsState` whose fingerprint changed is a
    /// lying annotation (diagnostic COIGN045). The default `None` opts the
    /// component out of the check — absence of a fingerprint is never
    /// treated as evidence either way.
    fn state_fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Runtime record for a live component instance.
pub struct Instance {
    /// Unique id of the instance.
    pub id: InstanceId,
    /// Class of the instance.
    pub clsid: Clsid,
    /// The implementation object.
    pub object: Arc<dyn ComObject>,
    /// Machine the instance currently lives on.
    machine: Mutex<MachineId>,
}

impl Instance {
    /// Creates an instance record.
    pub fn new(
        id: InstanceId,
        clsid: Clsid,
        object: Arc<dyn ComObject>,
        machine: MachineId,
    ) -> Arc<Self> {
        Arc::new(Instance {
            id,
            clsid,
            object,
            machine: Mutex::new(machine),
        })
    }

    /// Machine the instance currently lives on.
    pub fn machine(&self) -> MachineId {
        *self.machine.lock()
    }

    /// Moves the instance to another machine (used when a distribution is
    /// realized).
    pub fn set_machine(&self, m: MachineId) {
        *self.machine.lock() = m;
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("id", &self.id)
            .field("clsid", &self.clsid)
            .field("machine", &self.machine())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            _msg: &mut Message,
        ) -> ComResult<()> {
            Ok(())
        }
    }

    #[test]
    fn machine_ids_display() {
        assert_eq!(MachineId::CLIENT.to_string(), "client");
        assert_eq!(MachineId::SERVER.to_string(), "server");
        assert_eq!(MachineId(3).to_string(), "machine3");
    }

    #[test]
    fn instance_machine_is_mutable() {
        let inst = Instance::new(
            InstanceId(1),
            Clsid::from_name("X"),
            Arc::new(Nop),
            MachineId::CLIENT,
        );
        assert_eq!(inst.machine(), MachineId::CLIENT);
        inst.set_machine(MachineId::SERVER);
        assert_eq!(inst.machine(), MachineId::SERVER);
    }

    #[test]
    fn instance_ids_order_by_allocation() {
        assert!(InstanceId(1) < InstanceId(2));
        assert_eq!(InstanceId(7).to_string(), "#7");
    }
}
