//! MIDL-equivalent interface metadata.
//!
//! COM interfaces are described in IDL and compiled by MIDL into format
//! strings and marshaling stubs; Coign's profiling informer consumes that
//! metadata to walk every parameter of every call. This module is the
//! simulation's equivalent: each [`InterfaceDesc`] carries the full method
//! table with per-parameter directions and types, and records whether the
//! interface is *remotable* (contains no opaque pointer parameters).

use crate::guid::Iid;
use crate::value::{PType, Value};
use std::sync::Arc;

/// Direction of a parameter: `[in]`, `[out]`, or `[in, out]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamDir {
    /// Marshaled with the request only.
    In,
    /// Marshaled with the reply only.
    Out,
    /// Marshaled with both the request and the reply.
    InOut,
}

impl ParamDir {
    /// Returns true if the parameter travels with the request message.
    pub fn in_request(self) -> bool {
        matches!(self, ParamDir::In | ParamDir::InOut)
    }

    /// Returns true if the parameter travels with the reply message.
    pub fn in_reply(self) -> bool {
        matches!(self, ParamDir::Out | ParamDir::InOut)
    }
}

/// Metadata for one parameter of an interface method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDesc {
    /// Parameter name (for diagnostics only).
    pub name: String,
    /// Marshal direction.
    pub dir: ParamDir,
    /// Static type.
    pub ty: PType,
}

impl ParamDesc {
    /// Creates a parameter description.
    pub fn new(name: &str, dir: ParamDir, ty: PType) -> Self {
        ParamDesc {
            name: name.to_string(),
            dir,
            ty,
        }
    }

    /// Shorthand for an `[in]` parameter.
    pub fn input(name: &str, ty: PType) -> Self {
        Self::new(name, ParamDir::In, ty)
    }

    /// Shorthand for an `[out]` parameter.
    pub fn output(name: &str, ty: PType) -> Self {
        Self::new(name, ParamDir::Out, ty)
    }

    /// Shorthand for an `[in, out]` parameter.
    pub fn inout(name: &str, ty: PType) -> Self {
        Self::new(name, ParamDir::InOut, ty)
    }
}

/// Metadata for one method of an interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDesc {
    /// Method name (for diagnostics and classifier descriptors).
    pub name: String,
    /// Ordered parameter list.
    pub params: Vec<ParamDesc>,
}

impl MethodDesc {
    /// Creates a method description.
    pub fn new(name: &str, params: Vec<ParamDesc>) -> Self {
        MethodDesc {
            name: name.to_string(),
            params,
        }
    }

    /// Returns true if every parameter type can cross a machine boundary.
    pub fn is_remotable(&self) -> bool {
        self.params.iter().all(|p| p.ty.is_remotable())
    }

    /// Validates an argument list against the signature.
    ///
    /// Checks arity and per-parameter structural conformance; `Null` is
    /// accepted anywhere (out-parameters start as `Null`).
    pub fn check_args(&self, args: &[Value]) -> Result<(), String> {
        if args.len() != self.params.len() {
            return Err(format!(
                "method {} expects {} args, got {}",
                self.name,
                self.params.len(),
                args.len()
            ));
        }
        for (value, param) in args.iter().zip(&self.params) {
            if !value.conforms_to(&param.ty) {
                return Err(format!(
                    "method {}: argument {:?} does not conform to parameter `{}` ({:?})",
                    self.name, value, param.name, param.ty
                ));
            }
        }
        Ok(())
    }
}

/// Full static metadata for a COM interface.
///
/// Interface descriptions are immutable and shared (`Arc`) between all
/// interface pointers of that type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDesc {
    /// Interface identifier, derived from the name.
    pub iid: Iid,
    /// Interface name, e.g. `"IPropSet"`.
    pub name: String,
    /// Method table, indexed by method id.
    pub methods: Vec<MethodDesc>,
    /// True if every method of the interface can be remoted.
    ///
    /// A non-remotable (non-distributable) interface forces its two endpoint
    /// components onto the same machine — the paper's solid black edges in
    /// Figures 4 and 5.
    pub remotable: bool,
}

impl InterfaceDesc {
    /// Creates an interface description; remotability is computed from the
    /// method signatures.
    pub fn new(name: &str, methods: Vec<MethodDesc>) -> Arc<Self> {
        let remotable = methods.iter().all(MethodDesc::is_remotable);
        Arc::new(InterfaceDesc {
            iid: Iid::from_name(name),
            name: name.to_string(),
            methods,
            remotable,
        })
    }

    /// Looks up a method by index.
    pub fn method(&self, id: u32) -> Option<&MethodDesc> {
        self.methods.get(id as usize)
    }

    /// Looks up a method index by name.
    pub fn method_id(&self, name: &str) -> Option<u32> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| i as u32)
    }
}

/// Builder for interface descriptions, for ergonomic IDL-like definitions.
///
/// # Examples
///
/// ```
/// use coign_com::idl::InterfaceBuilder;
/// use coign_com::{ParamDir, PType};
///
/// let desc = InterfaceBuilder::new("IStream")
///     .method("Read", |m| {
///         m.input("count", PType::I4).output("data", PType::Blob)
///     })
///     .method("Seek", |m| m.input("pos", PType::I8))
///     .build();
/// assert!(desc.remotable);
/// assert_eq!(desc.method_id("Seek"), Some(1));
/// ```
pub struct InterfaceBuilder {
    name: String,
    methods: Vec<MethodDesc>,
}

/// Builder for a single method signature.
#[derive(Default)]
pub struct MethodBuilder {
    params: Vec<ParamDesc>,
}

impl MethodBuilder {
    /// Adds an `[in]` parameter.
    pub fn input(mut self, name: &str, ty: PType) -> Self {
        self.params.push(ParamDesc::input(name, ty));
        self
    }

    /// Adds an `[out]` parameter.
    pub fn output(mut self, name: &str, ty: PType) -> Self {
        self.params.push(ParamDesc::output(name, ty));
        self
    }

    /// Adds an `[in, out]` parameter.
    pub fn inout(mut self, name: &str, ty: PType) -> Self {
        self.params.push(ParamDesc::inout(name, ty));
        self
    }
}

impl InterfaceBuilder {
    /// Starts a new interface definition.
    pub fn new(name: &str) -> Self {
        InterfaceBuilder {
            name: name.to_string(),
            methods: Vec::new(),
        }
    }

    /// Adds a method defined by the closure.
    pub fn method(
        mut self,
        name: &str,
        define: impl FnOnce(MethodBuilder) -> MethodBuilder,
    ) -> Self {
        let mb = define(MethodBuilder::default());
        self.methods.push(MethodDesc::new(name, mb.params));
        self
    }

    /// Finishes the definition.
    pub fn build(self) -> Arc<InterfaceDesc> {
        InterfaceDesc::new(&self.name, self.methods)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Arc<InterfaceDesc> {
        InterfaceBuilder::new("ISample")
            .method("Get", |m| {
                m.input("key", PType::Str).output("value", PType::I4)
            })
            .method("Put", |m| {
                m.input("key", PType::Str).input("value", PType::I4)
            })
            .build()
    }

    #[test]
    fn builder_produces_expected_table() {
        let desc = sample();
        assert_eq!(desc.methods.len(), 2);
        assert_eq!(desc.method(0).unwrap().name, "Get");
        assert_eq!(desc.method_id("Put"), Some(1));
        assert_eq!(desc.method_id("Missing"), None);
        assert!(desc.method(9).is_none());
    }

    #[test]
    fn iid_derived_from_name() {
        assert_eq!(sample().iid, Iid::from_name("ISample"));
    }

    #[test]
    fn remotability_detects_opaque_params() {
        let desc = InterfaceBuilder::new("ISharedMem")
            .method("MapRegion", |m| m.input("handle", PType::Opaque))
            .build();
        assert!(!desc.remotable);
        assert!(!desc.method(0).unwrap().is_remotable());
    }

    #[test]
    fn param_directions() {
        assert!(ParamDir::In.in_request() && !ParamDir::In.in_reply());
        assert!(!ParamDir::Out.in_request() && ParamDir::Out.in_reply());
        assert!(ParamDir::InOut.in_request() && ParamDir::InOut.in_reply());
    }

    #[test]
    fn check_args_validates_arity() {
        let desc = sample();
        let m = desc.method(0).unwrap();
        assert!(m.check_args(&[Value::Str("k".into())]).is_err());
        assert!(m.check_args(&[Value::Str("k".into()), Value::Null]).is_ok());
    }

    #[test]
    fn check_args_validates_types() {
        let desc = sample();
        let m = desc.method(1).unwrap();
        let err = m.check_args(&[Value::I4(1), Value::I4(2)]).unwrap_err();
        assert!(err.contains("does not conform"));
    }
}
