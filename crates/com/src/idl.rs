//! MIDL-equivalent interface metadata.
//!
//! COM interfaces are described in IDL and compiled by MIDL into format
//! strings and marshaling stubs; Coign's profiling informer consumes that
//! metadata to walk every parameter of every call. This module is the
//! simulation's equivalent: each [`InterfaceDesc`] carries the full method
//! table with per-parameter directions and types, and records whether the
//! interface is *remotable* (contains no opaque pointer parameters).

use crate::guid::Iid;
use crate::value::{PType, Value};
use std::sync::Arc;

/// Direction of a parameter: `[in]`, `[out]`, or `[in, out]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamDir {
    /// Marshaled with the request only.
    In,
    /// Marshaled with the reply only.
    Out,
    /// Marshaled with both the request and the reply.
    InOut,
}

impl ParamDir {
    /// Returns true if the parameter travels with the request message.
    pub fn in_request(self) -> bool {
        matches!(self, ParamDir::In | ParamDir::InOut)
    }

    /// Returns true if the parameter travels with the reply message.
    pub fn in_reply(self) -> bool {
        matches!(self, ParamDir::Out | ParamDir::InOut)
    }
}

/// Metadata for one parameter of an interface method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDesc {
    /// Parameter name (for diagnostics only).
    pub name: String,
    /// Marshal direction.
    pub dir: ParamDir,
    /// Static type.
    pub ty: PType,
}

impl ParamDesc {
    /// Creates a parameter description.
    pub fn new(name: &str, dir: ParamDir, ty: PType) -> Self {
        ParamDesc {
            name: name.to_string(),
            dir,
            ty,
        }
    }

    /// Shorthand for an `[in]` parameter.
    pub fn input(name: &str, ty: PType) -> Self {
        Self::new(name, ParamDir::In, ty)
    }

    /// Shorthand for an `[out]` parameter.
    pub fn output(name: &str, ty: PType) -> Self {
        Self::new(name, ParamDir::Out, ty)
    }

    /// Shorthand for an `[in, out]` parameter.
    pub fn inout(name: &str, ty: PType) -> Self {
        Self::new(name, ParamDir::InOut, ty)
    }
}

/// Declared effect of a method on its component's instance state.
///
/// Effect annotations are the input to the replication-legality analysis
/// (`coign check` stages 4 and 5): a class whose every method is `Pure` or
/// `ReadsState` is *immutable after construction* and may legally be
/// replicated onto several machines. The default for unannotated methods is
/// the conservative [`StateEffect::MutatesState`], so an application that
/// declares nothing is never misclassified as replicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StateEffect {
    /// The method neither reads nor writes instance state (a pure function
    /// of its arguments).
    Pure,
    /// The method reads instance state but never modifies it.
    ReadsState,
    /// The method may modify instance state (the conservative default).
    MutatesState,
}

impl StateEffect {
    /// Returns true if the method promises not to modify instance state.
    pub fn is_read_only(self) -> bool {
        matches!(self, StateEffect::Pure | StateEffect::ReadsState)
    }

    /// Short lowercase label used in diagnostics and dot output.
    pub fn label(self) -> &'static str {
        match self {
            StateEffect::Pure => "pure",
            StateEffect::ReadsState => "reads",
            StateEffect::MutatesState => "mutates",
        }
    }
}

/// Metadata for one method of an interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDesc {
    /// Method name (for diagnostics and classifier descriptors).
    pub name: String,
    /// Ordered parameter list.
    pub params: Vec<ParamDesc>,
    /// Declared effect on instance state (conservatively
    /// [`StateEffect::MutatesState`] unless annotated).
    pub effect: StateEffect,
}

impl MethodDesc {
    /// Creates a method description with the conservative
    /// [`StateEffect::MutatesState`] effect.
    pub fn new(name: &str, params: Vec<ParamDesc>) -> Self {
        MethodDesc {
            name: name.to_string(),
            params,
            effect: StateEffect::MutatesState,
        }
    }

    /// Creates a method description with an explicit state effect.
    pub fn with_effect(name: &str, params: Vec<ParamDesc>, effect: StateEffect) -> Self {
        MethodDesc {
            effect,
            ..Self::new(name, params)
        }
    }

    /// Returns true if every parameter type can cross a machine boundary.
    pub fn is_remotable(&self) -> bool {
        self.params.iter().all(|p| p.ty.is_remotable())
    }

    /// Validates an argument list against the signature.
    ///
    /// Checks arity and per-parameter structural conformance; `Null` is
    /// accepted anywhere (out-parameters start as `Null`).
    pub fn check_args(&self, args: &[Value]) -> Result<(), String> {
        if args.len() != self.params.len() {
            return Err(format!(
                "method {} expects {} args, got {}",
                self.name,
                self.params.len(),
                args.len()
            ));
        }
        for (value, param) in args.iter().zip(&self.params) {
            if !value.conforms_to(&param.ty) {
                return Err(format!(
                    "method {}: argument {:?} does not conform to parameter `{}` ({:?})",
                    self.name, value, param.name, param.ty
                ));
            }
        }
        Ok(())
    }
}

/// Full static metadata for a COM interface.
///
/// Interface descriptions are immutable and shared (`Arc`) between all
/// interface pointers of that type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDesc {
    /// Interface identifier, derived from the name.
    pub iid: Iid,
    /// Interface name, e.g. `"IPropSet"`.
    pub name: String,
    /// Method table, indexed by method id.
    pub methods: Vec<MethodDesc>,
    /// True if every method of the interface can be remoted.
    ///
    /// A non-remotable (non-distributable) interface forces its two endpoint
    /// components onto the same machine — the paper's solid black edges in
    /// Figures 4 and 5.
    pub remotable: bool,
}

impl InterfaceDesc {
    /// Creates an interface description; remotability is computed from the
    /// method signatures.
    pub fn new(name: &str, methods: Vec<MethodDesc>) -> Arc<Self> {
        let remotable = methods.iter().all(MethodDesc::is_remotable);
        Arc::new(InterfaceDesc {
            iid: Iid::from_name(name),
            name: name.to_string(),
            methods,
            remotable,
        })
    }

    /// Looks up a method by index.
    pub fn method(&self, id: u32) -> Option<&MethodDesc> {
        self.methods.get(id as usize)
    }

    /// Looks up a method index by name.
    pub fn method_id(&self, name: &str) -> Option<u32> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| i as u32)
    }
}

/// Builder for interface descriptions, for ergonomic IDL-like definitions.
///
/// # Examples
///
/// ```
/// use coign_com::idl::InterfaceBuilder;
/// use coign_com::{ParamDir, PType};
///
/// let desc = InterfaceBuilder::new("IStream")
///     .method("Read", |m| {
///         m.input("count", PType::I4).output("data", PType::Blob)
///     })
///     .method("Seek", |m| m.input("pos", PType::I8))
///     .build();
/// assert!(desc.remotable);
/// assert_eq!(desc.method_id("Seek"), Some(1));
/// ```
pub struct InterfaceBuilder {
    name: String,
    methods: Vec<MethodDesc>,
}

/// Builder for a single method signature.
#[derive(Default)]
pub struct MethodBuilder {
    params: Vec<ParamDesc>,
    effect: Option<StateEffect>,
}

impl MethodBuilder {
    /// Adds an `[in]` parameter.
    pub fn input(mut self, name: &str, ty: PType) -> Self {
        self.params.push(ParamDesc::input(name, ty));
        self
    }

    /// Adds an `[out]` parameter.
    pub fn output(mut self, name: &str, ty: PType) -> Self {
        self.params.push(ParamDesc::output(name, ty));
        self
    }

    /// Adds an `[in, out]` parameter.
    pub fn inout(mut self, name: &str, ty: PType) -> Self {
        self.params.push(ParamDesc::inout(name, ty));
        self
    }

    /// Declares the method a pure function of its arguments.
    pub fn pure(mut self) -> Self {
        self.effect = Some(StateEffect::Pure);
        self
    }

    /// Declares that the method reads but never modifies instance state.
    pub fn reads_state(mut self) -> Self {
        self.effect = Some(StateEffect::ReadsState);
        self
    }

    /// Declares that the method may modify instance state (this is also the
    /// default for unannotated methods).
    pub fn mutates_state(mut self) -> Self {
        self.effect = Some(StateEffect::MutatesState);
        self
    }
}

impl InterfaceBuilder {
    /// Starts a new interface definition.
    pub fn new(name: &str) -> Self {
        InterfaceBuilder {
            name: name.to_string(),
            methods: Vec::new(),
        }
    }

    /// Adds a method defined by the closure.
    pub fn method(
        mut self,
        name: &str,
        define: impl FnOnce(MethodBuilder) -> MethodBuilder,
    ) -> Self {
        let mb = define(MethodBuilder::default());
        let effect = mb.effect.unwrap_or(StateEffect::MutatesState);
        self.methods
            .push(MethodDesc::with_effect(name, mb.params, effect));
        self
    }

    /// Finishes the definition.
    pub fn build(self) -> Arc<InterfaceDesc> {
        InterfaceDesc::new(&self.name, self.methods)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Arc<InterfaceDesc> {
        InterfaceBuilder::new("ISample")
            .method("Get", |m| {
                m.input("key", PType::Str).output("value", PType::I4)
            })
            .method("Put", |m| {
                m.input("key", PType::Str).input("value", PType::I4)
            })
            .build()
    }

    #[test]
    fn builder_produces_expected_table() {
        let desc = sample();
        assert_eq!(desc.methods.len(), 2);
        assert_eq!(desc.method(0).unwrap().name, "Get");
        assert_eq!(desc.method_id("Put"), Some(1));
        assert_eq!(desc.method_id("Missing"), None);
        assert!(desc.method(9).is_none());
    }

    #[test]
    fn iid_derived_from_name() {
        assert_eq!(sample().iid, Iid::from_name("ISample"));
    }

    #[test]
    fn remotability_detects_opaque_params() {
        let desc = InterfaceBuilder::new("ISharedMem")
            .method("MapRegion", |m| m.input("handle", PType::Opaque))
            .build();
        assert!(!desc.remotable);
        assert!(!desc.method(0).unwrap().is_remotable());
    }

    #[test]
    fn param_directions() {
        assert!(ParamDir::In.in_request() && !ParamDir::In.in_reply());
        assert!(!ParamDir::Out.in_request() && ParamDir::Out.in_reply());
        assert!(ParamDir::InOut.in_request() && ParamDir::InOut.in_reply());
    }

    #[test]
    fn check_args_validates_arity() {
        let desc = sample();
        let m = desc.method(0).unwrap();
        assert!(m.check_args(&[Value::Str("k".into())]).is_err());
        assert!(m.check_args(&[Value::Str("k".into()), Value::Null]).is_ok());
    }

    #[test]
    fn check_args_validates_types() {
        let desc = sample();
        let m = desc.method(1).unwrap();
        let err = m.check_args(&[Value::I4(1), Value::I4(2)]).unwrap_err();
        assert!(err.contains("does not conform"));
    }

    #[test]
    fn unannotated_methods_default_to_mutates_state() {
        let desc = sample();
        assert_eq!(desc.method(0).unwrap().effect, StateEffect::MutatesState);
        assert_eq!(desc.method(1).unwrap().effect, StateEffect::MutatesState);
        assert_eq!(
            MethodDesc::new("M", vec![]).effect,
            StateEffect::MutatesState
        );
    }

    #[test]
    fn builder_effect_shorthands_stick() {
        let desc = InterfaceBuilder::new("IEffects")
            .method("Hash", |m| m.input("data", PType::Blob).pure())
            .method("Peek", |m| m.output("value", PType::I4).reads_state())
            .method("Poke", |m| m.input("value", PType::I4).mutates_state())
            .method("Quiet", |m| m.input("value", PType::I4))
            .build();
        assert_eq!(desc.method(0).unwrap().effect, StateEffect::Pure);
        assert_eq!(desc.method(1).unwrap().effect, StateEffect::ReadsState);
        assert_eq!(desc.method(2).unwrap().effect, StateEffect::MutatesState);
        assert_eq!(desc.method(3).unwrap().effect, StateEffect::MutatesState);
    }

    #[test]
    fn effect_read_only_predicate() {
        assert!(StateEffect::Pure.is_read_only());
        assert!(StateEffect::ReadsState.is_read_only());
        assert!(!StateEffect::MutatesState.is_read_only());
        assert_eq!(StateEffect::Pure.label(), "pure");
        assert_eq!(StateEffect::ReadsState.label(), "reads");
        assert_eq!(StateEffect::MutatesState.label(), "mutates");
    }
}
