//! Globally unique identifiers for classes and interfaces.
//!
//! Real COM GUIDs are 128-bit values minted by `uuidgen`. For a deterministic
//! simulation we instead derive them from names with a 128-bit FNV-1a hash, so
//! the same class or interface name yields the same GUID in every build and
//! every run — a property the reproduction relies on to make profile logs and
//! configuration records stable across executions.

use std::fmt;

/// A 128-bit globally unique identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Guid(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Guid {
    /// Derives a GUID deterministically from a name using 128-bit FNV-1a.
    ///
    /// # Examples
    ///
    /// ```
    /// use coign_com::Guid;
    /// assert_eq!(Guid::from_name("IStream"), Guid::from_name("IStream"));
    /// assert_ne!(Guid::from_name("IStream"), Guid::from_name("IStorage"));
    /// ```
    pub fn from_name(name: &str) -> Self {
        let mut hash = FNV_OFFSET;
        for byte in name.as_bytes() {
            hash ^= u128::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        Guid(hash)
    }

    /// The all-zero GUID (`GUID_NULL`).
    pub const NULL: Guid = Guid(0);

    /// Returns true if this is the null GUID.
    pub fn is_null(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Standard registry format: {XXXXXXXX-XXXX-XXXX-XXXX-XXXXXXXXXXXX}.
        let b = self.0.to_be_bytes();
        write!(
            f,
            "{{{:02X}{:02X}{:02X}{:02X}-{:02X}{:02X}-{:02X}{:02X}-{:02X}{:02X}-{:02X}{:02X}{:02X}{:02X}{:02X}{:02X}}}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12],
            b[13], b[14], b[15]
        )
    }
}

impl fmt::Debug for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A class identifier (CLSID): names a concrete component class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clsid(pub Guid);

impl Clsid {
    /// Derives a CLSID deterministically from a class name.
    pub fn from_name(name: &str) -> Self {
        Clsid(Guid::from_name(name))
    }
}

impl fmt::Display for Clsid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CLSID:{}", self.0)
    }
}

impl fmt::Debug for Clsid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An interface identifier (IID): names a polymorphic interface type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iid(pub Guid);

impl Iid {
    /// Derives an IID deterministically from an interface name.
    pub fn from_name(name: &str) -> Self {
        Iid(Guid::from_name(name))
    }
}

impl fmt::Display for Iid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IID:{}", self.0)
    }
}

impl fmt::Debug for Iid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn from_name_is_deterministic() {
        assert_eq!(
            Guid::from_name("ISpriteCache"),
            Guid::from_name("ISpriteCache")
        );
    }

    #[test]
    fn distinct_names_rarely_collide() {
        let mut seen = HashSet::new();
        for i in 0..10_000 {
            let g = Guid::from_name(&format!("Interface{i}"));
            assert!(seen.insert(g), "collision at {i}");
        }
    }

    #[test]
    fn null_guid() {
        assert!(Guid::NULL.is_null());
        assert!(!Guid::from_name("x").is_null());
    }

    #[test]
    fn display_has_registry_shape() {
        let text = Guid::from_name("IUnknown").to_string();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert_eq!(text.len(), 2 + 32 + 4); // braces + hex digits + hyphens
        assert_eq!(text.matches('-').count(), 4);
    }

    #[test]
    fn clsid_and_iid_from_same_name_share_guid() {
        assert_eq!(Clsid::from_name("Foo").0, Iid::from_name("Foo").0);
    }

    #[test]
    fn empty_name_hashes_to_offset_basis() {
        assert_eq!(Guid::from_name("").0, super::FNV_OFFSET);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Guid::from_name("c"),
            Guid::from_name("a"),
            Guid::from_name("b"),
        ];
        v.sort();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
