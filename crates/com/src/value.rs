//! Typed values exchanged across interface calls.
//!
//! The Coign profiling informer measures, for every interface call, the number
//! of bytes that *would* cross the network if caller and callee were on
//! different machines — following DCOM's deep-copy marshaling semantics. To do
//! that the simulation exchanges structured [`Value`] trees whose wire size is
//! well defined, rather than raw Rust types.
//!
//! Two variants deserve special mention:
//!
//! * [`Value::Blob`] carries only a *size*, not actual bytes, so a scenario
//!   that "loads a 3 MB composition" is cheap to simulate while still
//!   contributing 3 MB to the measured communication.
//! * [`Value::Opaque`] models a raw pointer passed through an interface (such
//!   as the shared-memory handles between PhotoDraw's sprite caches). Opaque
//!   values cannot be marshaled; an interface whose signature contains one is
//!   **non-remotable**, which is exactly what constrains Coign's distribution
//!   choices in the paper's Figures 4 and 5.

use crate::guid::Iid;
use crate::interface::InterfacePtr;
use std::fmt;

/// Static type of a parameter, as recorded in interface metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PType {
    /// 32-bit signed integer.
    I4,
    /// 64-bit signed integer.
    I8,
    /// 64-bit IEEE float.
    F8,
    /// Boolean (marshals as 4 bytes, like `VARIANT_BOOL` padding).
    Bool,
    /// Length-prefixed Unicode string (`BSTR`).
    Str,
    /// Untyped byte buffer whose length is dynamic (e.g. pixel data).
    Blob,
    /// Homogeneous array (`SAFEARRAY`) of the element type.
    Array(Box<PType>),
    /// Record with the given field types.
    Struct(Vec<PType>),
    /// Interface pointer of the given IID; marshals as an object reference.
    Interface(Iid),
    /// Raw pointer / handle that the standard marshaler cannot transfer.
    ///
    /// Any method with an `Opaque` parameter makes its whole interface
    /// non-remotable.
    Opaque,
}

impl PType {
    /// Returns true if a value of this type can cross a machine boundary.
    pub fn is_remotable(&self) -> bool {
        match self {
            PType::Opaque => false,
            PType::Array(elem) => elem.is_remotable(),
            PType::Struct(fields) => fields.iter().all(PType::is_remotable),
            _ => true,
        }
    }

    /// Appends every interface IID referenced by this type (recursing
    /// through arrays and structs) to `out`. Static analysis uses this to
    /// find interface-pointer parameters whose target interface is never
    /// declared by any registered class.
    pub fn collect_interface_iids(&self, out: &mut Vec<Iid>) {
        match self {
            PType::Interface(iid) => out.push(*iid),
            PType::Array(elem) => elem.collect_interface_iids(out),
            PType::Struct(fields) => {
                for field in fields {
                    field.collect_interface_iids(out);
                }
            }
            _ => {}
        }
    }
}

/// A dynamically typed value carried in a [`crate::interface::Message`].
#[derive(Clone)]
pub enum Value {
    /// 32-bit signed integer.
    I4(i32),
    /// 64-bit signed integer.
    I8(i64),
    /// 64-bit IEEE float.
    F8(f64),
    /// Boolean.
    Bool(bool),
    /// Unicode string.
    Str(String),
    /// Byte buffer of the given size (contents are not simulated).
    Blob(u64),
    /// Homogeneous array.
    Array(Vec<Value>),
    /// Record value.
    Struct(Vec<Value>),
    /// Interface pointer (None models a NULL interface out-parameter).
    Interface(Option<InterfacePtr>),
    /// Raw pointer / handle, identified only by a token.
    Opaque(u64),
    /// Placeholder for an out-parameter that has not been filled in yet.
    Null,
}

impl Value {
    /// Returns true if the value structurally conforms to the given type.
    ///
    /// `Null` conforms to every type (it is the pre-call state of an
    /// out-parameter).
    pub fn conforms_to(&self, ty: &PType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::I4(_), PType::I4) => true,
            (Value::I8(_), PType::I8) => true,
            (Value::F8(_), PType::F8) => true,
            (Value::Bool(_), PType::Bool) => true,
            (Value::Str(_), PType::Str) => true,
            (Value::Blob(_), PType::Blob) => true,
            (Value::Array(items), PType::Array(elem)) => items.iter().all(|v| v.conforms_to(elem)),
            (Value::Struct(fields), PType::Struct(tys)) => {
                fields.len() == tys.len() && fields.iter().zip(tys).all(|(v, t)| v.conforms_to(t))
            }
            (Value::Interface(_), PType::Interface(_)) => true,
            (Value::Opaque(_), PType::Opaque) => true,
            _ => false,
        }
    }

    /// Convenience accessor for an `I4` value.
    pub fn as_i4(&self) -> Option<i32> {
        match self {
            Value::I4(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor for an `I8` value.
    pub fn as_i8(&self) -> Option<i64> {
        match self {
            Value::I8(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor for a `Blob` size.
    pub fn as_blob(&self) -> Option<u64> {
        match self {
            Value::Blob(size) => Some(*size),
            _ => None,
        }
    }

    /// Convenience accessor for a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor for an interface pointer.
    pub fn as_interface(&self) -> Option<&InterfacePtr> {
        match self {
            Value::Interface(Some(ptr)) => Some(ptr),
            _ => None,
        }
    }

    /// Takes an interface pointer out of the value, leaving `Null`.
    pub fn take_interface(&mut self) -> Option<InterfacePtr> {
        match std::mem::replace(self, Value::Null) {
            Value::Interface(Some(ptr)) => Some(ptr),
            other => {
                *self = other;
                None
            }
        }
    }

    /// Visits every value in the tree (pre-order), including `self`.
    pub fn walk(&self, visit: &mut dyn FnMut(&Value)) {
        visit(self);
        match self {
            Value::Array(items) | Value::Struct(items) => {
                for item in items {
                    item.walk(visit);
                }
            }
            _ => {}
        }
    }

    /// Visits every value mutably (pre-order), including `self`.
    pub fn walk_mut(&mut self, visit: &mut dyn FnMut(&mut Value)) {
        visit(self);
        match self {
            Value::Array(items) | Value::Struct(items) => {
                for item in items {
                    item.walk_mut(visit);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I4(v) => write!(f, "i4:{v}"),
            Value::I8(v) => write!(f, "i8:{v}"),
            Value::F8(v) => write!(f, "f8:{v}"),
            Value::Bool(v) => write!(f, "bool:{v}"),
            Value::Str(s) => write!(f, "str:{s:?}"),
            Value::Blob(n) => write!(f, "blob[{n}]"),
            Value::Array(items) => write!(f, "array{items:?}"),
            Value::Struct(items) => write!(f, "struct{items:?}"),
            Value::Interface(Some(ptr)) => write!(f, "iface({})", ptr.iid()),
            Value::Interface(None) => write!(f, "iface(null)"),
            Value::Opaque(tok) => write!(f, "opaque:0x{tok:x}"),
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remotability_of_scalars() {
        assert!(PType::I4.is_remotable());
        assert!(PType::Str.is_remotable());
        assert!(!PType::Opaque.is_remotable());
    }

    #[test]
    fn remotability_is_recursive() {
        let nested = PType::Struct(vec![PType::I4, PType::Array(Box::new(PType::Opaque))]);
        assert!(!nested.is_remotable());
        let clean = PType::Struct(vec![PType::I4, PType::Array(Box::new(PType::Str))]);
        assert!(clean.is_remotable());
    }

    #[test]
    fn conformance_checks_shape() {
        let ty = PType::Struct(vec![PType::I4, PType::Str]);
        let ok = Value::Struct(vec![Value::I4(1), Value::Str("hi".into())]);
        let bad = Value::Struct(vec![Value::Str("hi".into()), Value::I4(1)]);
        assert!(ok.conforms_to(&ty));
        assert!(!bad.conforms_to(&ty));
    }

    #[test]
    fn null_conforms_to_everything() {
        assert!(Value::Null.conforms_to(&PType::Opaque));
        assert!(Value::Null.conforms_to(&PType::Array(Box::new(PType::I4))));
    }

    #[test]
    fn array_conformance_checks_elements() {
        let ty = PType::Array(Box::new(PType::I4));
        assert!(Value::Array(vec![Value::I4(1), Value::I4(2)]).conforms_to(&ty));
        assert!(!Value::Array(vec![Value::I4(1), Value::Bool(true)]).conforms_to(&ty));
        // Empty arrays conform vacuously.
        assert!(Value::Array(vec![]).conforms_to(&ty));
    }

    #[test]
    fn walk_visits_nested_values() {
        let v = Value::Struct(vec![
            Value::I4(1),
            Value::Array(vec![Value::Str("a".into()), Value::Blob(10)]),
        ]);
        let mut count = 0;
        v.walk(&mut |_| count += 1);
        assert_eq!(count, 5); // struct + i4 + array + str + blob
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::I4(42).as_i4(), Some(42));
        assert_eq!(Value::I4(42).as_i8(), None);
        assert_eq!(Value::Blob(99).as_blob(), Some(99));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
    }

    #[test]
    fn take_interface_on_non_interface_is_noop() {
        let mut v = Value::I4(3);
        assert!(v.take_interface().is_none());
        assert_eq!(v.as_i4(), Some(3));
    }
}
