//! A small length-prefixed binary codec.
//!
//! Coign persists profile summaries, classifier maps, and the chosen
//! distribution into a *configuration record* appended to the application
//! binary. This module provides the byte-level encoding used for all such
//! records: fixed-width little-endian integers and length-prefixed strings
//! and sequences. It is deliberately dependency-free and fully
//! property-tested for round-tripping.

use crate::error::{ComError, ComResult};
use crate::guid::Guid;

/// Serializer accumulating bytes.
#[derive(Default, Debug, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Finishes encoding, yielding the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an IEEE-754 f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a 128-bit GUID.
    pub fn put_guid(&mut self, g: Guid) {
        self.buf.extend_from_slice(&g.0.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Writes a sequence length prefix (pair with `Decoder::get_seq`).
    pub fn put_seq(&mut self, len: usize) {
        self.put_u32(len as u32);
    }
}

/// Deserializer consuming a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns true if the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> ComResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(ComError::Codec(format!(
                "buffer underrun: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> ComResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> ComResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> ComResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> ComResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn get_i64(&mut self) -> ComResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an IEEE-754 f64.
    pub fn get_f64(&mut self) -> ComResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bool.
    pub fn get_bool(&mut self) -> ComResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ComError::Codec(format!("invalid bool byte 0x{other:02x}"))),
        }
    }

    /// Reads a 128-bit GUID.
    pub fn get_guid(&mut self) -> ComResult<Guid> {
        Ok(Guid(u128::from_le_bytes(
            self.take(16)?.try_into().unwrap(),
        )))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> ComResult<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ComError::Codec(format!("invalid utf-8 string: {e}")))
    }

    /// Reads a length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> ComResult<Vec<u8>> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a sequence length prefix, validating it against the remaining
    /// buffer so corrupted lengths fail fast.
    ///
    /// `min_elem_size` is the minimum encoded size of one element.
    pub fn get_seq(&mut self, min_elem_size: usize) -> ComResult<usize> {
        let len = self.get_u32()? as usize;
        if min_elem_size > 0 && len.saturating_mul(min_elem_size) > self.remaining() {
            return Err(ComError::Codec(format!(
                "sequence of {len} elements cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_u16(0xCDEF);
        e.put_u32(0xDEADBEEF);
        e.put_u64(u64::MAX - 1);
        e.put_i64(-42);
        e.put_f64(3.25);
        e.put_bool(true);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u16().unwrap(), 0xCDEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap(), 3.25);
        assert!(d.get_bool().unwrap());
        assert!(d.is_done());
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        let mut e = Encoder::new();
        e.put_str("héllo wörld");
        e.put_bytes(&[1, 2, 3]);
        e.put_str("");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str().unwrap(), "héllo wörld");
        assert_eq!(d.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.get_str().unwrap(), "");
    }

    #[test]
    fn guid_roundtrip() {
        let g = Guid::from_name("IClassFactory");
        let mut e = Encoder::new();
        e.put_guid(g);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).get_guid().unwrap(), g);
    }

    #[test]
    fn underrun_is_an_error() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(d.get_u32(), Err(ComError::Codec(_))));
    }

    #[test]
    fn invalid_bool_is_an_error() {
        let mut d = Decoder::new(&[7]);
        assert!(matches!(d.get_bool(), Err(ComError::Codec(_))));
    }

    #[test]
    fn truncated_string_is_an_error() {
        let mut e = Encoder::new();
        e.put_str("hello");
        let mut bytes = e.finish();
        bytes.truncate(6); // length prefix says 5, only 2 bytes present
        assert!(Decoder::new(&bytes).get_str().is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let bytes = e.finish();
        assert!(Decoder::new(&bytes).get_str().is_err());
    }

    #[test]
    fn hostile_sequence_length_is_rejected() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX); // absurd element count
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_seq(8).is_err());
    }

    #[test]
    fn zero_min_elem_size_skips_validation() {
        let mut e = Encoder::new();
        e.put_seq(1000);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).get_seq(0).unwrap(), 1000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mixed_roundtrip(
            a in any::<u64>(),
            b in any::<i64>(),
            c in any::<f64>().prop_filter("NaN breaks eq", |f| !f.is_nan()),
            s in ".{0,64}",
            bytes in proptest::collection::vec(any::<u8>(), 0..128),
            flag in any::<bool>(),
            g in any::<u128>(),
        ) {
            let mut e = Encoder::new();
            e.put_u64(a);
            e.put_i64(b);
            e.put_f64(c);
            e.put_str(&s);
            e.put_bytes(&bytes);
            e.put_bool(flag);
            e.put_guid(Guid(g));
            let buf = e.finish();
            let mut d = Decoder::new(&buf);
            prop_assert_eq!(d.get_u64().unwrap(), a);
            prop_assert_eq!(d.get_i64().unwrap(), b);
            prop_assert_eq!(d.get_f64().unwrap(), c);
            prop_assert_eq!(d.get_str().unwrap(), s);
            prop_assert_eq!(d.get_bytes().unwrap(), bytes);
            prop_assert_eq!(d.get_bool().unwrap(), flag);
            prop_assert_eq!(d.get_guid().unwrap(), Guid(g));
            prop_assert!(d.is_done());
        }

        #[test]
        fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut d = Decoder::new(&data);
            // Whatever the bytes are, decoding returns Ok or Err, never panics.
            let _ = d.get_str();
            let _ = d.get_u64();
            let _ = d.get_bool();
            let _ = d.get_guid();
        }
    }
}
