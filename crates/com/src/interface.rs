//! Interface pointers, messages, and the invoker chain.
//!
//! An [`InterfacePtr`] is the simulation's equivalent of a COM interface
//! pointer: a refcounted handle through which *all* first-class communication
//! flows. Every pointer carries its static metadata ([`InterfaceDesc`]), the
//! identity of the owning component instance, and an [`Invoker`] — the
//! dispatch target.
//!
//! Interposition works exactly as in Coign's Runtime Executive: a runtime
//! "wraps" an interface by constructing a *new* pointer whose invoker performs
//! instrumentation (or remote proxying) and then forwards to the original
//! pointer. Application code cannot tell wrapped and unwrapped pointers apart.

use crate::error::{ComError, ComResult};
use crate::guid::{Clsid, Iid};
use crate::idl::InterfaceDesc;
use crate::object::InstanceId;
use crate::runtime::ComRuntime;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Argument/result package for one interface call.
///
/// On entry, `[in]` parameters hold caller-supplied values and `[out]`
/// parameters hold [`Value::Null`]; the callee fills the outputs in place.
#[derive(Clone, Debug, Default)]
pub struct Message {
    /// Positional arguments matching the method's parameter list.
    pub args: Vec<Value>,
}

impl Message {
    /// Creates a message from positional arguments.
    pub fn new(args: Vec<Value>) -> Self {
        Message { args }
    }

    /// Creates an empty message (for zero-argument methods).
    pub fn empty() -> Self {
        Message::default()
    }

    /// Creates a message with `n` arguments, all `Null` (outputs only).
    pub fn outputs(n: usize) -> Self {
        Message {
            args: vec![Value::Null; n],
        }
    }

    /// Borrow argument `i`, if present.
    pub fn arg(&self, i: usize) -> Option<&Value> {
        self.args.get(i)
    }

    /// Sets argument `i` (typically an out-parameter), growing with `Null`s
    /// if needed.
    pub fn set(&mut self, i: usize, v: Value) {
        if self.args.len() <= i {
            self.args.resize(i + 1, Value::Null);
        }
        self.args[i] = v;
    }
}

/// Description of an in-flight call, handed to every invoker in the chain.
#[derive(Clone, Copy)]
pub struct CallInfo<'a> {
    /// Static metadata of the interface being called.
    pub desc: &'a InterfaceDesc,
    /// Instance that owns the interface.
    pub owner: InstanceId,
    /// Class of the owning instance.
    pub owner_clsid: Clsid,
    /// Method index within the interface.
    pub method: u32,
}

/// Dispatch target of an interface pointer.
///
/// Terminal invokers dispatch into the component object; wrapper invokers
/// (instrumentation, remote proxies) do their work and forward to an inner
/// pointer.
pub trait Invoker: Send + Sync {
    /// Carries the call toward the component implementation.
    fn invoke(&self, rt: &ComRuntime, call: CallInfo<'_>, msg: &mut Message) -> ComResult<()>;
}

struct IfaceNode {
    desc: Arc<InterfaceDesc>,
    owner: InstanceId,
    owner_clsid: Clsid,
    invoker: Arc<dyn Invoker>,
}

/// A COM-style interface pointer: the unit of inter-component communication.
///
/// Cloning an `InterfacePtr` is reference-count duplication (`AddRef`).
#[derive(Clone)]
pub struct InterfacePtr {
    node: Arc<IfaceNode>,
}

impl InterfacePtr {
    /// Builds an interface pointer from parts (runtime/hook use).
    pub fn from_parts(
        desc: Arc<InterfaceDesc>,
        owner: InstanceId,
        owner_clsid: Clsid,
        invoker: Arc<dyn Invoker>,
    ) -> Self {
        InterfacePtr {
            node: Arc::new(IfaceNode {
                desc,
                owner,
                owner_clsid,
                invoker,
            }),
        }
    }

    /// Wraps this pointer with an interposed invoker, preserving identity
    /// metadata. The returned pointer is indistinguishable to callers.
    pub fn wrap(&self, invoker: Arc<dyn Invoker>) -> InterfacePtr {
        InterfacePtr::from_parts(
            self.node.desc.clone(),
            self.node.owner,
            self.node.owner_clsid,
            invoker,
        )
    }

    /// Static metadata of the interface.
    pub fn desc(&self) -> &Arc<InterfaceDesc> {
        &self.node.desc
    }

    /// Interface identifier.
    pub fn iid(&self) -> Iid {
        self.node.desc.iid
    }

    /// Identity of the owning component instance.
    pub fn owner(&self) -> InstanceId {
        self.node.owner
    }

    /// Class of the owning component instance.
    pub fn owner_clsid(&self) -> Clsid {
        self.node.owner_clsid
    }

    /// Returns true if two pointers reference the same underlying node.
    pub fn ptr_eq(&self, other: &InterfacePtr) -> bool {
        Arc::ptr_eq(&self.node, &other.node)
    }

    /// Calls a method by index.
    ///
    /// Validates the argument list against the IDL signature, then routes the
    /// call through the invoker chain (instrumentation wrappers, remote
    /// proxies, and finally the component object).
    pub fn call(&self, rt: &ComRuntime, method: u32, msg: &mut Message) -> ComResult<()> {
        let desc = &self.node.desc;
        let mdesc = desc.method(method).ok_or(ComError::BadMethod {
            iid: desc.iid,
            method,
        })?;
        mdesc
            .check_args(&msg.args)
            .map_err(|detail| ComError::BadParam { detail })?;
        let call = CallInfo {
            desc,
            owner: self.node.owner,
            owner_clsid: self.node.owner_clsid,
            method,
        };
        self.node.invoker.invoke(rt, call, msg)
    }

    /// Calls a method by name (convenience for tests and scenario drivers).
    pub fn call_named(&self, rt: &ComRuntime, name: &str, msg: &mut Message) -> ComResult<()> {
        let id = self.node.desc.method_id(name).ok_or(ComError::BadParam {
            detail: format!("interface {} has no method `{name}`", self.node.desc.name),
        })?;
        self.call(rt, id, msg)
    }
}

impl fmt::Debug for InterfacePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InterfacePtr({} of {})",
            self.node.desc.name, self.node.owner
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idl::InterfaceBuilder;
    use crate::value::PType;

    #[test]
    fn message_outputs_start_null() {
        let m = Message::outputs(3);
        assert_eq!(m.args.len(), 3);
        assert!(matches!(m.arg(0), Some(Value::Null)));
    }

    #[test]
    fn message_set_grows() {
        let mut m = Message::empty();
        m.set(2, Value::I4(9));
        assert_eq!(m.args.len(), 3);
        assert_eq!(m.arg(2).unwrap().as_i4(), Some(9));
    }

    struct FailInvoker;
    impl Invoker for FailInvoker {
        fn invoke(
            &self,
            _rt: &ComRuntime,
            _call: CallInfo<'_>,
            _msg: &mut Message,
        ) -> ComResult<()> {
            Err(ComError::App("should not be reached".into()))
        }
    }

    fn test_ptr() -> InterfacePtr {
        let desc = InterfaceBuilder::new("IThing")
            .method("Do", |m| m.input("x", PType::I4))
            .build();
        InterfacePtr::from_parts(
            desc,
            InstanceId(1),
            Clsid::from_name("Thing"),
            Arc::new(FailInvoker),
        )
    }

    #[test]
    fn bad_method_index_is_rejected_before_dispatch() {
        let rt = ComRuntime::single_machine();
        let ptr = test_ptr();
        let err = ptr.call(&rt, 5, &mut Message::empty()).unwrap_err();
        assert!(matches!(err, ComError::BadMethod { method: 5, .. }));
    }

    #[test]
    fn bad_args_are_rejected_before_dispatch() {
        let rt = ComRuntime::single_machine();
        let ptr = test_ptr();
        let err = ptr
            .call(&rt, 0, &mut Message::new(vec![Value::Bool(true)]))
            .unwrap_err();
        assert!(matches!(err, ComError::BadParam { .. }));
    }

    #[test]
    fn call_named_resolves_method() {
        let rt = ComRuntime::single_machine();
        let ptr = test_ptr();
        // Resolves "Do" and reaches the invoker (which fails intentionally).
        let err = ptr
            .call_named(&rt, "Do", &mut Message::new(vec![Value::I4(1)]))
            .unwrap_err();
        assert!(matches!(err, ComError::App(_)));
        // Unknown name fails without reaching the invoker.
        let err = ptr
            .call_named(&rt, "Nope", &mut Message::empty())
            .unwrap_err();
        assert!(matches!(err, ComError::BadParam { .. }));
    }

    #[test]
    fn wrap_preserves_identity() {
        let ptr = test_ptr();
        let wrapped = ptr.wrap(Arc::new(FailInvoker));
        assert_eq!(wrapped.owner(), ptr.owner());
        assert_eq!(wrapped.iid(), ptr.iid());
        assert!(!wrapped.ptr_eq(&ptr));
    }
}
