//! Interposition semantics under composition: multiple hooks, stacked
//! wrappers, and QueryInterface through instrumented pointers — the
//! properties Coign's runtime layering depends on.

use coign_com::idl::InterfaceBuilder;
use coign_com::interface::CallInfo;
use coign_com::registry::ApiImports;
use coign_com::{
    CallCtx, Clsid, ComObject, ComResult, ComRuntime, CreateRequest, Iid, InterfacePtr, Invoker,
    MachineId, Message, PType, RuntimeHook, Value,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Echo;
impl ComObject for Echo {
    fn invoke(
        &self,
        _ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        msg.set(1, msg.arg(0).cloned().unwrap_or(Value::Null));
        Ok(())
    }
}

fn setup() -> (ComRuntime, Clsid, Iid) {
    let rt = ComRuntime::client_server();
    let iface = InterfaceBuilder::new("IEchoT")
        .method("Echo", |m| m.input("x", PType::I4).output("y", PType::I4))
        .build();
    let iid = iface.iid;
    let clsid = rt
        .registry()
        .register("EchoT", vec![iface], ApiImports::NONE, |_, _| {
            Arc::new(Echo)
        });
    (rt, clsid, iid)
}

/// A wrapper invoker that tags calls by bumping a counter.
struct Tag {
    inner: InterfacePtr,
    count: Arc<AtomicU64>,
}

impl Invoker for Tag {
    fn invoke(&self, rt: &ComRuntime, call: CallInfo<'_>, msg: &mut Message) -> ComResult<()> {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.call(rt, call.method, msg)
    }
}

/// A hook that wraps every pointer with a tagging invoker.
struct TagHook {
    count: Arc<AtomicU64>,
}

impl RuntimeHook for TagHook {
    fn wrap_interface(&self, _rt: &ComRuntime, ptr: InterfacePtr) -> InterfacePtr {
        let inner = ptr.clone();
        ptr.wrap(Arc::new(Tag {
            inner,
            count: self.count.clone(),
        }))
    }
}

/// Wrappers stack: two hooks each wrap once; both see every call, and the
/// call still reaches the object with intact semantics.
#[test]
fn wrap_hooks_compose() {
    let (rt, clsid, iid) = setup();
    let first = Arc::new(AtomicU64::new(0));
    let second = Arc::new(AtomicU64::new(0));
    rt.add_hook(Arc::new(TagHook {
        count: first.clone(),
    }));
    rt.add_hook(Arc::new(TagHook {
        count: second.clone(),
    }));

    let ptr = rt.create_instance(clsid, iid).unwrap();
    let mut msg = Message::new(vec![Value::I4(7), Value::Null]);
    ptr.call(&rt, 0, &mut msg).unwrap();

    assert_eq!(msg.arg(1).unwrap().as_i4(), Some(7));
    assert_eq!(first.load(Ordering::Relaxed), 1);
    assert_eq!(second.load(Ordering::Relaxed), 1);
}

/// QueryInterface mints a fresh pointer that passes through the wrap hooks
/// again — instrumentation cannot be bypassed by re-querying.
#[test]
fn query_interface_is_rewrapped() {
    let (rt, clsid, iid) = setup();
    let count = Arc::new(AtomicU64::new(0));
    rt.add_hook(Arc::new(TagHook {
        count: count.clone(),
    }));

    let ptr = rt.create_instance(clsid, iid).unwrap();
    let again = rt.query_interface(&ptr, iid).unwrap();
    let mut msg = Message::new(vec![Value::I4(1), Value::Null]);
    again.call(&rt, 0, &mut msg).unwrap();
    assert_eq!(
        count.load(Ordering::Relaxed),
        1,
        "the re-queried pointer is instrumented"
    );
    assert_eq!(again.owner(), ptr.owner(), "same underlying instance");
}

/// The first hook that fulfills a creation wins; later hooks are not asked.
#[test]
fn first_fulfilling_hook_wins() {
    struct PlaceAt {
        machine: MachineId,
        asked: Arc<AtomicU64>,
    }
    impl RuntimeHook for PlaceAt {
        fn fulfill_create(
            &self,
            rt: &ComRuntime,
            req: &CreateRequest,
        ) -> Option<ComResult<InterfacePtr>> {
            self.asked.fetch_add(1, Ordering::Relaxed);
            Some(rt.create_direct(req.clsid, req.iid, Some(self.machine)))
        }
    }

    let (rt, clsid, iid) = setup();
    let first_asked = Arc::new(AtomicU64::new(0));
    let second_asked = Arc::new(AtomicU64::new(0));
    rt.add_hook(Arc::new(PlaceAt {
        machine: MachineId::SERVER,
        asked: first_asked.clone(),
    }));
    rt.add_hook(Arc::new(PlaceAt {
        machine: MachineId::CLIENT,
        asked: second_asked.clone(),
    }));

    let ptr = rt.create_instance(clsid, iid).unwrap();
    assert_eq!(
        rt.instance(ptr.owner()).unwrap().machine(),
        MachineId::SERVER
    );
    assert_eq!(first_asked.load(Ordering::Relaxed), 1);
    assert_eq!(second_asked.load(Ordering::Relaxed), 0);
}

/// A hook that declines (returns None) falls through to the next, and
/// finally to default local creation.
#[test]
fn declining_hooks_fall_through() {
    struct Decline {
        asked: Arc<AtomicU64>,
    }
    impl RuntimeHook for Decline {
        fn fulfill_create(
            &self,
            _rt: &ComRuntime,
            _req: &CreateRequest,
        ) -> Option<ComResult<InterfacePtr>> {
            self.asked.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
    let (rt, clsid, iid) = setup();
    let asked = Arc::new(AtomicU64::new(0));
    rt.add_hook(Arc::new(Decline {
        asked: asked.clone(),
    }));
    let ptr = rt.create_instance(clsid, iid).unwrap();
    assert_eq!(asked.load(Ordering::Relaxed), 1);
    // Default creation placed it with the creator (the root → client).
    assert_eq!(
        rt.instance(ptr.owner()).unwrap().machine(),
        MachineId::CLIENT
    );
}

/// clear_hooks removes instrumentation for *new* pointers; existing wrapped
/// pointers keep their invoker chains (they own them).
#[test]
fn clear_hooks_affects_only_new_pointers() {
    let (rt, clsid, iid) = setup();
    let count = Arc::new(AtomicU64::new(0));
    rt.add_hook(Arc::new(TagHook {
        count: count.clone(),
    }));
    let wrapped = rt.create_instance(clsid, iid).unwrap();
    rt.clear_hooks();
    let bare = rt.create_instance(clsid, iid).unwrap();

    let mut msg = Message::new(vec![Value::I4(1), Value::Null]);
    wrapped.call(&rt, 0, &mut msg).unwrap();
    let mut msg = Message::new(vec![Value::I4(1), Value::Null]);
    bare.call(&rt, 0, &mut msg).unwrap();
    assert_eq!(
        count.load(Ordering::Relaxed),
        1,
        "only the old pointer is tagged"
    );
}

/// Interface pointers passed through messages retain their wrappers: a
/// component that hands out a pointer hands out the *instrumented* pointer.
#[test]
fn pointers_in_messages_stay_wrapped() {
    struct Holder {
        inner: parking_lot::Mutex<Option<InterfacePtr>>,
    }
    impl ComObject for Holder {
        fn invoke(
            &self,
            _ctx: &CallCtx<'_>,
            _iid: Iid,
            method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            match method {
                0 => {
                    *self.inner.lock() = msg.args[0].as_interface().cloned();
                    Ok(())
                }
                _ => {
                    msg.set(0, Value::Interface(self.inner.lock().clone()));
                    Ok(())
                }
            }
        }
    }

    let rt = ComRuntime::client_server();
    let iecho = InterfaceBuilder::new("IEchoT")
        .method("Echo", |m| m.input("x", PType::I4).output("y", PType::I4))
        .build();
    let echo_iid = iecho.iid;
    let echo_clsid = rt
        .registry()
        .register("EchoT", vec![iecho], ApiImports::NONE, |_, _| {
            Arc::new(Echo)
        });
    let iholder = InterfaceBuilder::new("IHolder")
        .method("Put", |m| {
            m.input("p", PType::Interface(Iid::from_name("IEchoT")))
        })
        .method("Get", |m| {
            m.output("p", PType::Interface(Iid::from_name("IEchoT")))
        })
        .build();
    let holder_iid = iholder.iid;
    let holder_clsid = rt
        .registry()
        .register("Holder", vec![iholder], ApiImports::NONE, |_, _| {
            Arc::new(Holder {
                inner: parking_lot::Mutex::new(None),
            })
        });

    let count = Arc::new(AtomicU64::new(0));
    rt.add_hook(Arc::new(TagHook {
        count: count.clone(),
    }));

    let echo = rt.create_instance(echo_clsid, echo_iid).unwrap();
    let holder = rt.create_instance(holder_clsid, holder_iid).unwrap();
    let mut put = Message::new(vec![Value::Interface(Some(echo))]);
    holder.call(&rt, 0, &mut put).unwrap();
    let mut get = Message::outputs(1);
    holder.call(&rt, 1, &mut get).unwrap();
    let retrieved = get.arg(0).unwrap().as_interface().cloned().unwrap();

    let before = count.load(Ordering::Relaxed);
    let mut call = Message::new(vec![Value::I4(5), Value::Null]);
    retrieved.call(&rt, 0, &mut call).unwrap();
    assert_eq!(
        count.load(Ordering::Relaxed),
        before + 1,
        "the pointer that round-tripped through the holder is still wrapped"
    );
}
