//! Per-link ICC message batching.
//!
//! A distributed Coign application at serving scale sends many small
//! cut-crossing messages to the same destination machine within a few
//! microseconds of each other — thousands of concurrent sessions all talk
//! to the same server replica. Charging every message the full per-message
//! network latency models each call as a lonely datagram; real RPC stacks
//! coalesce. This module implements the batching discipline the serving
//! harness uses:
//!
//! * **Window semantics** — the first message enqueued on an idle link
//!   opens a batch that *flushes* `window_us` later; messages arriving
//!   before the flush join the open batch. A closed (flushed) link is idle
//!   again, so the next message opens a fresh window. Latency cost: a
//!   message waits at most `window_us` for the flush, then the whole batch
//!   pays **one** per-message latency instead of one per member.
//! * **Pipelining** — batch members serialize back-to-back at link
//!   bandwidth, so member *i* arrives at
//!   `flush + latency + Σ_{j≤i} ser(bytes_j)`: the wire is kept busy and
//!   later members queue behind earlier ones, exactly like a pipelined RPC
//!   channel.
//!
//! The batcher is deliberately passive: it never owns a clock or an event
//! queue. The caller (the discrete-event shard loop in `coign::serve`)
//! schedules the flush event at the time [`LinkBatcher::enqueue`] returns
//! and calls [`LinkBatcher::drain`] when that event fires. This keeps the
//! module synchronous, single-threaded, and trivially deterministic.

use crate::network::NetworkModel;
use coign_com::{ComError, MachineId};
use std::collections::HashMap;

/// A directed machine-to-machine link.
pub type LinkKey = (MachineId, MachineId);

/// One message waiting in an open batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingMessage<T> {
    /// Marshaled size of the message in bytes.
    pub bytes: u64,
    /// Caller-defined routing payload (e.g. a session id).
    pub payload: T,
}

/// Why a batch flushed: the two bounds of the Nagle-style discipline.
///
/// The batcher itself only knows the window; the caller schedules the
/// actual flush at `max(window_close, link_free)` and therefore knows
/// which bound won. It reports the reason back via
/// [`LinkBatcher::note_flush`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The coalescing window expired on an idle link.
    WindowExpired,
    /// The link was still transmitting when the window closed; the batch
    /// kept coalescing until the link freed up.
    LinkFreed,
}

/// Running totals over a batcher's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches opened (= flush events the caller scheduled).
    pub batches: u64,
    /// Messages enqueued across all batches.
    pub messages: u64,
    /// Total marshaled bytes enqueued.
    pub bytes: u64,
    /// Flushes fired because the window expired ([`FlushReason::WindowExpired`]).
    pub window_flushes: u64,
    /// Flushes held open until the link freed ([`FlushReason::LinkFreed`]).
    pub link_free_flushes: u64,
    /// Open batches failed as units because their link died
    /// ([`LinkBatcher::fail_open`]).
    pub failed_batches: u64,
    /// Messages drained with a typed error from failed batches.
    pub failed_messages: u64,
}

impl BatchStats {
    /// Mean messages per batch (0 when no batch was ever opened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.messages as f64 / self.batches as f64
        }
    }
}

/// Per-link batch accumulator with a fixed coalescing window.
///
/// # Examples
///
/// ```
/// use coign_com::MachineId;
/// use coign_dcom::batch::LinkBatcher;
///
/// let link = (MachineId::CLIENT, MachineId(1));
/// let mut batcher: LinkBatcher<u32> = LinkBatcher::new(100);
/// // First message opens the window: flush due at now + 100.
/// assert_eq!(batcher.enqueue(link, 256, 7, 1_000), Some(1_100));
/// // A second message within the window joins silently.
/// assert_eq!(batcher.enqueue(link, 64, 8, 1_050), None);
/// let batch = batcher.drain(link);
/// assert_eq!(batch.len(), 2);
/// // The link is idle again: the next message opens a new window.
/// assert_eq!(batcher.enqueue(link, 32, 9, 1_200), Some(1_300));
/// ```
#[derive(Debug)]
pub struct LinkBatcher<T> {
    window_us: u64,
    open: HashMap<LinkKey, Vec<PendingMessage<T>>>,
    stats: BatchStats,
}

impl<T> LinkBatcher<T> {
    /// Creates a batcher with the given coalescing window.
    pub fn new(window_us: u64) -> Self {
        LinkBatcher {
            window_us,
            open: HashMap::new(),
            stats: BatchStats::default(),
        }
    }

    /// The coalescing window in simulated microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Adds a message to the link's open batch, opening one if the link is
    /// idle. Returns `Some(flush_at_us)` when this call opened the batch —
    /// the caller must schedule a flush event at that time and eventually
    /// [`drain`](LinkBatcher::drain) the link. Returns `None` when the
    /// message joined an already-open batch whose flush is already
    /// scheduled.
    pub fn enqueue(&mut self, link: LinkKey, bytes: u64, payload: T, now_us: u64) -> Option<u64> {
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        let queue = self.open.entry(link).or_default();
        queue.push(PendingMessage { bytes, payload });
        if queue.len() == 1 {
            self.stats.batches += 1;
            Some(now_us.saturating_add(self.window_us))
        } else {
            None
        }
    }

    /// Closes the link's open batch and returns its messages in enqueue
    /// order. Called when the flush event fires; the link becomes idle.
    pub fn drain(&mut self, link: LinkKey) -> Vec<PendingMessage<T>> {
        self.open.remove(&link).unwrap_or_default()
    }

    /// Fails the link's open batch because the link died (machine down or
    /// partition) with the batch still coalescing. Every member is drained
    /// in enqueue order, paired with a clone of the typed `error`, so the
    /// caller can re-resolve each call (retry, failover) instead of
    /// silently charging transit on a dead link. The link becomes idle; a
    /// still-scheduled flush event will find nothing to drain. Failing an
    /// idle link is a no-op.
    pub fn fail_open(
        &mut self,
        link: LinkKey,
        error: &ComError,
    ) -> Vec<(PendingMessage<T>, ComError)> {
        let members = self.open.remove(&link).unwrap_or_default();
        if !members.is_empty() {
            self.stats.failed_batches += 1;
            self.stats.failed_messages += members.len() as u64;
        }
        members
            .into_iter()
            .map(|message| (message, error.clone()))
            .collect()
    }

    /// Messages currently waiting in the link's open batch.
    pub fn pending(&self, link: LinkKey) -> usize {
        self.open.get(&link).map_or(0, Vec::len)
    }

    /// Records why a flush fired. The caller — who scheduled the flush at
    /// `max(window_close, link_free)` and so knows which bound won —
    /// reports the reason when it drains the link.
    pub fn note_flush(&mut self, reason: FlushReason) {
        match reason {
            FlushReason::WindowExpired => self.stats.window_flushes += 1,
            FlushReason::LinkFreed => self.stats.link_free_flushes += 1,
        }
    }

    /// Lifetime totals.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }
}

/// Arrival offsets (µs after the flush instant) for a pipelined batch.
///
/// The batch pays `latency_us` once — the caller supplies it, jittered or
/// not — and then members serialize back-to-back at link bandwidth:
/// member *i* arrives at `latency_us + Σ_{j≤i} ser(bytes_j)`, where
/// `ser(b)` is the model's serialization time (its mean one-way time minus
/// the fixed latency, so MTU fragmentation overhead is preserved).
///
/// A singleton batch therefore costs exactly one unbatched send; a batch
/// of *k* saves `(k−1)·latency_us` over *k* individual sends.
pub fn pipelined_arrivals(net: &NetworkModel, latency_us: f64, sizes: &[u64]) -> Vec<f64> {
    let mut arrivals = Vec::with_capacity(sizes.len());
    let mut cursor = latency_us;
    for &bytes in sizes {
        cursor += (net.mean_time_us(bytes) - net.latency_us).max(0.0);
        arrivals.push(cursor);
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkKey {
        (MachineId::CLIENT, MachineId(1))
    }

    #[test]
    fn first_message_opens_window_followers_join() {
        let mut b: LinkBatcher<&str> = LinkBatcher::new(50);
        assert_eq!(b.enqueue(link(), 100, "a", 200), Some(250));
        assert_eq!(b.enqueue(link(), 200, "b", 210), None);
        assert_eq!(b.enqueue(link(), 300, "c", 249), None);
        assert_eq!(b.pending(link()), 3);
        let batch = b.drain(link());
        assert_eq!(
            batch.iter().map(|m| m.payload).collect::<Vec<_>>(),
            ["a", "b", "c"],
            "drain preserves enqueue order"
        );
        assert_eq!(b.pending(link()), 0);
        // Idle again: a new window opens.
        assert_eq!(b.enqueue(link(), 10, "d", 400), Some(450));
    }

    #[test]
    fn links_batch_independently() {
        let forward = (MachineId::CLIENT, MachineId(1));
        let reverse = (MachineId(1), MachineId::CLIENT);
        let mut b: LinkBatcher<u8> = LinkBatcher::new(10);
        assert!(b.enqueue(forward, 1, 0, 0).is_some());
        assert!(
            b.enqueue(reverse, 1, 1, 0).is_some(),
            "each direction of a link is its own batch"
        );
        assert_eq!(b.drain(forward).len(), 1);
        assert_eq!(b.drain(reverse).len(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut b: LinkBatcher<()> = LinkBatcher::new(10);
        b.enqueue(link(), 100, (), 0);
        b.enqueue(link(), 50, (), 5);
        b.drain(link());
        b.enqueue(link(), 25, (), 100);
        b.drain(link());
        let stats = b.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.bytes, 175);
        assert!((stats.mean_batch_size() - 1.5).abs() < 1e-12);
        assert_eq!(BatchStats::default().mean_batch_size(), 0.0);
    }

    #[test]
    fn flush_reasons_accumulate_separately() {
        let mut b: LinkBatcher<()> = LinkBatcher::new(10);
        b.enqueue(link(), 1, (), 0);
        b.drain(link());
        b.note_flush(FlushReason::WindowExpired);
        b.enqueue(link(), 1, (), 50);
        b.drain(link());
        b.note_flush(FlushReason::LinkFreed);
        b.enqueue(link(), 1, (), 90);
        b.drain(link());
        b.note_flush(FlushReason::LinkFreed);
        let stats = b.stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.window_flushes, 1);
        assert_eq!(stats.link_free_flushes, 2);
        assert_eq!(
            stats.window_flushes + stats.link_free_flushes,
            stats.batches,
            "every flush has exactly one reason"
        );
    }

    #[test]
    fn untouched_batcher_reports_no_flushes() {
        // The `--no-batch` invariant: a batcher the caller never feeds
        // opens no batch and records no flush of either kind.
        let b: LinkBatcher<u32> = LinkBatcher::new(150);
        let stats = b.stats();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.window_flushes + stats.link_free_flushes, 0);
    }

    #[test]
    fn fail_open_drains_members_with_the_typed_error() {
        let mut b: LinkBatcher<u32> = LinkBatcher::new(50);
        assert!(b.enqueue(link(), 100, 7, 0).is_some());
        assert!(b.enqueue(link(), 200, 8, 10).is_none());
        let dead = ComError::MachineDown(MachineId(1));
        let failed = b.fail_open(link(), &dead);
        assert_eq!(
            failed
                .iter()
                .map(|(m, _)| (m.bytes, m.payload))
                .collect::<Vec<_>>(),
            [(100, 7), (200, 8)],
            "members drain in enqueue order"
        );
        assert!(
            failed.iter().all(|(_, e)| *e == dead),
            "every member carries the typed link-death error"
        );
        assert_eq!(b.pending(link()), 0);
        let stats = b.stats();
        assert_eq!(stats.failed_batches, 1);
        assert_eq!(stats.failed_messages, 2);
        // Failing an idle link is a no-op and counts nothing.
        assert!(b.fail_open(link(), &dead).is_empty());
        assert_eq!(b.stats().failed_batches, 1);
        // The link is idle again: the next message opens a fresh window,
        // and the still-scheduled flush of the failed batch finds nothing.
        assert!(b.enqueue(link(), 10, 9, 100).is_some());
        assert_eq!(b.drain(link()).len(), 1);
    }

    #[test]
    fn zero_window_flushes_at_now() {
        let mut b: LinkBatcher<()> = LinkBatcher::new(0);
        assert_eq!(b.enqueue(link(), 1, (), 777), Some(777));
    }

    #[test]
    fn pipelined_arrivals_are_monotone_and_singleton_matches_unbatched() {
        let net = NetworkModel::ethernet_10baset();
        let lat = net.latency_us;
        let single = pipelined_arrivals(&net, lat, &[4096]);
        assert_eq!(single.len(), 1);
        assert!(
            (single[0] - net.mean_time_us(4096)).abs() < 1e-9,
            "a singleton batch costs exactly one unbatched send"
        );
        let sizes = [100, 5000, 64, 20_000];
        let arrivals = pipelined_arrivals(&net, lat, &sizes);
        for pair in arrivals.windows(2) {
            assert!(pair[0] < pair[1], "pipelined arrivals are monotone");
        }
    }

    #[test]
    fn batching_saves_latency_over_individual_sends() {
        let net = NetworkModel::ethernet_10baset();
        let sizes = [256u64; 8];
        let batched_last = *pipelined_arrivals(&net, net.latency_us, &sizes)
            .last()
            .unwrap();
        let individual_sum: f64 = sizes.iter().map(|&b| net.mean_time_us(b)).sum();
        let saving = individual_sum - batched_last;
        let expected = (sizes.len() - 1) as f64 * net.latency_us;
        assert!(
            (saving - expected).abs() < 1e-6,
            "a batch of k saves (k-1) latencies: saving={saving} expected={expected}"
        );
    }

    #[test]
    fn pipelining_preserves_mtu_fragmentation_cost() {
        let net = NetworkModel::ethernet_10baset().with_mtu(1_500);
        let arrivals = pipelined_arrivals(&net, net.latency_us, &[1_000_000]);
        assert!(
            (arrivals[0] - net.mean_time_us(1_000_000)).abs() < 1e-9,
            "serialization component must include per-packet overhead"
        );
    }
}
