//! The simulated remote-call transport.
//!
//! When a distributed execution routes an interface call across machines,
//! the [`Transport`] charges the cost of the request and reply messages to
//! the runtime's clock and statistics. Message times are drawn from the
//! network model with seeded jitter, so "measured" distributed executions
//! are reproducible yet not exactly equal to the analytic prediction.
//!
//! The transport optionally carries a [`FaultPlan`] and [`CallPolicy`]
//! (see [`crate::faults`]): message loss, latency spikes, partitions, and
//! machine death are then injected deterministically against the simulated
//! clock, and the proxy boundary retries with timeout and exponential
//! backoff before surfacing a typed failure. Fault decisions draw from a
//! *separate* seeded RNG, so a zero-fault plan leaves the jitter stream —
//! and therefore every charged microsecond — identical to a transport
//! without the fault layer.

use crate::faults::{CallPolicy, FaultPlan, FaultStats};
use crate::health::{BreakerDecision, HealthMonitor};
use crate::marshal::{message_reply_size, message_request_size};
use crate::network::NetworkModel;
use coign_com::idl::MethodDesc;
use coign_com::{ComError, ComResult, ComRuntime, MachineId, Message};
use coign_obs::{FlightRecorder, TraceArg, Tracer};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Simulated DCOM wire transport between the machines of a topology.
///
/// By default every machine pair shares one network model (the paper's
/// two-machine isolated Ethernet). Multi-tier topologies can override
/// individual links — e.g. an ISDN line between client and middle tier but
/// a system-area network between the middle tier and the database.
pub struct Transport {
    network: NetworkModel,
    links: HashMap<(u16, u16), NetworkModel>,
    rng: Mutex<StdRng>,
    faults: FaultPlan,
    policy: CallPolicy,
    /// Fault decisions draw here, never from `rng`, so the jitter stream
    /// is independent of the fault schedule.
    fault_rng: Mutex<StdRng>,
    fault_stats: Mutex<FaultStats>,
    /// Observability hook: fault events become tracer instants and flight
    /// recorder entries. Interior-mutable because the transport is shared
    /// behind an `Arc` before the RTE that owns the hook exists. Only
    /// fault paths consult it, so a clean run never touches the lock.
    obs: Mutex<Option<(Arc<Tracer>, Arc<FlightRecorder>)>>,
    /// Optional circuit-breaker layer (see [`crate::health`]). Fed and
    /// consulted only on fault paths — with an empty fault plan the
    /// monitor is never touched, keeping clean runs bit-identical.
    health: Mutex<Option<Arc<HealthMonitor>>>,
}

fn link_key(a: MachineId, b: MachineId) -> (u16, u16) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl Transport {
    /// Creates a transport over the given network with a deterministic seed.
    pub fn new(network: NetworkModel, seed: u64) -> Self {
        Self::with_faults(network, seed, FaultPlan::none(), CallPolicy::default(), 0)
    }

    /// Creates a transport whose wire misbehaves according to `faults`,
    /// with the proxy boundary retrying per `policy`. Fault decisions are
    /// seeded by `fault_seed`, independently of the jitter seed.
    pub fn with_faults(
        network: NetworkModel,
        seed: u64,
        faults: FaultPlan,
        policy: CallPolicy,
        fault_seed: u64,
    ) -> Self {
        Transport {
            network,
            links: HashMap::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            faults,
            policy,
            fault_rng: Mutex::new(StdRng::seed_from_u64(fault_seed)),
            fault_stats: Mutex::new(FaultStats::default()),
            obs: Mutex::new(None),
            health: Mutex::new(None),
        }
    }

    /// Creates a transport with per-link overrides (order-insensitive
    /// machine pairs); unlisted pairs use `default`.
    pub fn with_links(
        default: NetworkModel,
        links: Vec<((MachineId, MachineId), NetworkModel)>,
        seed: u64,
    ) -> Self {
        Transport {
            links: links
                .into_iter()
                .map(|((a, b), model)| (link_key(a, b), model))
                .collect(),
            ..Self::new(default, seed)
        }
    }

    /// The default network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The fault schedule this transport injects.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The retry/timeout/backoff policy at the proxy boundary.
    pub fn policy(&self) -> &CallPolicy {
        &self.policy
    }

    /// Snapshot of the fault counters accumulated so far.
    pub fn fault_stats(&self) -> FaultStats {
        *self.fault_stats.lock()
    }

    /// Attaches an observability hook: fault injections, timeouts, and
    /// retries are reported as tracer instant events (runtime track,
    /// simulated-clock timestamps) and flight-recorder entries.
    pub fn set_obs(&self, tracer: Arc<Tracer>, recorder: Arc<FlightRecorder>) {
        *self.obs.lock() = Some((tracer, recorder));
    }

    /// Attaches a circuit-breaker health monitor. Outcomes of fault-path
    /// calls feed it, and an open breaker fails calls fast; with an empty
    /// fault plan the monitor is never consulted.
    pub fn set_health(&self, monitor: Arc<HealthMonitor>) {
        *self.health.lock() = Some(monitor);
    }

    /// The attached health monitor, if any.
    pub fn health(&self) -> Option<Arc<HealthMonitor>> {
        self.health.lock().clone()
    }

    /// Absorbs the accumulated fault counters into a metrics registry.
    pub fn record_metrics(&self, registry: &coign_obs::Registry) {
        self.fault_stats().record_metrics(registry);
        if let Some(monitor) = self.health() {
            monitor.record_metrics(registry);
        }
    }

    /// Runs `f` against the observability hook, if one is attached.
    fn with_obs(&self, f: impl FnOnce(&Tracer, &FlightRecorder)) {
        if let Some((tracer, recorder)) = &*self.obs.lock() {
            f(tracer, recorder);
        }
    }

    /// Reports one fault event between `from` and `to` to the hook.
    fn fault_event(
        &self,
        rt: &ComRuntime,
        name: &'static str,
        from: MachineId,
        to: MachineId,
        attempt: u32,
    ) {
        self.with_obs(|tracer, recorder| {
            let at = rt.clock().now_us();
            tracer.instant_at(
                name,
                at,
                vec![
                    ("from", TraceArg::U64(u64::from(from.0))),
                    ("to", TraceArg::U64(u64::from(to.0))),
                    ("attempt", TraceArg::U64(u64::from(attempt))),
                ],
            );
            recorder.record(
                at,
                name,
                format!("m{}->m{} attempt {attempt}", from.0, to.0),
            );
        });
    }

    /// Consults the breaker gate for a call about to cross `from`↔`to`.
    /// Fast-fails with the tripping error when the breaker is open and no
    /// probe is due; lets probes through with an instant event.
    fn health_gate(&self, rt: &ComRuntime, from: MachineId, to: MachineId) -> ComResult<()> {
        let Some(monitor) = self.health() else {
            return Ok(());
        };
        match monitor.check(from, to, rt.clock().now_us()) {
            BreakerDecision::Allow => Ok(()),
            BreakerDecision::Probe => {
                self.fault_event(rt, "breaker_half_open", from, to, 0);
                Ok(())
            }
            BreakerDecision::FastFail(error) => {
                self.fault_event(rt, "breaker_fast_fail", from, to, 0);
                Err(error)
            }
        }
    }

    /// Feeds a successful call outcome to the breaker layer.
    fn health_success(&self, rt: &ComRuntime, from: MachineId, to: MachineId) {
        if let Some(monitor) = self.health() {
            if let Some(transition) = monitor.on_success(from, to) {
                self.fault_event(rt, transition.event_name(), from, to, 0);
            }
        }
    }

    /// Feeds a failed call outcome to the breaker layer, reporting any
    /// breaker transition and newly dead machine to the obs hook.
    fn health_failure(&self, rt: &ComRuntime, from: MachineId, to: MachineId, error: &ComError) {
        if let Some(monitor) = self.health() {
            let now = rt.clock().now_us();
            let (transition, machine) = monitor.on_failure(from, to, error, now);
            if let Some(t) = transition {
                self.fault_event(rt, t.event_name(), from, to, 0);
            }
            if let Some(m) = machine {
                self.with_obs(|tracer, recorder| {
                    tracer.instant_at(
                        "machine_declared_dead",
                        now,
                        vec![("machine", TraceArg::U64(u64::from(m.0)))],
                    );
                    recorder.record(
                        now,
                        "machine_declared_dead",
                        format!("m{} breaker opened", m.0),
                    );
                });
            }
        }
    }

    /// The model governing one machine pair.
    pub fn link(&self, a: MachineId, b: MachineId) -> &NetworkModel {
        self.links.get(&link_key(a, b)).unwrap_or(&self.network)
    }

    /// Charges a full remote call (request + reply) for the given method
    /// invocation to the runtime. Returns the `(request, reply)` sizes.
    ///
    /// Fails with `NotRemotable` if the message cannot be marshaled — the
    /// simulation equivalent of DCOM refusing to remote an interface whose
    /// parameters have no marshaler.
    pub fn charge_remote_call(
        &self,
        rt: &ComRuntime,
        method: &MethodDesc,
        request: &Message,
        reply: &Message,
    ) -> ComResult<(u64, u64)> {
        let req_bytes = message_request_size(method, request)?;
        let reply_bytes = message_reply_size(method, reply)?;
        self.charge_sized_call_on(
            rt,
            MachineId::CLIENT,
            MachineId::SERVER,
            req_bytes,
            reply_bytes,
        );
        Ok((req_bytes, reply_bytes))
    }

    /// Charges raw request/reply sizes on the default link.
    pub fn charge_sized_call(&self, rt: &ComRuntime, req_bytes: u64, reply_bytes: u64) {
        self.charge_sized_call_on(
            rt,
            MachineId::CLIENT,
            MachineId::SERVER,
            req_bytes,
            reply_bytes,
        );
    }

    /// Charges raw request/reply sizes on the link joining `from` and `to`.
    pub fn charge_sized_call_on(
        &self,
        rt: &ComRuntime,
        from: MachineId,
        to: MachineId,
        req_bytes: u64,
        reply_bytes: u64,
    ) {
        let model = self.link(from, to);
        let (req_us, reply_us) = {
            let mut rng = self.rng.lock();
            (
                model.sample_time_us(req_bytes, &mut *rng),
                model.sample_time_us(reply_bytes, &mut *rng),
            )
        };
        rt.charge_comm(
            (req_us + reply_us).round() as u64,
            req_bytes + reply_bytes,
            2,
        );
    }

    /// Burns `us` microseconds on a timeout or backoff wait: the clock
    /// advances but nothing is charged as useful communication.
    fn wait(&self, rt: &ComRuntime, us: u64) {
        rt.clock().advance_us(us);
        self.fault_stats.lock().wasted_us += us;
    }

    /// Sleeps the backoff before retry number `retry` (1-based), jittered
    /// from the fault RNG, and counts the retry.
    fn backoff(&self, rt: &ComRuntime, retry: u32) {
        let base = self.policy.backoff_us(retry) as f64;
        let us = if self.policy.backoff_jitter > 0.0 {
            let j = self.policy.backoff_jitter;
            let factor = 1.0 + self.fault_rng.lock().gen_range(-j..=j);
            (base * factor).round() as u64
        } else {
            base as u64
        };
        self.wait(rt, us);
        self.fault_stats.lock().retries += 1;
        self.with_obs(|tracer, recorder| {
            let at = rt.clock().now_us();
            tracer.instant_at(
                "fault_retry",
                at,
                vec![
                    ("retry", TraceArg::U64(u64::from(retry))),
                    ("backoff_us", TraceArg::U64(us)),
                ],
            );
            recorder.record(
                at,
                "fault_retry",
                format!("retry {retry} after {us}us backoff"),
            );
        });
    }

    /// Pre-flight check before dispatching a remote call from `from` to
    /// `to`: fails fast if the target machine is down, and rides out a
    /// link partition with timeout + backoff retries.
    ///
    /// With an empty fault plan this returns `Ok(())` immediately, charges
    /// nothing, and draws no randomness.
    pub fn preflight(&self, rt: &ComRuntime, from: MachineId, to: MachineId) -> ComResult<()> {
        if self.faults.is_empty() {
            return Ok(());
        }
        self.health_gate(rt, from, to)?;
        // A dead endpoint — target or caller — fails fast with the
        // machine's identity: the severance is the death, not a partition,
        // and the recovery layer needs to know *which* machine to re-solve
        // around.
        if let Some(machine) = self.dead_endpoint(from, to, rt.clock().now_us()) {
            self.fault_stats.lock().machine_down_errors += 1;
            self.fault_event(rt, "fault_machine_down", from, to, 0);
            let error = ComError::MachineDown(machine);
            self.health_failure(rt, from, to, &error);
            return Err(error);
        }
        for attempt in 1..=self.policy.max_attempts() {
            if !self.faults.link_severed(from, to, rt.clock().now_us()) {
                return Ok(());
            }
            // The request vanishes into the partition; we wait out the
            // timeout before concluding the attempt failed.
            self.wait(rt, self.policy.timeout_us);
            self.fault_stats.lock().timeouts += 1;
            self.fault_event(rt, "fault_timeout", from, to, attempt);
            if attempt < self.policy.max_attempts() {
                self.backoff(rt, attempt);
            }
        }
        self.fault_stats.lock().failed_calls += 1;
        self.fault_event(rt, "fault_failed", from, to, self.policy.max_attempts());
        let error = match self.dead_endpoint(from, to, rt.clock().now_us()) {
            Some(machine) => ComError::MachineDown(machine),
            None => ComError::Partitioned { from, to },
        };
        self.health_failure(rt, from, to, &error);
        Err(error)
    }

    /// The dead endpoint of the `from`→`to` link at `now_us`, if any (the
    /// target takes precedence when both are down).
    fn dead_endpoint(&self, from: MachineId, to: MachineId, now_us: u64) -> Option<MachineId> {
        if self.faults.machine_down(to, now_us) {
            Some(to)
        } else if self.faults.machine_down(from, now_us) {
            Some(from)
        } else {
            None
        }
    }

    /// Fault-aware variant of [`Transport::charge_sized_call_on`]: charges
    /// the request/reply pair on the `from`↔`to` link, injecting message
    /// loss, latency spikes, and partitions per the fault plan and riding
    /// them out per the call policy. Returns the number of attempts the
    /// call took (1 = clean first try).
    ///
    /// With an empty fault plan this is exactly `charge_sized_call_on`:
    /// same jitter draws, same single `charge_comm`.
    pub fn charge_sized_call_checked(
        &self,
        rt: &ComRuntime,
        from: MachineId,
        to: MachineId,
        req_bytes: u64,
        reply_bytes: u64,
    ) -> ComResult<u32> {
        if self.faults.is_empty() {
            self.charge_sized_call_on(rt, from, to, req_bytes, reply_bytes);
            return Ok(1);
        }
        self.health_gate(rt, from, to)?;
        let model = self.link(from, to);
        for attempt in 1..=self.policy.max_attempts() {
            let now = rt.clock().now_us();
            if let Some(machine) = self.dead_endpoint(from, to, now) {
                self.fault_stats.lock().machine_down_errors += 1;
                self.fault_event(rt, "fault_machine_down", from, to, attempt);
                let error = ComError::MachineDown(machine);
                self.health_failure(rt, from, to, &error);
                return Err(error);
            }
            let delivered = if self.faults.link_severed(from, to, now) {
                false
            } else {
                let loss = self.faults.loss_probability(from, to, now);
                if loss > 0.0 {
                    // Request and reply legs are lost independently.
                    let mut rng = self.fault_rng.lock();
                    let req_lost = rng.gen_bool(loss);
                    let reply_lost = !req_lost && rng.gen_bool(loss);
                    drop(rng);
                    if req_lost || reply_lost {
                        self.fault_stats.lock().drops += 1;
                        self.fault_event(rt, "fault_drop", from, to, attempt);
                    }
                    !(req_lost || reply_lost)
                } else {
                    true
                }
            };
            if delivered {
                let factor = self.faults.latency_factor(from, to, now);
                if factor > 1.0 {
                    self.with_obs(|tracer, recorder| {
                        tracer.instant_at(
                            "fault_spike",
                            now,
                            vec![
                                ("from", TraceArg::U64(u64::from(from.0))),
                                ("to", TraceArg::U64(u64::from(to.0))),
                                ("factor", TraceArg::F64(factor)),
                            ],
                        );
                        recorder.record(
                            now,
                            "fault_spike",
                            format!("m{}->m{} latency x{factor}", from.0, to.0),
                        );
                    });
                }
                let (req_us, reply_us) = {
                    let mut rng = self.rng.lock();
                    (
                        model.sample_time_us(req_bytes, &mut *rng),
                        model.sample_time_us(reply_bytes, &mut *rng),
                    )
                };
                rt.charge_comm(
                    ((req_us + reply_us) * factor).round() as u64,
                    req_bytes + reply_bytes,
                    2,
                );
                self.health_success(rt, from, to);
                return Ok(attempt);
            }
            // The caller hears nothing back and waits out the timeout.
            self.wait(rt, self.policy.timeout_us);
            self.fault_stats.lock().timeouts += 1;
            self.fault_event(rt, "fault_timeout", from, to, attempt);
            if attempt < self.policy.max_attempts() {
                self.backoff(rt, attempt);
            }
        }
        self.fault_stats.lock().failed_calls += 1;
        self.fault_event(rt, "fault_failed", from, to, self.policy.max_attempts());
        let error = if self.faults.link_severed(from, to, rt.clock().now_us()) {
            ComError::Partitioned { from, to }
        } else {
            ComError::Timeout {
                detail: format!(
                    "{from}→{to} after {} attempt(s)",
                    self.policy.max_attempts()
                ),
            }
        };
        self.health_failure(rt, from, to, &error);
        Err(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::idl::{MethodDesc, ParamDesc, ParamDir};
    use coign_com::{PType, Value};

    fn method() -> MethodDesc {
        MethodDesc::new(
            "Fetch",
            vec![
                ParamDesc::new("key", ParamDir::In, PType::Str),
                ParamDesc::new("data", ParamDir::Out, PType::Blob),
            ],
        )
    }

    #[test]
    fn remote_call_charges_clock_and_stats() {
        let rt = ComRuntime::client_server();
        let transport = Transport::new(NetworkModel::ethernet_10baset(), 1);
        let req = Message::new(vec![Value::Str("doc".into()), Value::Null]);
        let reply = Message::new(vec![Value::Str("doc".into()), Value::Blob(10_000)]);
        let (req_bytes, reply_bytes) = transport
            .charge_remote_call(&rt, &method(), &req, &reply)
            .unwrap();
        assert!(req_bytes > 0 && reply_bytes > 10_000);
        let stats = rt.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.bytes, req_bytes + reply_bytes);
        assert!(stats.comm_us > 0);
        assert_eq!(rt.clock().now_us(), stats.comm_us);
    }

    #[test]
    fn non_remotable_message_fails_without_charging() {
        let rt = ComRuntime::client_server();
        let transport = Transport::new(NetworkModel::ethernet_10baset(), 1);
        let opaque_method = MethodDesc::new(
            "Map",
            vec![ParamDesc::new("h", ParamDir::In, PType::Opaque)],
        );
        let msg = Message::new(vec![Value::Opaque(3)]);
        assert!(transport
            .charge_remote_call(&rt, &opaque_method, &msg, &msg)
            .is_err());
        assert_eq!(rt.stats().messages, 0);
        assert_eq!(rt.clock().now_us(), 0);
    }

    #[test]
    fn transport_is_deterministic_per_seed() {
        let run = |seed| {
            let rt = ComRuntime::client_server();
            let transport = Transport::new(NetworkModel::ethernet_10baset(), seed);
            for _ in 0..10 {
                transport.charge_sized_call(&rt, 500, 1500);
            }
            rt.clock().now_us()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn per_link_models_apply() {
        let rt = ComRuntime::new(vec![
            coign_com::MachineSpec::new("client", 1.0),
            coign_com::MachineSpec::new("middle", 1.0),
            coign_com::MachineSpec::new("db", 1.0),
        ]);
        let transport = Transport::with_links(
            NetworkModel::ethernet_10baset(),
            vec![
                ((MachineId(0), MachineId(1)), NetworkModel::isdn()),
                ((MachineId(1), MachineId(2)), NetworkModel::san()),
            ],
            1,
        );
        assert_eq!(transport.link(MachineId(0), MachineId(1)).name, "ISDN 128k");
        // Order-insensitive lookup.
        assert_eq!(transport.link(MachineId(1), MachineId(0)).name, "ISDN 128k");
        assert_eq!(transport.link(MachineId(1), MachineId(2)).name, "SAN");
        // Unlisted pair falls back to the default.
        assert_eq!(
            transport.link(MachineId(0), MachineId(2)).name,
            "10BaseT Ethernet"
        );

        // The slow link charges far more time for the same payload.
        let before = rt.clock().now_us();
        transport.charge_sized_call_on(&rt, MachineId(0), MachineId(1), 10_000, 10_000);
        let isdn_cost = rt.clock().now_us() - before;
        let before = rt.clock().now_us();
        transport.charge_sized_call_on(&rt, MachineId(1), MachineId(2), 10_000, 10_000);
        let san_cost = rt.clock().now_us() - before;
        assert!(
            isdn_cost > san_cost * 100,
            "isdn {isdn_cost} vs san {san_cost}"
        );
    }

    #[test]
    fn bigger_payloads_cost_more_time() {
        let rt_small = ComRuntime::client_server();
        let rt_big = ComRuntime::client_server();
        let t1 = Transport::new(NetworkModel::localhost(), 1);
        let t2 = Transport::new(NetworkModel::localhost(), 1);
        t1.charge_sized_call(&rt_small, 100, 100);
        t2.charge_sized_call(&rt_big, 1_000_000, 100);
        assert!(rt_big.clock().now_us() > rt_small.clock().now_us());
    }

    use crate::faults::{CallPolicy, FaultPlan, TimeWindow};

    /// Jitter-free policy so fault timings are exactly predictable.
    fn strict_policy() -> CallPolicy {
        CallPolicy {
            timeout_us: 10_000,
            max_retries: 3,
            backoff_base_us: 10_000,
            backoff_multiplier: 2.0,
            backoff_jitter: 0.0,
        }
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_plain_transport() {
        let run = |transport: Transport| {
            let rt = ComRuntime::client_server();
            for _ in 0..10 {
                transport
                    .preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
                    .unwrap();
                transport
                    .charge_sized_call_checked(&rt, MachineId::CLIENT, MachineId::SERVER, 500, 1500)
                    .unwrap();
            }
            (rt.clock().now_us(), rt.stats())
        };
        let plain = {
            let rt = ComRuntime::client_server();
            let t = Transport::new(NetworkModel::ethernet_10baset(), 7);
            for _ in 0..10 {
                t.charge_sized_call(&rt, 500, 1500);
            }
            (rt.clock().now_us(), rt.stats())
        };
        let faultless = run(Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            7,
            FaultPlan::none(),
            CallPolicy::default(),
            99, // fault seed is irrelevant with an empty plan
        ));
        assert_eq!(plain, faultless);
        assert!(Transport::new(NetworkModel::ethernet_10baset(), 7)
            .fault_stats()
            .is_clean());
    }

    #[test]
    fn partition_rides_out_with_retries_then_succeeds() {
        // Partition [0, 30ms); timeout 10ms, backoff 10ms.
        // Attempt 1 at t=0 (severed) → timeout to 10ms → backoff to 20ms.
        // Attempt 2 at t=20ms (severed) → timeout to 30ms... but preflight
        // re-checks at 30ms: window closed, so the call proceeds.
        let plan = FaultPlan::none().with_partition(
            MachineId::CLIENT,
            MachineId::SERVER,
            TimeWindow::new(0, 30_000),
        );
        let rt = ComRuntime::client_server();
        let t = Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            1,
            plan,
            strict_policy(),
            42,
        );
        t.preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
            .unwrap();
        let attempts = t
            .charge_sized_call_checked(&rt, MachineId::CLIENT, MachineId::SERVER, 500, 1500)
            .unwrap();
        assert_eq!(attempts, 1, "link is clean once preflight returns");
        let stats = t.fault_stats();
        assert_eq!(stats.timeouts, 2);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.failed_calls, 0);
        assert_eq!(stats.wasted_us, 2 * 10_000 + 10_000 + 20_000);
        // Useful traffic was charged exactly once.
        assert_eq!(rt.stats().messages, 2);
    }

    #[test]
    fn unending_partition_exhausts_the_policy() {
        let plan = FaultPlan::none().with_partition(
            MachineId::CLIENT,
            MachineId::SERVER,
            TimeWindow::ALWAYS,
        );
        let rt = ComRuntime::client_server();
        let t = Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            1,
            plan,
            strict_policy(),
            42,
        );
        let err = t
            .preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
            .unwrap_err();
        assert_eq!(
            err,
            ComError::Partitioned {
                from: MachineId::CLIENT,
                to: MachineId::SERVER,
            }
        );
        let stats = t.fault_stats();
        assert_eq!(stats.timeouts, 4);
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.failed_calls, 1);
        // No useful traffic was ever charged.
        assert_eq!(rt.stats().messages, 0);
        assert!(rt.clock().now_us() > 0);
    }

    #[test]
    fn dead_machine_fails_fast_without_retries() {
        let plan = FaultPlan::none().with_machine_down(MachineId::SERVER, TimeWindow::ALWAYS);
        let rt = ComRuntime::client_server();
        let t = Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            1,
            plan,
            strict_policy(),
            42,
        );
        let err = t
            .preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
            .unwrap_err();
        assert_eq!(err, ComError::MachineDown(MachineId::SERVER));
        let stats = t.fault_stats();
        assert_eq!(stats.machine_down_errors, 1);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn total_loss_times_out_every_attempt() {
        let plan = FaultPlan::none().with_loss(1.0);
        let rt = ComRuntime::client_server();
        let t = Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            1,
            plan,
            strict_policy(),
            42,
        );
        t.preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
            .unwrap();
        let err = t
            .charge_sized_call_checked(&rt, MachineId::CLIENT, MachineId::SERVER, 500, 1500)
            .unwrap_err();
        assert!(matches!(err, ComError::Timeout { .. }));
        let stats = t.fault_stats();
        assert_eq!(stats.drops, 4);
        assert_eq!(stats.timeouts, 4);
        assert_eq!(stats.failed_calls, 1);
        assert_eq!(rt.stats().messages, 0);
    }

    #[test]
    fn latency_spike_inflates_charged_time_only() {
        let charge = |plan: FaultPlan| {
            let rt = ComRuntime::client_server();
            let t = Transport::with_faults(
                NetworkModel::ethernet_10baset(),
                3,
                plan,
                strict_policy(),
                42,
            );
            t.charge_sized_call_checked(&rt, MachineId::CLIENT, MachineId::SERVER, 500, 1500)
                .unwrap();
            (rt.clock().now_us(), rt.stats().bytes)
        };
        // A spiked plan must still be non-empty for the fault path to run;
        // compare a 1x spike against a 5x spike.
        let (base_us, base_bytes) = charge(FaultPlan::none().with_spike(1.0, TimeWindow::ALWAYS));
        let (spiked_us, spiked_bytes) =
            charge(FaultPlan::none().with_spike(5.0, TimeWindow::ALWAYS));
        assert_eq!(base_bytes, spiked_bytes);
        // Rounding happens after the multiply, so allow ±1 µs.
        assert!(
            spiked_us.abs_diff(base_us * 5) <= 1,
            "spiked {spiked_us} vs 5 × base {base_us}"
        );
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |fault_seed| {
            let rt = ComRuntime::client_server();
            let t = Transport::with_faults(
                NetworkModel::ethernet_10baset(),
                1,
                FaultPlan::none().with_loss(0.4),
                CallPolicy::default(),
                fault_seed,
            );
            for _ in 0..20 {
                let _ = t.charge_sized_call_checked(
                    &rt,
                    MachineId::CLIENT,
                    MachineId::SERVER,
                    500,
                    1500,
                );
            }
            (rt.clock().now_us(), t.fault_stats())
        };
        assert_eq!(run(11), run(11));
        let (_, stats_a) = run(11);
        let (_, stats_b) = run(12);
        assert!(stats_a.drops > 0);
        assert_ne!(stats_a, stats_b, "different fault seeds diverge");
    }

    use crate::health::{BreakerPolicy, BreakerState, HealthMonitor};

    #[test]
    fn health_monitor_stays_pristine_on_a_zero_fault_plan() {
        let rt = ComRuntime::client_server();
        let t = Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            7,
            FaultPlan::none(),
            CallPolicy::default(),
            99,
        );
        let monitor = Arc::new(HealthMonitor::new(BreakerPolicy::default()));
        t.set_health(monitor.clone());
        for _ in 0..10 {
            t.preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
                .unwrap();
            t.charge_sized_call_checked(&rt, MachineId::CLIENT, MachineId::SERVER, 500, 1500)
                .unwrap();
        }
        assert!(
            monitor.is_pristine(),
            "empty plan must never consult the breaker layer"
        );
        // And the charged time matches a transport with no health layer.
        let plain = ComRuntime::client_server();
        let p = Transport::new(NetworkModel::ethernet_10baset(), 7);
        for _ in 0..10 {
            p.charge_sized_call(&plain, 500, 1500);
        }
        assert_eq!(rt.clock().now_us(), plain.clock().now_us());
    }

    #[test]
    fn breaker_trips_on_repeated_machine_death_and_fast_fails() {
        let plan = FaultPlan::none().with_machine_down(MachineId::SERVER, TimeWindow::ALWAYS);
        let rt = ComRuntime::client_server();
        let t = Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            1,
            plan,
            strict_policy(),
            42,
        );
        let monitor = Arc::new(HealthMonitor::new(BreakerPolicy::default()));
        t.set_health(monitor.clone());
        for _ in 0..3 {
            let err = t
                .preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
                .unwrap_err();
            assert_eq!(err, ComError::MachineDown(MachineId::SERVER));
        }
        assert_eq!(
            monitor.link_state(MachineId::CLIENT, MachineId::SERVER),
            BreakerState::Open
        );
        assert!(monitor.machine_open(MachineId::SERVER));
        assert_eq!(monitor.drain_opened_machines(), vec![MachineId::SERVER]);
        // The open breaker now rejects without touching the fault stats.
        let before = t.fault_stats();
        let clock_before = rt.clock().now_us();
        let err = t
            .preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
            .unwrap_err();
        assert_eq!(err, ComError::MachineDown(MachineId::SERVER));
        assert_eq!(t.fault_stats(), before);
        assert_eq!(
            rt.clock().now_us(),
            clock_before,
            "fast fails charge nothing"
        );
        assert_eq!(monitor.stats().fast_fails, 1);
    }

    #[test]
    fn breaker_probe_recovers_after_a_transient_partition() {
        // Partition [0, 25ms); each failed preflight burns 40ms+backoffs,
        // so the breaker trips during the partition and the first probe
        // after the window finds the link healthy again.
        let plan = FaultPlan::none().with_partition(
            MachineId::CLIENT,
            MachineId::SERVER,
            TimeWindow::new(0, 25_000),
        );
        let rt = ComRuntime::client_server();
        let t = Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            1,
            plan,
            CallPolicy {
                timeout_us: 5_000,
                max_retries: 0,
                backoff_base_us: 0,
                backoff_multiplier: 1.0,
                backoff_jitter: 0.0,
            },
            42,
        );
        let monitor = Arc::new(HealthMonitor::new(BreakerPolicy {
            failure_threshold: 3,
            success_threshold: 1,
            probe_interval_us: 20_000,
        }));
        t.set_health(monitor.clone());
        // Three 5 ms timeouts (t = 5, 10, 15 ms) trip the breaker.
        for _ in 0..3 {
            t.preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
                .unwrap_err();
        }
        assert_eq!(
            monitor.link_state(MachineId::CLIENT, MachineId::SERVER),
            BreakerState::Open
        );
        // Probe due at 15ms + 20ms = 35ms; burn simulated time to get there.
        rt.clock().advance_us(25_000);
        t.preflight(&rt, MachineId::CLIENT, MachineId::SERVER)
            .unwrap();
        t.charge_sized_call_checked(&rt, MachineId::CLIENT, MachineId::SERVER, 500, 1500)
            .unwrap();
        assert_eq!(
            monitor.link_state(MachineId::CLIENT, MachineId::SERVER),
            BreakerState::Closed,
            "the successful probe closed the breaker"
        );
        let stats = monitor.stats();
        assert_eq!((stats.opens, stats.probes, stats.closes), (1, 1, 1));
        assert!(!monitor.machine_open(MachineId::SERVER));
    }

    #[test]
    fn obs_hook_reports_fault_events_and_metrics() {
        let plan = FaultPlan::none().with_loss(1.0);
        let rt = ComRuntime::client_server();
        let t = Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            1,
            plan,
            strict_policy(),
            42,
        );
        let tracer = Arc::new(Tracer::enabled());
        let recorder = Arc::new(FlightRecorder::new(32));
        t.set_obs(tracer.clone(), recorder.clone());
        let err = t
            .charge_sized_call_checked(&rt, MachineId::CLIENT, MachineId::SERVER, 500, 1500)
            .unwrap_err();
        assert!(matches!(err, ComError::Timeout { .. }));
        let summary =
            coign_obs::validate_chrome_trace(&tracer.export_chrome_json()).expect("valid trace");
        let stats = t.fault_stats();
        assert_eq!(summary.instant_count("fault_drop") as u64, stats.drops);
        assert_eq!(
            summary.instant_count("fault_timeout") as u64,
            stats.timeouts
        );
        assert_eq!(summary.instant_count("fault_retry") as u64, stats.retries);
        assert_eq!(
            summary.instant_count("fault_failed") as u64,
            stats.failed_calls
        );
        // Every tracer instant also landed in the flight recorder.
        assert_eq!(
            recorder.len() as u64,
            stats.drops + stats.timeouts + stats.retries + 1
        );

        let registry = coign_obs::Registry::new();
        t.record_metrics(&registry);
        assert_eq!(
            registry.counter_value("coign_fault_drops_total"),
            Some(stats.drops)
        );
        assert_eq!(
            registry.counter_value("coign_fault_wasted_us"),
            Some(stats.wasted_us)
        );
    }
}
