//! The simulated remote-call transport.
//!
//! When a distributed execution routes an interface call across machines,
//! the [`Transport`] charges the cost of the request and reply messages to
//! the runtime's clock and statistics. Message times are drawn from the
//! network model with seeded jitter, so "measured" distributed executions
//! are reproducible yet not exactly equal to the analytic prediction.

use crate::marshal::{message_reply_size, message_request_size};
use crate::network::NetworkModel;
use coign_com::idl::MethodDesc;
use coign_com::{ComResult, ComRuntime, MachineId, Message};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Simulated DCOM wire transport between the machines of a topology.
///
/// By default every machine pair shares one network model (the paper's
/// two-machine isolated Ethernet). Multi-tier topologies can override
/// individual links — e.g. an ISDN line between client and middle tier but
/// a system-area network between the middle tier and the database.
pub struct Transport {
    network: NetworkModel,
    links: HashMap<(u16, u16), NetworkModel>,
    rng: Mutex<StdRng>,
}

fn link_key(a: MachineId, b: MachineId) -> (u16, u16) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl Transport {
    /// Creates a transport over the given network with a deterministic seed.
    pub fn new(network: NetworkModel, seed: u64) -> Self {
        Transport {
            network,
            links: HashMap::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Creates a transport with per-link overrides (order-insensitive
    /// machine pairs); unlisted pairs use `default`.
    pub fn with_links(
        default: NetworkModel,
        links: Vec<((MachineId, MachineId), NetworkModel)>,
        seed: u64,
    ) -> Self {
        Transport {
            network: default,
            links: links
                .into_iter()
                .map(|((a, b), model)| (link_key(a, b), model))
                .collect(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The default network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The model governing one machine pair.
    pub fn link(&self, a: MachineId, b: MachineId) -> &NetworkModel {
        self.links.get(&link_key(a, b)).unwrap_or(&self.network)
    }

    /// Charges a full remote call (request + reply) for the given method
    /// invocation to the runtime. Returns the `(request, reply)` sizes.
    ///
    /// Fails with `NotRemotable` if the message cannot be marshaled — the
    /// simulation equivalent of DCOM refusing to remote an interface whose
    /// parameters have no marshaler.
    pub fn charge_remote_call(
        &self,
        rt: &ComRuntime,
        method: &MethodDesc,
        request: &Message,
        reply: &Message,
    ) -> ComResult<(u64, u64)> {
        let req_bytes = message_request_size(method, request)?;
        let reply_bytes = message_reply_size(method, reply)?;
        self.charge_sized_call_on(
            rt,
            MachineId::CLIENT,
            MachineId::SERVER,
            req_bytes,
            reply_bytes,
        );
        Ok((req_bytes, reply_bytes))
    }

    /// Charges raw request/reply sizes on the default link.
    pub fn charge_sized_call(&self, rt: &ComRuntime, req_bytes: u64, reply_bytes: u64) {
        self.charge_sized_call_on(
            rt,
            MachineId::CLIENT,
            MachineId::SERVER,
            req_bytes,
            reply_bytes,
        );
    }

    /// Charges raw request/reply sizes on the link joining `from` and `to`.
    pub fn charge_sized_call_on(
        &self,
        rt: &ComRuntime,
        from: MachineId,
        to: MachineId,
        req_bytes: u64,
        reply_bytes: u64,
    ) {
        let model = self.link(from, to);
        let (req_us, reply_us) = {
            let mut rng = self.rng.lock();
            (
                model.sample_time_us(req_bytes, &mut *rng),
                model.sample_time_us(reply_bytes, &mut *rng),
            )
        };
        rt.charge_comm(
            (req_us + reply_us).round() as u64,
            req_bytes + reply_bytes,
            2,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::idl::{MethodDesc, ParamDesc, ParamDir};
    use coign_com::{PType, Value};

    fn method() -> MethodDesc {
        MethodDesc::new(
            "Fetch",
            vec![
                ParamDesc::new("key", ParamDir::In, PType::Str),
                ParamDesc::new("data", ParamDir::Out, PType::Blob),
            ],
        )
    }

    #[test]
    fn remote_call_charges_clock_and_stats() {
        let rt = ComRuntime::client_server();
        let transport = Transport::new(NetworkModel::ethernet_10baset(), 1);
        let req = Message::new(vec![Value::Str("doc".into()), Value::Null]);
        let reply = Message::new(vec![Value::Str("doc".into()), Value::Blob(10_000)]);
        let (req_bytes, reply_bytes) = transport
            .charge_remote_call(&rt, &method(), &req, &reply)
            .unwrap();
        assert!(req_bytes > 0 && reply_bytes > 10_000);
        let stats = rt.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.bytes, req_bytes + reply_bytes);
        assert!(stats.comm_us > 0);
        assert_eq!(rt.clock().now_us(), stats.comm_us);
    }

    #[test]
    fn non_remotable_message_fails_without_charging() {
        let rt = ComRuntime::client_server();
        let transport = Transport::new(NetworkModel::ethernet_10baset(), 1);
        let opaque_method = MethodDesc::new(
            "Map",
            vec![ParamDesc::new("h", ParamDir::In, PType::Opaque)],
        );
        let msg = Message::new(vec![Value::Opaque(3)]);
        assert!(transport
            .charge_remote_call(&rt, &opaque_method, &msg, &msg)
            .is_err());
        assert_eq!(rt.stats().messages, 0);
        assert_eq!(rt.clock().now_us(), 0);
    }

    #[test]
    fn transport_is_deterministic_per_seed() {
        let run = |seed| {
            let rt = ComRuntime::client_server();
            let transport = Transport::new(NetworkModel::ethernet_10baset(), seed);
            for _ in 0..10 {
                transport.charge_sized_call(&rt, 500, 1500);
            }
            rt.clock().now_us()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn per_link_models_apply() {
        let rt = ComRuntime::new(vec![
            coign_com::MachineSpec::new("client", 1.0),
            coign_com::MachineSpec::new("middle", 1.0),
            coign_com::MachineSpec::new("db", 1.0),
        ]);
        let transport = Transport::with_links(
            NetworkModel::ethernet_10baset(),
            vec![
                ((MachineId(0), MachineId(1)), NetworkModel::isdn()),
                ((MachineId(1), MachineId(2)), NetworkModel::san()),
            ],
            1,
        );
        assert_eq!(transport.link(MachineId(0), MachineId(1)).name, "ISDN 128k");
        // Order-insensitive lookup.
        assert_eq!(transport.link(MachineId(1), MachineId(0)).name, "ISDN 128k");
        assert_eq!(transport.link(MachineId(1), MachineId(2)).name, "SAN");
        // Unlisted pair falls back to the default.
        assert_eq!(
            transport.link(MachineId(0), MachineId(2)).name,
            "10BaseT Ethernet"
        );

        // The slow link charges far more time for the same payload.
        let before = rt.clock().now_us();
        transport.charge_sized_call_on(&rt, MachineId(0), MachineId(1), 10_000, 10_000);
        let isdn_cost = rt.clock().now_us() - before;
        let before = rt.clock().now_us();
        transport.charge_sized_call_on(&rt, MachineId(1), MachineId(2), 10_000, 10_000);
        let san_cost = rt.clock().now_us() - before;
        assert!(
            isdn_cost > san_cost * 100,
            "isdn {isdn_cost} vs san {san_cost}"
        );
    }

    #[test]
    fn bigger_payloads_cost_more_time() {
        let rt_small = ComRuntime::client_server();
        let rt_big = ComRuntime::client_server();
        let t1 = Transport::new(NetworkModel::localhost(), 1);
        let t2 = Transport::new(NetworkModel::localhost(), 1);
        t1.charge_sized_call(&rt_small, 100, 100);
        t2.charge_sized_call(&rt_big, 1_000_000, 100);
        assert!(rt_big.clock().now_us() > rt_small.clock().now_us());
    }
}
