//! DCOM-like transport simulation for the Coign reproduction.
//!
//! Coign measures inter-component communication by invoking portions of the
//! DCOM code — interface proxies and stubs — *inside the application's
//! address space*, so that profiling on one machine reports exactly the bytes
//! that would cross the wire in a distribution. This crate reproduces the
//! pieces of DCOM that Coign exercises:
//!
//! * [`marshal`] — deep-copy marshaling sizes for typed messages, including
//!   the non-remotable cases (opaque pointers) that constrain distributions.
//! * [`network`] — parameterized network cost models (10BaseT Ethernet, ISDN,
//!   ATM, SAN) with seeded stochastic jitter.
//! * [`profiler`] — the **network profiler**: statistical sampling of
//!   simulated DCOM round-trips fitted to a linear `α + β·bytes` cost model.
//! * [`transport`] — the remote-call path that charges request and reply
//!   messages to the runtime when a call crosses machines.
//! * [`faults`] — seeded fault injection (loss, latency spikes, partitions,
//!   machine death) and the retry/timeout/backoff policy at the proxy
//!   boundary.
//! * [`health`] — per-link circuit breakers (closed/open/half-open) fed by
//!   call outcomes, with deterministic probe scheduling on the simulated
//!   clock; the failure-detection half of the self-healing runtime.
//! * [`batch`] — per-link coalescing of cut-crossing messages within a
//!   scheduling window: one latency + pipelined serialization per batch,
//!   the transport discipline of the fleet-scale serving harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod faults;
pub mod health;
pub mod marshal;
pub mod network;
pub mod profiler;
pub mod transport;

pub use batch::{BatchStats, FlushReason, LinkBatcher, PendingMessage};
pub use faults::{CallPolicy, Fault, FaultPlan, FaultStats, LinkSelector, TimeWindow};
pub use health::{BreakerDecision, BreakerPolicy, BreakerState, BreakerTransition, HealthMonitor};
pub use marshal::{message_reply_size, message_request_size, value_size};
pub use network::NetworkModel;
pub use profiler::NetworkProfile;
pub use transport::Transport;
