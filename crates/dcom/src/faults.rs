//! Fault injection for the simulated DCOM wire.
//!
//! The paper's premise is that real networks are slow *and unreliable*
//! enough that component placement matters, yet a purely well-behaved
//! simulation never exercises the runtime's failure paths. This module
//! makes the transport faulty on purpose — seeded and scheduled against the
//! deterministic simulation clock, so every fault schedule is exactly
//! reproducible:
//!
//! * [`FaultPlan`] — the schedule: per-link message loss, latency spikes,
//!   link partitions over time windows, and whole-machine failure.
//! * [`CallPolicy`] — how the proxy reacts: per-attempt timeout, bounded
//!   retries with exponential backoff, and seeded jitter on the backoff.
//! * [`FaultStats`] — counters the transport accumulates (drops, timeouts,
//!   retries, wasted wait time) so run reports can surface what the fault
//!   layer did.
//!
//! Probabilistic decisions (message loss, backoff jitter) draw from a
//! dedicated fault RNG, *never* from the transport's jitter stream — a
//! zero-fault plan therefore leaves the simulated byte/clock accounting
//! bit-for-bit identical to a transport without the fault layer.

use coign_com::{ComError, ComResult, MachineId};

/// A half-open window `[from_us, until_us)` of simulated time.
///
/// `until_us == u64::MAX` means the window never closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindow {
    /// First microsecond the window covers.
    pub from_us: u64,
    /// First microsecond past the window (exclusive).
    pub until_us: u64,
}

impl TimeWindow {
    /// The window covering all of simulated time.
    pub const ALWAYS: TimeWindow = TimeWindow {
        from_us: 0,
        until_us: u64::MAX,
    };

    /// Creates a bounded window; `from_us` must not exceed `until_us`.
    pub fn new(from_us: u64, until_us: u64) -> Self {
        assert!(from_us <= until_us, "window ends before it starts");
        TimeWindow { from_us, until_us }
    }

    /// Creates an open-ended window starting at `from_us`.
    pub fn from(from_us: u64) -> Self {
        TimeWindow {
            from_us,
            until_us: u64::MAX,
        }
    }

    /// True when `now_us` falls inside the window.
    pub fn contains(&self, now_us: u64) -> bool {
        self.from_us <= now_us && now_us < self.until_us
    }
}

/// Which machine pairs a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelector {
    /// Every link in the topology.
    AllLinks,
    /// One machine pair (order-insensitive).
    Link(MachineId, MachineId),
}

impl LinkSelector {
    fn matches(&self, a: MachineId, b: MachineId) -> bool {
        match *self {
            LinkSelector::AllLinks => true,
            LinkSelector::Link(x, y) => (x == a && y == b) || (x == b && y == a),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Each message on the selected link(s) is lost with `probability`
    /// while the window is open (drawn from the fault RNG).
    Loss {
        /// Affected link(s).
        link: LinkSelector,
        /// Per-message loss probability in `[0, 1]`.
        probability: f64,
        /// When the fault is active.
        window: TimeWindow,
    },
    /// Message times on the selected link(s) are multiplied by `factor`
    /// while the window is open (a congestion episode).
    LatencySpike {
        /// Affected link(s).
        link: LinkSelector,
        /// Multiplier applied to sampled message times (≥ 0).
        factor: f64,
        /// When the fault is active.
        window: TimeWindow,
    },
    /// The selected link(s) deliver nothing while the window is open.
    Partition {
        /// Affected link(s).
        link: LinkSelector,
        /// When the link is severed.
        window: TimeWindow,
    },
    /// The machine fails entirely: unreachable on every link, and remote
    /// instantiations targeting it must fall back.
    MachineDown {
        /// The failed machine.
        machine: MachineId,
        /// When the machine is down.
        window: TimeWindow,
    },
}

/// The full seeded fault schedule of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: the wire behaves perfectly.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Adds a fault to the schedule.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Builder: message loss on all links for the whole run.
    pub fn with_loss(mut self, probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability), "loss must be in [0,1]");
        self.faults.push(Fault::Loss {
            link: LinkSelector::AllLinks,
            probability,
            window: TimeWindow::ALWAYS,
        });
        self
    }

    /// Builder: a latency spike on all links inside `window`.
    pub fn with_spike(mut self, factor: f64, window: TimeWindow) -> Self {
        assert!(factor >= 0.0, "spike factor must be non-negative");
        self.faults.push(Fault::LatencySpike {
            link: LinkSelector::AllLinks,
            factor,
            window,
        });
        self
    }

    /// Builder: a partition of the `a`↔`b` link inside `window`.
    pub fn with_partition(mut self, a: MachineId, b: MachineId, window: TimeWindow) -> Self {
        self.faults.push(Fault::Partition {
            link: LinkSelector::Link(a, b),
            window,
        });
        self
    }

    /// Builder: whole-machine failure inside `window`.
    pub fn with_machine_down(mut self, machine: MachineId, window: TimeWindow) -> Self {
        self.faults.push(Fault::MachineDown { machine, window });
        self
    }

    /// True when `machine` is dead at `now_us`.
    pub fn machine_down(&self, machine: MachineId, now_us: u64) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::MachineDown { machine: m, window } => *m == machine && window.contains(now_us),
            _ => false,
        })
    }

    /// True when nothing can cross the `a`↔`b` link at `now_us` — the link
    /// itself is partitioned or either endpoint is down.
    pub fn link_severed(&self, a: MachineId, b: MachineId, now_us: u64) -> bool {
        self.machine_down(a, now_us)
            || self.machine_down(b, now_us)
            || self.faults.iter().any(|f| match f {
                Fault::Partition { link, window } => link.matches(a, b) && window.contains(now_us),
                _ => false,
            })
    }

    /// Combined per-message loss probability on the `a`↔`b` link at
    /// `now_us`: independent loss faults compose as `1 - Π(1 - pᵢ)`.
    pub fn loss_probability(&self, a: MachineId, b: MachineId, now_us: u64) -> f64 {
        let mut survive = 1.0;
        for fault in &self.faults {
            if let Fault::Loss {
                link,
                probability,
                window,
            } = fault
            {
                if link.matches(a, b) && window.contains(now_us) {
                    survive *= 1.0 - probability;
                }
            }
        }
        1.0 - survive
    }

    /// Product of all latency-spike factors active on the `a`↔`b` link at
    /// `now_us` (1.0 when none are).
    pub fn latency_factor(&self, a: MachineId, b: MachineId, now_us: u64) -> f64 {
        let mut factor = 1.0;
        for fault in &self.faults {
            if let Fault::LatencySpike {
                link,
                factor: f,
                window,
            } = fault
            {
                if link.matches(a, b) && window.contains(now_us) {
                    factor *= f;
                }
            }
        }
        factor
    }

    /// Parses the textual fault-plan format (the `--fault-plan` file).
    ///
    /// One fault per line; `#` starts a comment. Machine pairs are written
    /// `A-B` (`*` = all links); time windows `FROM..UNTIL` in microseconds
    /// with either side omissible (`..` or the whole field omitted = the
    /// entire run).
    ///
    /// ```text
    /// loss 0.05                   # 5 % loss, all links, whole run
    /// loss 0.2 0-1 1000..50000    # 20 % on link 0↔1 in [1ms, 50ms)
    /// spike 4 * 10000..20000      # 4× latency everywhere in [10ms, 20ms)
    /// partition 0-1 5000..9000    # link 0↔1 severed in [5ms, 9ms)
    /// down 1 30000..              # machine 1 dies at 30ms, forever
    /// ```
    pub fn parse(text: &str) -> ComResult<Self> {
        let mut plan = FaultPlan::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad =
                |detail: &str| ComError::Codec(format!("fault plan line {}: {detail}", lineno + 1));
            let mut tokens = line.split_whitespace();
            let keyword = tokens.next().expect("non-empty line has a token");
            let rest: Vec<&str> = tokens.collect();
            match keyword {
                "loss" | "spike" => {
                    let value: f64 = rest
                        .first()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected a numeric value"))?;
                    if keyword == "loss" && !(0.0..=1.0).contains(&value) {
                        return Err(bad("loss probability must be in [0, 1]"));
                    }
                    if keyword == "spike" && value < 0.0 {
                        return Err(bad("spike factor must be non-negative"));
                    }
                    let link = parse_link(rest.get(1).copied()).map_err(|e| bad(&e))?;
                    let window = parse_window(rest.get(2).copied()).map_err(|e| bad(&e))?;
                    if rest.len() > 3 {
                        return Err(bad("trailing tokens"));
                    }
                    plan.push(if keyword == "loss" {
                        Fault::Loss {
                            link,
                            probability: value,
                            window,
                        }
                    } else {
                        Fault::LatencySpike {
                            link,
                            factor: value,
                            window,
                        }
                    });
                }
                "partition" => {
                    let link = parse_link(rest.first().copied()).map_err(|e| bad(&e))?;
                    let window = parse_window(rest.get(1).copied()).map_err(|e| bad(&e))?;
                    if rest.len() > 2 {
                        return Err(bad("trailing tokens"));
                    }
                    plan.push(Fault::Partition { link, window });
                }
                "down" => {
                    let machine: u16 = rest
                        .first()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected a machine index"))?;
                    let window = parse_window(rest.get(1).copied()).map_err(|e| bad(&e))?;
                    if rest.len() > 2 {
                        return Err(bad("trailing tokens"));
                    }
                    plan.push(Fault::MachineDown {
                        machine: MachineId(machine),
                        window,
                    });
                }
                other => return Err(bad(&format!("unknown fault kind `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// Synthesizes a deterministic chaos plan from a bare seed — the
    /// `--fault-seed S` shorthand for callers that want reproducible
    /// faults without writing a plan file.
    ///
    /// Seed 0 is the explicit zero-fault seed and returns the empty plan
    /// (transparency: byte-identical to no fault layer at all). Any other
    /// seed drives a splitmix64 stream that always schedules one
    /// permanent `MachineDown` of a victim drawn from `victims` at a
    /// point in `[horizon/8, horizon/2)`, plus optionally modest loss
    /// (1–5 %, all links) and/or a latency spike (2–4×) — the same fault
    /// mix `coign chaos` explores, but synthesized without an RNG crate
    /// so any layer can reproduce it from the seed alone.
    pub fn seeded(seed: u64, horizon_us: u64, victims: &[MachineId]) -> Self {
        if seed == 0 || victims.is_empty() || horizon_us == 0 {
            return FaultPlan::none();
        }
        let mut state = seed;
        let victim = victims[(splitmix64(&mut state) % victims.len() as u64) as usize];
        let lo = horizon_us / 8;
        let hi = (horizon_us / 2).max(lo + 1);
        let at = lo + splitmix64(&mut state) % (hi - lo);
        let mut plan = FaultPlan::none().with_machine_down(victim, TimeWindow::from(at));
        if splitmix64(&mut state).is_multiple_of(2) {
            let pct = 1 + splitmix64(&mut state) % 5;
            plan = plan.with_loss(pct as f64 / 100.0);
        }
        if splitmix64(&mut state).is_multiple_of(2) {
            let factor = 2 + splitmix64(&mut state) % 3;
            let start = splitmix64(&mut state) % hi;
            let len = (horizon_us / 8).max(1);
            plan = plan.with_spike(factor as f64, TimeWindow::new(start, start + len));
        }
        plan
    }
}

/// The splitmix64 step — the same generator the serve shards use for
/// think-time streams, reproduced here so plan synthesis needs no RNG
/// crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl std::fmt::Display for LinkSelector {
    /// Renders the selector in the textual plan format: `*` or `A-B`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkSelector::AllLinks => write!(f, "*"),
            LinkSelector::Link(a, b) => write!(f, "{}-{}", a.0, b.0),
        }
    }
}

impl std::fmt::Display for TimeWindow {
    /// Renders the window in the textual plan format: `FROM..UNTIL` with
    /// either side omitted when it is open (`0` / unbounded).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.from_us > 0 {
            write!(f, "{}", self.from_us)?;
        }
        write!(f, "..")?;
        if self.until_us < u64::MAX {
            write!(f, "{}", self.until_us)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Fault {
    /// Renders the fault as one line of the textual plan format.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Loss {
                link,
                probability,
                window,
            } => write!(f, "loss {probability} {link} {window}"),
            Fault::LatencySpike {
                link,
                factor,
                window,
            } => write!(f, "spike {factor} {link} {window}"),
            Fault::Partition { link, window } => write!(f, "partition {link} {window}"),
            Fault::MachineDown { machine, window } => {
                write!(f, "down {} {window}", machine.0)
            }
        }
    }
}

impl std::fmt::Display for FaultPlan {
    /// Renders the plan in the textual format [`FaultPlan::parse`] reads:
    /// one fault per line. `parse(&plan.to_string())` reproduces the plan
    /// exactly — numeric values print with Rust's shortest round-tripping
    /// float representation.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for fault in &self.faults {
            writeln!(f, "{fault}")?;
        }
        Ok(())
    }
}

fn parse_link(token: Option<&str>) -> Result<LinkSelector, String> {
    match token {
        None | Some("*") => Ok(LinkSelector::AllLinks),
        Some(pair) => {
            let (a, b) = pair
                .split_once('-')
                .ok_or_else(|| format!("bad link `{pair}` (want `A-B` or `*`)"))?;
            let a: u16 = a.parse().map_err(|_| format!("bad machine `{a}`"))?;
            let b: u16 = b.parse().map_err(|_| format!("bad machine `{b}`"))?;
            Ok(LinkSelector::Link(MachineId(a), MachineId(b)))
        }
    }
}

fn parse_window(token: Option<&str>) -> Result<TimeWindow, String> {
    let Some(spec) = token else {
        return Ok(TimeWindow::ALWAYS);
    };
    let (from, until) = spec
        .split_once("..")
        .ok_or_else(|| format!("bad window `{spec}` (want `FROM..UNTIL`)"))?;
    let from_us = if from.is_empty() {
        0
    } else {
        from.parse()
            .map_err(|_| format!("bad window start `{from}`"))?
    };
    let until_us = if until.is_empty() {
        u64::MAX
    } else {
        until
            .parse()
            .map_err(|_| format!("bad window end `{until}`"))?
    };
    if from_us > until_us {
        return Err(format!("window `{spec}` ends before it starts"));
    }
    Ok(TimeWindow { from_us, until_us })
}

/// How the proxy/transport boundary reacts to an unresponsive wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallPolicy {
    /// Time charged to the clock for an attempt that never hears a reply.
    pub timeout_us: u64,
    /// Re-send attempts after the first one fails (0 = no retries).
    pub max_retries: u32,
    /// Wait before the first retry.
    pub backoff_base_us: u64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Half-width of the uniform multiplicative jitter on each backoff,
    /// drawn from the fault RNG (0.1 = ±10 %).
    pub backoff_jitter: f64,
}

impl Default for CallPolicy {
    /// Timeout 50 ms (≈ 50× an Ethernet message), 3 retries, exponential
    /// backoff 10 ms → 20 ms → 40 ms with ±10 % jitter.
    fn default() -> Self {
        CallPolicy {
            timeout_us: 50_000,
            max_retries: 3,
            backoff_base_us: 10_000,
            backoff_multiplier: 2.0,
            backoff_jitter: 0.1,
        }
    }
}

impl CallPolicy {
    /// Total attempts the policy allows (first try + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// The deterministic (jitter-free) backoff before retry number
    /// `retry` (1-based).
    pub fn backoff_us(&self, retry: u32) -> u64 {
        let factor = self.backoff_multiplier.powi(retry.saturating_sub(1) as i32);
        (self.backoff_base_us as f64 * factor).round() as u64
    }
}

/// Counters the transport accumulates while the fault layer is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages lost in flight (request or reply legs).
    pub drops: u64,
    /// Attempts that timed out (lost message or severed link).
    pub timeouts: u64,
    /// Re-send attempts made after a timeout.
    pub retries: u64,
    /// Calls that ultimately failed after exhausting the policy.
    pub failed_calls: u64,
    /// Calls refused because the target machine was down.
    pub machine_down_errors: u64,
    /// Clock time burned on timeouts and backoff waits, microseconds.
    pub wasted_us: u64,
}

impl FaultStats {
    /// True when the fault layer never perturbed anything.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Folds another stats block into this one (shard merging).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.drops += other.drops;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.failed_calls += other.failed_calls;
        self.machine_down_errors += other.machine_down_errors;
        self.wasted_us += other.wasted_us;
    }

    /// Absorbs these counters into a metrics registry under the
    /// `coign_fault_*` namespace.
    pub fn record_metrics(&self, registry: &coign_obs::Registry) {
        registry.counter("coign_fault_drops_total").add(self.drops);
        registry
            .counter("coign_fault_timeouts_total")
            .add(self.timeouts);
        registry
            .counter("coign_fault_retries_total")
            .add(self.retries);
        registry
            .counter("coign_fault_failed_calls_total")
            .add(self.failed_calls);
        registry
            .counter("coign_fault_machine_down_errors_total")
            .add(self.machine_down_errors);
        registry
            .counter("coign_fault_wasted_us")
            .add(self.wasted_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: MachineId = MachineId::CLIENT;
    const S: MachineId = MachineId::SERVER;

    #[test]
    fn windows_are_half_open() {
        let w = TimeWindow::new(100, 200);
        assert!(!w.contains(99));
        assert!(w.contains(100));
        assert!(w.contains(199));
        assert!(!w.contains(200));
        assert!(TimeWindow::from(50).contains(u64::MAX - 1));
        assert!(TimeWindow::ALWAYS.contains(0));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_window_panics() {
        TimeWindow::new(10, 5);
    }

    #[test]
    fn empty_plan_is_transparent() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.machine_down(S, 0));
        assert!(!plan.link_severed(C, S, 0));
        assert_eq!(plan.loss_probability(C, S, 0), 0.0);
        assert_eq!(plan.latency_factor(C, S, 0), 1.0);
    }

    #[test]
    fn machine_death_severs_every_link_in_window() {
        let plan = FaultPlan::none().with_machine_down(S, TimeWindow::new(1_000, 5_000));
        assert!(!plan.machine_down(S, 999));
        assert!(plan.machine_down(S, 1_000));
        assert!(plan.link_severed(C, S, 2_000));
        assert!(plan.link_severed(S, MachineId(2), 2_000));
        assert!(!plan.link_severed(C, MachineId(2), 2_000));
        assert!(!plan.link_severed(C, S, 5_000));
    }

    #[test]
    fn partitions_are_order_insensitive_and_windowed() {
        let plan = FaultPlan::none().with_partition(C, S, TimeWindow::new(10, 20));
        assert!(plan.link_severed(C, S, 15));
        assert!(plan.link_severed(S, C, 15));
        assert!(!plan.link_severed(C, S, 20));
        assert!(!plan.link_severed(C, MachineId(2), 15));
    }

    #[test]
    fn loss_probabilities_compose_independently() {
        let mut plan = FaultPlan::none().with_loss(0.5);
        plan.push(Fault::Loss {
            link: LinkSelector::Link(C, S),
            probability: 0.5,
            window: TimeWindow::ALWAYS,
        });
        // 1 - 0.5 * 0.5 on the doubly-faulted link, 0.5 elsewhere.
        assert!((plan.loss_probability(C, S, 0) - 0.75).abs() < 1e-12);
        assert!((plan.loss_probability(C, MachineId(2), 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spike_factors_multiply() {
        let plan = FaultPlan::none()
            .with_spike(2.0, TimeWindow::new(0, 100))
            .with_spike(3.0, TimeWindow::new(50, 100));
        assert_eq!(plan.latency_factor(C, S, 10), 2.0);
        assert_eq!(plan.latency_factor(C, S, 60), 6.0);
        assert_eq!(plan.latency_factor(C, S, 100), 1.0);
    }

    #[test]
    fn policy_backoff_is_exponential() {
        let policy = CallPolicy::default();
        assert_eq!(policy.max_attempts(), 4);
        assert_eq!(policy.backoff_us(1), 10_000);
        assert_eq!(policy.backoff_us(2), 20_000);
        assert_eq!(policy.backoff_us(3), 40_000);
    }

    #[test]
    fn parse_roundtrips_the_documented_example() {
        let plan = FaultPlan::parse(
            "# demo plan\n\
             loss 0.05\n\
             loss 0.2 0-1 1000..50000\n\
             spike 4 * 10000..20000\n\
             partition 0-1 5000..9000  # mid-run blip\n\
             down 1 30000..\n",
        )
        .unwrap();
        assert_eq!(plan.faults().len(), 5);
        assert!(plan.machine_down(S, 30_000));
        assert!(!plan.machine_down(S, 29_999));
        assert!(plan.link_severed(C, S, 6_000));
        assert!((plan.loss_probability(C, S, 2_000) - (1.0 - 0.95 * 0.8)).abs() < 1e-12);
        assert_eq!(plan.latency_factor(C, S, 15_000), 4.0);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "loss",                   // missing value
            "loss 1.5",               // out of range
            "spike -2",               // negative factor
            "loss 0.1 01",            // bad link
            "loss 0.1 0-1 10",        // bad window
            "partition 0-1 20..10",   // inverted window
            "down x",                 // bad machine
            "explode 0.5",            // unknown kind
            "loss 0.1 0-1 0..10 zzz", // trailing tokens
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                matches!(err, ComError::Codec(_)),
                "`{bad}` should fail with a codec error, got {err:?}"
            );
            assert!(err.to_string().contains("line 1"), "`{bad}`: {err}");
        }
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let plan = FaultPlan::parse("\n# nothing\n   \n").unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_zero_is_transparent() {
        assert!(FaultPlan::seeded(0, 1_000_000, &[S]).is_empty());
        assert!(FaultPlan::seeded(7, 1_000_000, &[]).is_empty());
        assert!(FaultPlan::seeded(7, 0, &[S]).is_empty());
        let horizon = 2_000_000;
        for seed in [1u64, 7, 11, 42, u64::MAX] {
            let plan = FaultPlan::seeded(seed, horizon, &[S, MachineId(2)]);
            assert_eq!(
                plan,
                FaultPlan::seeded(seed, horizon, &[S, MachineId(2)]),
                "seed {seed}: same seed, same plan"
            );
            let deaths: Vec<_> = plan
                .faults()
                .iter()
                .filter_map(|f| match f {
                    Fault::MachineDown { machine, window } => Some((*machine, *window)),
                    _ => None,
                })
                .collect();
            assert_eq!(deaths.len(), 1, "seed {seed}: exactly one machine death");
            let (victim, window) = deaths[0];
            assert!(victim == S || victim == MachineId(2));
            assert_ne!(victim, C, "the client is never the victim");
            assert!(
                window.from_us >= horizon / 8 && window.from_us < horizon / 2,
                "seed {seed}: death at {} outside [horizon/8, horizon/2)",
                window.from_us
            );
            assert_eq!(window.until_us, u64::MAX, "death is permanent");
        }
    }

    #[test]
    fn fault_stats_cleanliness() {
        let mut stats = FaultStats::default();
        assert!(stats.is_clean());
        stats.retries = 1;
        assert!(!stats.is_clean());
    }

    #[test]
    fn display_uses_the_documented_grammar() {
        let plan = FaultPlan::none()
            .with_loss(0.05)
            .with_spike(4.0, TimeWindow::new(10_000, 20_000))
            .with_partition(C, S, TimeWindow::new(5_000, 9_000))
            .with_machine_down(S, TimeWindow::from(30_000));
        assert_eq!(
            plan.to_string(),
            "loss 0.05 * ..\n\
             spike 4 * 10000..20000\n\
             partition 0-1 5000..9000\n\
             down 1 30000..\n"
        );
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_machine() -> impl Strategy<Value = MachineId> {
        (0u16..8).prop_map(MachineId)
    }

    fn arb_link() -> impl Strategy<Value = LinkSelector> {
        prop_oneof![
            Just(LinkSelector::AllLinks),
            (arb_machine(), arb_machine()).prop_map(|(a, b)| LinkSelector::Link(a, b)),
        ]
    }

    fn arb_window() -> impl Strategy<Value = TimeWindow> {
        prop_oneof![
            Just(TimeWindow::ALWAYS),
            (0u64..1_000_000).prop_map(TimeWindow::from),
            (0u64..1_000_000, 0u64..1_000_000)
                .prop_map(|(a, b)| TimeWindow::new(a.min(b), a.max(b))),
        ]
    }

    fn arb_fault() -> impl Strategy<Value = Fault> {
        prop_oneof![
            // The vendored proptest has no float-range strategies; integer
            // grids mapped through division exercise plenty of
            // non-terminating binary fractions anyway.
            (arb_link(), 0u32..=10_000, arb_window()).prop_map(|(link, millis, window)| {
                Fault::Loss {
                    link,
                    probability: f64::from(millis) / 10_000.0,
                    window,
                }
            }),
            (arb_link(), 0u32..=100_000, arb_window()).prop_map(|(link, thousandths, window)| {
                Fault::LatencySpike {
                    link,
                    factor: f64::from(thousandths) / 1_000.0,
                    window,
                }
            }),
            (arb_link(), arb_window()).prop_map(|(link, window)| Fault::Partition { link, window }),
            (arb_machine(), arb_window())
                .prop_map(|(machine, window)| Fault::MachineDown { machine, window }),
        ]
    }

    proptest! {
        #[test]
        fn plan_format_round_trips(faults in proptest::collection::vec(arb_fault(), 0..12)) {
            // Floats print with Rust's shortest round-tripping
            // representation, so re-parsing must reproduce the plan bit
            // for bit.
            let mut plan = FaultPlan::none();
            for fault in faults {
                plan.push(fault);
            }
            let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
            prop_assert_eq!(reparsed, plan);
        }

        #[test]
        fn parser_errors_but_never_panics_on_arbitrary_text(text in ".{0,48}") {
            // Any outcome is acceptable except a panic.
            let _ = FaultPlan::parse(&text);
        }

        #[test]
        fn parser_errors_but_never_panics_on_plan_like_garbage(
            keyword in prop_oneof![
                Just("loss".to_string()),
                Just("spike".to_string()),
                Just("partition".to_string()),
                Just("down".to_string()),
                "[a-z]{1,8}",
            ],
            tokens in proptest::collection::vec("[-0-9a-z.*#]{0,6}", 0..5),
        ) {
            // Near-miss lines: right keywords, mangled operands. Malformed
            // input must surface as a typed codec error, never a panic.
            let line = format!("{keyword} {}", tokens.join(" "));
            if let Err(error) = FaultPlan::parse(&line) {
                prop_assert!(matches!(error, ComError::Codec(_)));
            }
        }
    }
}
