//! Parameterized network cost models.
//!
//! A [`NetworkModel`] answers one question: how many microseconds does a
//! DCOM message of `n` bytes take on this network? The answer combines fixed
//! per-message latency (protocol processing + propagation) with serialization
//! time at the link bandwidth, plus a small seeded stochastic jitter so that
//! measured times differ slightly from any fitted analytic model — the source
//! of the small prediction errors in the paper's Table 5.
//!
//! Presets cover the network generations the paper's introduction names as
//! stressing static distributions: ISDN, 10BaseT Ethernet, ATM, and SAN.

use rand::Rng;

/// A network cost model: `time(bytes) = latency + (bytes + overhead) / bw`,
/// scaled by multiplicative jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Display name, e.g. `"10BaseT Ethernet"`.
    pub name: String,
    /// Fixed one-way per-message cost in microseconds (protocol stack +
    /// propagation).
    pub latency_us: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Framing overhead added to every message, in bytes.
    pub overhead_bytes: u64,
    /// Half-width of the uniform multiplicative jitter (0.05 = ±5 %).
    pub jitter: f64,
    /// Optional maximum transmission unit: when set, a message is
    /// fragmented into `ceil(bytes / mtu)` packets, each paying the framing
    /// overhead and a per-packet slice of the latency (protocol
    /// processing). `None` models the link as a pure pipe.
    pub mtu: Option<u64>,
}

impl NetworkModel {
    /// Creates a custom model.
    pub fn new(name: &str, latency_us: f64, bandwidth_bytes_per_sec: f64) -> Self {
        NetworkModel {
            name: name.to_string(),
            latency_us,
            bandwidth_bytes_per_sec,
            overhead_bytes: 64,
            jitter: 0.05,
            mtu: None,
        }
    }

    /// Returns this model with packet fragmentation at the given MTU.
    ///
    /// Fragmentation makes large transfers costlier than the pure-pipe
    /// model: every packet repays the framing overhead plus 10 % of the
    /// base latency for protocol processing.
    pub fn with_mtu(mut self, mtu: u64) -> Self {
        assert!(mtu > 0, "mtu must be positive");
        self.mtu = Some(mtu);
        self
    }

    /// Isolated 10BaseT Ethernet — the paper's experimental network
    /// (10 Mb/s ≈ 1.25 MB/s, ~1 ms per-message software latency on
    /// 200 MHz-class hosts).
    pub fn ethernet_10baset() -> Self {
        NetworkModel::new("10BaseT Ethernet", 1_000.0, 1.25e6)
    }

    /// 128 kb/s ISDN: low bandwidth, high latency.
    pub fn isdn() -> Self {
        NetworkModel::new("ISDN 128k", 10_000.0, 16e3)
    }

    /// 155 Mb/s ATM: high bandwidth, moderate latency.
    pub fn atm155() -> Self {
        NetworkModel::new("ATM OC-3", 300.0, 19.4e6)
    }

    /// System-area network: very high bandwidth, very low latency.
    pub fn san() -> Self {
        NetworkModel::new("SAN", 20.0, 125e6)
    }

    /// Same-machine loopback (used for sanity checks).
    pub fn localhost() -> Self {
        let mut m = NetworkModel::new("loopback", 5.0, 1e9);
        m.jitter = 0.0;
        m
    }

    /// Deterministic (jitter-free) one-way time for a message of `bytes`.
    pub fn mean_time_us(&self, bytes: u64) -> f64 {
        match self.mtu {
            None => {
                self.latency_us
                    + (bytes + self.overhead_bytes) as f64 / self.bandwidth_bytes_per_sec * 1e6
            }
            Some(mtu) => {
                let packets = bytes.div_ceil(mtu).max(1);
                let wire_bytes = bytes + packets * self.overhead_bytes;
                self.latency_us
                    + (packets - 1) as f64 * self.latency_us * 0.1
                    + wire_bytes as f64 / self.bandwidth_bytes_per_sec * 1e6
            }
        }
    }

    /// Sampled one-way time with multiplicative jitter from `rng`.
    ///
    /// The effective jitter half-width is capped at 1.0: a larger value
    /// would make `1 + jitter_draw` negative and send time backwards.
    pub fn sample_time_us<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> f64 {
        let base = self.mean_time_us(bytes);
        if self.jitter == 0.0 {
            return base;
        }
        let jitter = self.jitter.min(1.0);
        let factor = 1.0 + rng.gen_range(-jitter..=jitter);
        base * factor
    }

    /// Deterministic round-trip time for a request/reply pair.
    pub fn mean_round_trip_us(&self, request_bytes: u64, reply_bytes: u64) -> f64 {
        self.mean_time_us(request_bytes) + self.mean_time_us(reply_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_time_has_latency_floor() {
        let net = NetworkModel::ethernet_10baset();
        assert!(net.mean_time_us(0) >= net.latency_us);
    }

    #[test]
    fn mean_time_is_monotone_in_size() {
        let net = NetworkModel::ethernet_10baset();
        assert!(net.mean_time_us(10_000) > net.mean_time_us(100));
    }

    #[test]
    fn presets_are_ordered_by_speed_for_bulk_transfers() {
        let bytes = 1_000_000;
        let isdn = NetworkModel::isdn().mean_time_us(bytes);
        let enet = NetworkModel::ethernet_10baset().mean_time_us(bytes);
        let atm = NetworkModel::atm155().mean_time_us(bytes);
        let san = NetworkModel::san().mean_time_us(bytes);
        assert!(isdn > enet && enet > atm && atm > san);
    }

    #[test]
    fn latency_dominates_for_small_messages_on_fast_networks() {
        // The bandwidth-to-latency tradeoff the paper's intro describes:
        // ISDN→ATM changes the ratio by more than an order of magnitude.
        let isdn = NetworkModel::isdn();
        let atm = NetworkModel::atm155();
        let small_ratio = isdn.mean_time_us(64) / atm.mean_time_us(64);
        let big_ratio = isdn.mean_time_us(1_000_000) / atm.mean_time_us(1_000_000);
        assert!(big_ratio / small_ratio > 10.0);
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let net = NetworkModel::ethernet_10baset();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let t = net.sample_time_us(1000, &mut rng);
            let mean = net.mean_time_us(1000);
            assert!(t >= mean * (1.0 - net.jitter) - 1e-9);
            assert!(t <= mean * (1.0 + net.jitter) + 1e-9);
        }
        // Same seed → same sequence.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(
            net.sample_time_us(500, &mut a).to_bits(),
            net.sample_time_us(500, &mut b).to_bits()
        );
    }

    #[test]
    fn zero_jitter_is_exact() {
        let net = NetworkModel::localhost();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            net.sample_time_us(100, &mut rng).to_bits(),
            net.mean_time_us(100).to_bits()
        );
    }

    #[test]
    fn mtu_fragmentation_costs_more_for_bulk() {
        let pipe = NetworkModel::ethernet_10baset();
        let framed = NetworkModel::ethernet_10baset().with_mtu(1_500);
        // Small messages (one packet) cost the same.
        assert!((framed.mean_time_us(500) - pipe.mean_time_us(500)).abs() < 1e-9);
        // Bulk transfers pay per-packet overhead and processing.
        assert!(framed.mean_time_us(1_000_000) > pipe.mean_time_us(1_000_000) * 1.05);
        // Still monotone in size.
        assert!(framed.mean_time_us(100_000) < framed.mean_time_us(200_000));
    }

    #[test]
    fn mtu_packet_count_is_exact_at_boundaries() {
        let m = NetworkModel::ethernet_10baset().with_mtu(1_000);
        // 1000 bytes = 1 packet, 1001 = 2 packets: a visible step.
        let one = m.mean_time_us(1_000);
        let two = m.mean_time_us(1_001);
        let step = two - one;
        assert!(
            step > m.latency_us * 0.09,
            "expected a per-packet step, got {step}"
        );
    }

    #[test]
    #[should_panic(expected = "mtu must be positive")]
    fn zero_mtu_panics() {
        NetworkModel::ethernet_10baset().with_mtu(0);
    }

    #[test]
    fn extreme_jitter_never_goes_negative() {
        let mut net = NetworkModel::ethernet_10baset();
        net.jitter = 1.5; // would allow a negative multiplier without the clamp
        let mut rng = StdRng::seed_from_u64(9);
        for bytes in [0, 1, 100, 10_000, 1_000_000] {
            for _ in 0..500 {
                assert!(
                    net.sample_time_us(bytes, &mut rng) >= 0.0,
                    "negative time for {bytes} bytes"
                );
            }
        }
    }

    #[test]
    fn sampled_time_is_non_negative_for_all_presets() {
        let presets = [
            NetworkModel::isdn(),
            NetworkModel::ethernet_10baset(),
            NetworkModel::atm155(),
            NetworkModel::san(),
            NetworkModel::localhost(),
        ];
        let mut rng = StdRng::seed_from_u64(13);
        for net in &presets {
            for bytes in [0, 64, 4_096, 1_000_000] {
                for _ in 0..200 {
                    assert!(
                        net.sample_time_us(bytes, &mut rng) >= 0.0,
                        "{} produced negative time",
                        net.name
                    );
                }
            }
        }
    }

    #[test]
    fn round_trip_is_sum_of_directions() {
        let net = NetworkModel::ethernet_10baset();
        let rt = net.mean_round_trip_us(100, 200);
        assert!((rt - net.mean_time_us(100) - net.mean_time_us(200)).abs() < 1e-9);
    }
}
