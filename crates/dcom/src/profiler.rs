//! The network profiler.
//!
//! Coign's network profiler "creates a network profile through statistical
//! sampling of communication time for a representative set of DCOM
//! messages". The resulting profile converts the *abstract* ICC graph
//! (messages and bytes) into a *concrete* graph of communication time for a
//! particular network.
//!
//! We sample the simulated network at a ladder of representative message
//! sizes and fit an ordinary-least-squares line `time = α + β·bytes`. The
//! underlying model is linear-plus-jitter, so the fit is accurate but not
//! exact — precisely the situation that gives the paper's prediction model
//! its small (≤8 %) errors in Table 5.

use crate::network::NetworkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Representative message sizes sampled by the profiler, in bytes.
pub const SAMPLE_SIZES: [u64; 10] = [
    64, 128, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// A fitted network cost profile: `predict(bytes) = α + β·bytes` (one-way).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Network the profile was measured on.
    pub network_name: String,
    /// Fixed per-message cost, microseconds.
    pub alpha_us: f64,
    /// Marginal cost per byte, microseconds.
    pub beta_us_per_byte: f64,
    /// Number of samples taken.
    pub samples: usize,
}

impl NetworkProfile {
    /// Measures a network by statistical sampling and fits the cost model.
    ///
    /// `samples_per_size` round trips are timed at each of the
    /// [`SAMPLE_SIZES`]; the seed makes the measurement reproducible.
    pub fn measure(network: &NetworkModel, samples_per_size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(SAMPLE_SIZES.len() * samples_per_size);
        for &size in &SAMPLE_SIZES {
            for _ in 0..samples_per_size {
                let t = network.sample_time_us(size, &mut rng);
                points.push((size as f64, t));
            }
        }
        let (alpha, beta) = weighted_least_squares(&points);
        NetworkProfile {
            network_name: network.name.clone(),
            alpha_us: alpha,
            beta_us_per_byte: beta,
            samples: points.len(),
        }
    }

    /// Builds an exact profile directly from a model (no sampling error);
    /// useful for tests that need a jitter-free baseline.
    pub fn exact(network: &NetworkModel) -> Self {
        NetworkProfile {
            network_name: network.name.clone(),
            alpha_us: network.latency_us
                + network.overhead_bytes as f64 / network.bandwidth_bytes_per_sec * 1e6,
            beta_us_per_byte: 1e6 / network.bandwidth_bytes_per_sec,
            samples: 0,
        }
    }

    /// Predicted one-way time for a message of `bytes`, in microseconds.
    pub fn predict_us(&self, bytes: u64) -> f64 {
        (self.alpha_us + self.beta_us_per_byte * bytes as f64).max(0.0)
    }

    /// Predicted cost of `messages` messages carrying `total_bytes` in
    /// aggregate — the edge-weight formula used to build the concrete ICC
    /// graph.
    pub fn predict_traffic_us(&self, messages: u64, total_bytes: u64) -> f64 {
        self.alpha_us * messages as f64 + self.beta_us_per_byte * total_bytes as f64
    }
}

/// Weighted least squares minimizing *relative* error: because network
/// jitter is multiplicative, a 5 % error on a 4 MB transfer would otherwise
/// swamp the latency term entirely. Minimizes `Σ ((y − α − β·x) / y)²`.
fn weighted_least_squares(points: &[(f64, f64)]) -> (f64, f64) {
    // With u = 1/y the residual is (α·u + β·x·u − 1); solve the 2×2 normal
    // equations for the design columns a = u, b = x·u against target 1.
    let mut saa = 0.0;
    let mut sab = 0.0;
    let mut sbb = 0.0;
    let mut sa = 0.0;
    let mut sb = 0.0;
    for (x, y) in points {
        if *y <= 0.0 {
            continue;
        }
        let a = 1.0 / y;
        let b = x / y;
        saa += a * a;
        sab += a * b;
        sbb += b * b;
        sa += a;
        sb += b;
    }
    let det = saa * sbb - sab * sab;
    if det.abs() < 1e-18 {
        return least_squares(points);
    }
    let alpha = (sa * sbb - sb * sab) / det;
    let beta = (saa * sb - sab * sa) / det;
    (alpha, beta)
}

/// Ordinary least squares for `y = α + β·x` over `(x, y)` points.
fn least_squares(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let sum_x: f64 = points.iter().map(|p| p.0).sum();
    let sum_y: f64 = points.iter().map(|p| p.1).sum();
    let mean_x = sum_x / n;
    let mean_y = sum_y / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in points {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx == 0.0 {
        return (mean_y, 0.0);
    }
    let beta = sxy / sxx;
    let alpha = mean_y - beta * mean_x;
    (alpha, beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = least_squares(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_degenerate_cases() {
        assert_eq!(least_squares(&[]), (0.0, 0.0));
        let (a, b) = least_squares(&[(5.0, 7.0), (5.0, 9.0)]);
        assert_eq!(b, 0.0);
        assert!((a - 8.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..200)
            .map(|i| (i as f64 * 100.0, 3.0 + 2.0 * i as f64 * 100.0))
            .collect();
        let (a, b) = weighted_least_squares(&pts);
        assert!((a - 3.0).abs() < 1e-6, "alpha {a}");
        assert!((b - 2.0).abs() < 1e-9, "beta {b}");
    }

    #[test]
    fn weighted_fit_falls_back_on_degenerate_input() {
        let (a, b) = weighted_least_squares(&[]);
        assert_eq!((a, b), (0.0, 0.0));
    }

    #[test]
    fn measured_profile_approximates_model() {
        let net = NetworkModel::ethernet_10baset();
        let profile = NetworkProfile::measure(&net, 50, 1234);
        let exact = NetworkProfile::exact(&net);
        for bytes in [100u64, 10_000, 1_000_000] {
            let rel = (profile.predict_us(bytes) - exact.predict_us(bytes)).abs()
                / exact.predict_us(bytes);
            assert!(rel < 0.05, "relative error {rel} at {bytes} bytes");
        }
    }

    #[test]
    fn measurement_is_seeded() {
        let net = NetworkModel::ethernet_10baset();
        let a = NetworkProfile::measure(&net, 10, 99);
        let b = NetworkProfile::measure(&net, 10, 99);
        assert_eq!(a, b);
        let c = NetworkProfile::measure(&net, 10, 100);
        assert_ne!(a.alpha_us.to_bits(), c.alpha_us.to_bits());
    }

    #[test]
    fn measurement_differs_slightly_from_truth() {
        // This non-zero discrepancy is what produces Table 5's small errors.
        let net = NetworkModel::ethernet_10baset();
        let measured = NetworkProfile::measure(&net, 20, 7);
        let exact = NetworkProfile::exact(&net);
        assert_ne!(measured.alpha_us.to_bits(), exact.alpha_us.to_bits());
    }

    #[test]
    fn linear_fit_degrades_gracefully_on_packetized_links() {
        // The α+β model is exact for pure-pipe links; an MTU-fragmented
        // link is piecewise, so the fit carries a modest bias — still
        // within a usable band (the source of larger real-world errors).
        let framed = NetworkModel::ethernet_10baset().with_mtu(1_500);
        let fit = NetworkProfile::measure(&framed, 50, 3);
        for bytes in [256u64, 8_192, 262_144] {
            let truth = framed.mean_time_us(bytes);
            let rel = (fit.predict_us(bytes) - truth).abs() / truth;
            assert!(rel < 0.25, "relative error {rel} at {bytes} bytes");
        }
    }

    #[test]
    fn traffic_prediction_scales_with_messages_and_bytes() {
        let profile = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let one = profile.predict_traffic_us(1, 1000);
        let ten = profile.predict_traffic_us(10, 10_000);
        assert!((ten - 10.0 * one).abs() < 1e-6);
    }

    #[test]
    fn slow_networks_predict_higher_costs() {
        let isdn = NetworkProfile::exact(&NetworkModel::isdn());
        let san = NetworkProfile::exact(&NetworkModel::san());
        assert!(isdn.predict_us(4096) > 100.0 * san.predict_us(4096));
    }
}
