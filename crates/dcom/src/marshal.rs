//! Deep-copy marshaling sizes.
//!
//! DCOM transports arguments between machines by *deep copy*: every string,
//! array, and structure reachable from a parameter is serialized into the
//! request or reply packet. Coign's profiling informer measures exactly this
//! quantity — the number of bytes that would cross the wire if the two
//! communicating components were on different machines.
//!
//! The size rules below follow NDR (Network Data Representation)
//! conventions approximately: fixed scalars, length-prefixed conformant
//! strings and arrays, and a fixed-size `OBJREF` for marshaled interface
//! pointers. Exact byte-parity with MS-NDR is *not* required for the
//! reproduction — only that sizes are deterministic, monotone in payload
//! size, and identical between the profiling measurement and the distributed
//! execution (which they are, because both call this module).

use coign_com::idl::MethodDesc;
use coign_com::{ComError, ComResult, Iid, Message, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes of an `OBJREF` — the wire form of a marshaled interface pointer.
pub const OBJREF_SIZE: u64 = 68;

/// Fixed per-message DCOM/RPC header (`ORPCTHIS` / `ORPCTHAT` plus DCE
/// common header).
pub const MESSAGE_HEADER: u64 = 56;

/// Wire size of one value under deep-copy semantics.
///
/// Returns an error naming the offending component if the value contains a
/// non-remotable (opaque) pointer.
pub fn value_size(value: &Value) -> Result<u64, String> {
    match value {
        Value::I4(_) | Value::Bool(_) => Ok(4),
        Value::I8(_) | Value::F8(_) => Ok(8),
        // Conformant BSTR: 8-byte header + UTF-16 payload.
        Value::Str(s) => Ok(8 + 2 * s.chars().count() as u64),
        // Conformant byte array: 8-byte header + payload.
        Value::Blob(n) => Ok(8 + n),
        Value::Array(items) => {
            let mut total = 12; // conformance + offset + count
            for item in items {
                total += value_size(item)?;
            }
            Ok(total)
        }
        Value::Struct(fields) => {
            let mut total = 8; // alignment/embedding overhead
            for field in fields {
                total += value_size(field)?;
            }
            Ok(total)
        }
        Value::Interface(Some(_)) => Ok(OBJREF_SIZE),
        Value::Interface(None) | Value::Null => Ok(4), // NULL pointer marker
        Value::Opaque(tok) => Err(format!("opaque pointer 0x{tok:x} cannot be marshaled")),
    }
}

fn directional_size(method: &MethodDesc, msg: &Message, want_request: bool) -> ComResult<u64> {
    let mut total = MESSAGE_HEADER;
    for (idx, param) in method.params.iter().enumerate() {
        let travels = if want_request {
            param.dir.in_request()
        } else {
            param.dir.in_reply()
        };
        if !travels {
            continue;
        }
        let value = msg.arg(idx).unwrap_or(&Value::Null);
        total += value_size(value).map_err(|detail| ComError::NotRemotable {
            iid: coign_com::Iid(coign_com::Guid::NULL),
            detail: format!("{} param `{}`: {detail}", method.name, param.name),
        })?;
    }
    Ok(total)
}

/// Wire size of the request message (`[in]` and `[in, out]` parameters).
pub fn message_request_size(method: &MethodDesc, msg: &Message) -> ComResult<u64> {
    directional_size(method, msg, true)
}

/// Wire size of the reply message (`[out]` and `[in, out]` parameters).
pub fn message_reply_size(method: &MethodDesc, msg: &Message) -> ComResult<u64> {
    directional_size(method, msg, false)
}

// --- Marshal-size memoization ------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Folds the structural *shape* of a value into the hash: type tags plus
/// the only quantities [`value_size`] depends on (string char counts, blob
/// lengths, container arities). Returns `false` on an opaque pointer —
/// sizing it errors, so such trees are never cached.
fn shape_hash(h: &mut u64, value: &Value) -> bool {
    match value {
        Value::I4(_) => mix(h, 1),
        Value::I8(_) => mix(h, 2),
        Value::F8(_) => mix(h, 3),
        Value::Bool(_) => mix(h, 4),
        Value::Str(s) => {
            mix(h, 5);
            mix(h, s.chars().count() as u64);
        }
        Value::Blob(n) => {
            mix(h, 6);
            mix(h, *n);
        }
        Value::Array(items) => {
            mix(h, 7);
            mix(h, items.len() as u64);
            return items.iter().all(|item| shape_hash(h, item));
        }
        Value::Struct(fields) => {
            mix(h, 8);
            mix(h, fields.len() as u64);
            return fields.iter().all(|field| shape_hash(h, field));
        }
        Value::Interface(Some(_)) => mix(h, 9),
        Value::Interface(None) => mix(h, 10),
        Value::Null => mix(h, 11),
        Value::Opaque(_) => return false,
    }
    true
}

/// FNV-1a fingerprint of the shapes of every argument traveling in the
/// given direction, or `None` if the tree contains an opaque pointer.
fn directional_fingerprint(method: &MethodDesc, msg: &Message, want_request: bool) -> Option<u64> {
    let mut h = FNV_OFFSET;
    for (idx, param) in method.params.iter().enumerate() {
        let travels = if want_request {
            param.dir.in_request()
        } else {
            param.dir.in_reply()
        };
        if !travels {
            continue;
        }
        mix(&mut h, idx as u64);
        if !shape_hash(&mut h, msg.arg(idx).unwrap_or(&Value::Null)) {
            return None;
        }
    }
    Some(h)
}

/// Memoizes deep-copy message sizes by `(iid, method, direction,
/// value-shape fingerprint)`.
///
/// [`value_size`] is a pure function of a value's shape — the type tags,
/// string/blob lengths, and container arities hashed by the fingerprint —
/// so two structurally identical argument trees always marshal to the same
/// number of bytes and the recursive walk can be skipped on a repeat.
/// Request and reply shapes are fingerprinted independently (a stateful
/// component may answer identical requests with different replies, so the
/// reply is hashed *after* the call under its own direction key).
///
/// Trees containing opaque pointers never enter the cache: sizing them is
/// the non-remotable error path and must re-fire every time.
#[derive(Debug, Default)]
pub struct SizeCache {
    map: Mutex<HashMap<(Iid, u32, bool, u64), u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SizeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SizeCache::default()
    }

    /// Calls served from the cache (the deep-copy walk was skipped).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Calls that had to perform the full deep-copy walk.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Absorbs the hit/miss counters into a metrics registry.
    pub fn record_metrics(&self, registry: &coign_obs::Registry) {
        registry
            .counter("coign_marshal_cache_hits_total")
            .add(self.hits());
        registry
            .counter("coign_marshal_cache_misses_total")
            .add(self.misses());
    }

    /// Request size through the cache; the flag reports a cache hit.
    pub fn request_size(
        &self,
        iid: Iid,
        method_index: u32,
        method: &MethodDesc,
        msg: &Message,
    ) -> (ComResult<u64>, bool) {
        self.sized(iid, method_index, method, msg, true)
    }

    /// Reply size through the cache; the flag reports a cache hit.
    pub fn reply_size(
        &self,
        iid: Iid,
        method_index: u32,
        method: &MethodDesc,
        msg: &Message,
    ) -> (ComResult<u64>, bool) {
        self.sized(iid, method_index, method, msg, false)
    }

    fn sized(
        &self,
        iid: Iid,
        method_index: u32,
        method: &MethodDesc,
        msg: &Message,
        want_request: bool,
    ) -> (ComResult<u64>, bool) {
        let Some(shape) = directional_fingerprint(method, msg, want_request) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (directional_size(method, msg, want_request), false);
        };
        let key = (iid, method_index, want_request, shape);
        if let Some(&size) = self.map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Ok(size), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = directional_size(method, msg, want_request);
        if let Ok(size) = result {
            self.map.lock().insert(key, size);
        }
        (result, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::idl::{InterfaceBuilder, ParamDesc, ParamDir};
    use coign_com::PType;

    #[test]
    fn scalar_sizes() {
        assert_eq!(value_size(&Value::I4(1)).unwrap(), 4);
        assert_eq!(value_size(&Value::I8(1)).unwrap(), 8);
        assert_eq!(value_size(&Value::F8(1.0)).unwrap(), 8);
        assert_eq!(value_size(&Value::Bool(true)).unwrap(), 4);
        assert_eq!(value_size(&Value::Null).unwrap(), 4);
    }

    #[test]
    fn string_size_is_utf16() {
        assert_eq!(value_size(&Value::Str("abc".into())).unwrap(), 8 + 6);
        assert_eq!(value_size(&Value::Str("".into())).unwrap(), 8);
    }

    #[test]
    fn blob_size_tracks_payload() {
        assert_eq!(value_size(&Value::Blob(1_000_000)).unwrap(), 8 + 1_000_000);
    }

    #[test]
    fn deep_copy_recurses() {
        let v = Value::Struct(vec![
            Value::I4(1),
            Value::Array(vec![Value::Blob(100), Value::Blob(200)]),
        ]);
        // struct(8) + i4(4) + array(12) + blob(108) + blob(208)
        assert_eq!(value_size(&v).unwrap(), 8 + 4 + 12 + 108 + 208);
    }

    #[test]
    fn interface_pointers_marshal_as_objref() {
        assert_eq!(value_size(&Value::Interface(None)).unwrap(), 4);
        // A present interface pointer needs a live runtime to build (the
        // OBJREF path is exercised by the integration tests); a null
        // pointer inside a struct still marshals as a 4-byte marker.
        let nested = Value::Struct(vec![Value::Interface(None)]);
        assert_eq!(value_size(&nested).unwrap(), 8 + 4);
    }

    #[test]
    fn opaque_pointers_are_not_remotable() {
        let err = value_size(&Value::Opaque(0xdead)).unwrap_err();
        assert!(err.contains("cannot be marshaled"));
        // Even nested inside a struct.
        let nested = Value::Struct(vec![Value::I4(1), Value::Opaque(1)]);
        assert!(value_size(&nested).is_err());
    }

    fn rw_method() -> MethodDesc {
        MethodDesc::new(
            "ReadWrite",
            vec![
                ParamDesc::new("key", ParamDir::In, PType::Str),
                ParamDesc::new("buf", ParamDir::InOut, PType::Blob),
                ParamDesc::new("status", ParamDir::Out, PType::I4),
            ],
        )
    }

    #[test]
    fn request_counts_in_and_inout() {
        let m = rw_method();
        let msg = Message::new(vec![Value::Str("ab".into()), Value::Blob(100), Value::Null]);
        let req = message_request_size(&m, &msg).unwrap();
        // header + str(8+4) + blob(108); the out param does not travel.
        assert_eq!(req, MESSAGE_HEADER + 12 + 108);
    }

    #[test]
    fn reply_counts_out_and_inout() {
        let m = rw_method();
        let msg = Message::new(vec![
            Value::Str("ab".into()),
            Value::Blob(100),
            Value::I4(0),
        ]);
        let reply = message_reply_size(&m, &msg).unwrap();
        // header + blob(108) + i4(4); the in param does not travel back.
        assert_eq!(reply, MESSAGE_HEADER + 108 + 4);
    }

    #[test]
    fn missing_args_count_as_null() {
        let m = rw_method();
        let msg = Message::empty();
        let req = message_request_size(&m, &msg).unwrap();
        assert_eq!(req, MESSAGE_HEADER + 4 + 4); // two null markers
    }

    #[test]
    fn size_cache_hits_on_identical_shapes_only() {
        let m = rw_method();
        let iid = Iid(coign_com::Guid::NULL);
        let cache = SizeCache::new();

        let msg = Message::new(vec![Value::Str("ab".into()), Value::Blob(100), Value::Null]);
        let (size, hit) = cache.request_size(iid, 0, &m, &msg);
        assert_eq!(size.unwrap(), MESSAGE_HEADER + 12 + 108);
        assert!(!hit);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        // Same shape, different content: a hit with the same size.
        let same_shape = Message::new(vec![Value::Str("xy".into()), Value::Blob(100), Value::Null]);
        let (size, hit) = cache.request_size(iid, 0, &m, &same_shape);
        assert_eq!(size.unwrap(), MESSAGE_HEADER + 12 + 108);
        assert!(hit);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // A different blob length is a different shape: a miss.
        let grown = Message::new(vec![Value::Str("ab".into()), Value::Blob(101), Value::Null]);
        let (size, hit) = cache.request_size(iid, 0, &m, &grown);
        assert_eq!(size.unwrap(), MESSAGE_HEADER + 12 + 109);
        assert!(!hit);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn size_cache_keys_directions_independently() {
        let m = rw_method();
        let iid = Iid(coign_com::Guid::NULL);
        let cache = SizeCache::new();
        let msg = Message::new(vec![
            Value::Str("ab".into()),
            Value::Blob(100),
            Value::I4(0),
        ]);
        // Request then reply of the same message: different directions,
        // both misses, correct (different) sizes.
        let (req, hit_req) = cache.request_size(iid, 0, &m, &msg);
        let (reply, hit_reply) = cache.reply_size(iid, 0, &m, &msg);
        assert!(!hit_req && !hit_reply);
        assert_eq!(req.unwrap(), MESSAGE_HEADER + 12 + 108);
        assert_eq!(reply.unwrap(), MESSAGE_HEADER + 108 + 4);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn size_cache_never_caches_opaque_trees() {
        let iface = InterfaceBuilder::new("ISharedCache")
            .method("Map", |m| m.input("handle", PType::Opaque))
            .build();
        let m = &iface.methods[0];
        let cache = SizeCache::new();
        let msg = Message::new(vec![Value::Opaque(7)]);
        for expected_misses in 1..=3 {
            let (size, hit) = cache.request_size(iface.iid, 0, m, &msg);
            assert!(size.is_err());
            assert!(!hit);
            assert_eq!((cache.hits(), cache.misses()), (0, expected_misses));
        }
    }

    #[test]
    fn opaque_param_fails_whole_message() {
        let iface = InterfaceBuilder::new("IShared")
            .method("Map", |m| m.input("handle", PType::Opaque))
            .build();
        let m = &iface.methods[0];
        let msg = Message::new(vec![Value::Opaque(7)]);
        assert!(matches!(
            message_request_size(m, &msg),
            Err(ComError::NotRemotable { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_remotable_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            any::<i32>().prop_map(Value::I4),
            any::<i64>().prop_map(Value::I8),
            any::<bool>().prop_map(Value::Bool),
            "[a-z]{0,16}".prop_map(Value::Str),
            (0u64..10_000).prop_map(Value::Blob),
            Just(Value::Null),
        ];
        leaf.prop_recursive(3, 32, 8, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
                proptest::collection::vec(inner, 0..6).prop_map(Value::Struct),
            ]
        })
    }

    proptest! {
        #[test]
        fn size_is_deterministic_and_positive(v in arb_remotable_value()) {
            let a = value_size(&v).unwrap();
            let b = value_size(&v).unwrap();
            prop_assert_eq!(a, b);
            prop_assert!(a >= 4);
        }

        #[test]
        fn bigger_blob_never_shrinks_message(n in 0u64..100_000, extra in 1u64..100_000) {
            let small = value_size(&Value::Blob(n)).unwrap();
            let large = value_size(&Value::Blob(n + extra)).unwrap();
            prop_assert!(large > small);
        }

        #[test]
        fn array_size_is_sum_of_elements_plus_header(
            items in proptest::collection::vec((0u64..1000).prop_map(Value::Blob), 0..10)
        ) {
            let parts: u64 = items.iter().map(|v| value_size(v).unwrap()).sum();
            let whole = value_size(&Value::Array(items)).unwrap();
            prop_assert_eq!(whole, parts + 12);
        }
    }

    use coign_com::idl::{MethodDesc, ParamDesc, ParamDir};
    use coign_com::PType;

    fn arb_dir() -> impl Strategy<Value = ParamDir> {
        prop_oneof![
            Just(ParamDir::In),
            Just(ParamDir::Out),
            Just(ParamDir::InOut),
        ]
    }

    /// A method signature together with a matching argument list, every
    /// parameter populated with an arbitrary remotable value tree.
    fn arb_call() -> impl Strategy<Value = (MethodDesc, Message)> {
        proptest::collection::vec((arb_dir(), arb_remotable_value()), 1..6).prop_map(|params| {
            let descs = params
                .iter()
                .enumerate()
                .map(|(i, (dir, _))| ParamDesc::new(&format!("p{i}"), *dir, PType::Blob))
                .collect();
            let args = params.into_iter().map(|(_, v)| v).collect();
            (MethodDesc::new("Probe", descs), Message::new(args))
        })
    }

    proptest! {
        #[test]
        fn message_sizes_are_deterministic_for_a_value_tree((m, msg) in arb_call()) {
            prop_assert_eq!(
                message_request_size(&m, &msg).unwrap(),
                message_request_size(&m, &msg).unwrap()
            );
            prop_assert_eq!(
                message_reply_size(&m, &msg).unwrap(),
                message_reply_size(&m, &msg).unwrap()
            );
        }

        #[test]
        fn cached_sizes_equal_uncached_sizes((m, msg) in arb_call()) {
            // The cache is an invisible optimization: for any call, sizes
            // through the cache (cold, then warm) match the direct walk.
            let iid = Iid(coign_com::Guid::NULL);
            let cache = SizeCache::new();
            for _ in 0..2 {
                let (req, _) = cache.request_size(iid, 0, &m, &msg);
                let (reply, _) = cache.reply_size(iid, 0, &m, &msg);
                prop_assert_eq!(req.unwrap(), message_request_size(&m, &msg).unwrap());
                prop_assert_eq!(reply.unwrap(), message_reply_size(&m, &msg).unwrap());
            }
            prop_assert!(cache.hits() >= 2);
        }

        #[test]
        fn message_sizes_never_zero_for_nonempty_param_lists((m, msg) in arb_call()) {
            // Even a direction no parameter travels in still carries the
            // RPC header, so sizes are never zero.
            prop_assert!(message_request_size(&m, &msg).unwrap() >= MESSAGE_HEADER);
            prop_assert!(message_reply_size(&m, &msg).unwrap() >= MESSAGE_HEADER);
        }

        #[test]
        fn message_sizes_are_monotone_in_payload(n in 0u64..50_000, extra in 1u64..50_000) {
            let m = MethodDesc::new(
                "Grow",
                vec![ParamDesc::new("buf", ParamDir::InOut, PType::Blob)],
            );
            let small = Message::new(vec![Value::Blob(n)]);
            let large = Message::new(vec![Value::Blob(n + extra)]);
            prop_assert!(
                message_request_size(&m, &large).unwrap()
                    > message_request_size(&m, &small).unwrap()
            );
            prop_assert!(
                message_reply_size(&m, &large).unwrap()
                    > message_reply_size(&m, &small).unwrap()
            );
        }

        #[test]
        fn growing_one_argument_never_shrinks_the_message(
            (m, msg) in arb_call(),
            grow in 1u64..10_000,
        ) {
            // Replace the first request-traveling argument with a larger
            // blob and check the request size does not decrease.
            if let Some(idx) = m.params.iter().position(|p| p.dir.in_request()) {
                let before = message_request_size(&m, &msg).unwrap();
                let base = value_size(msg.arg(idx).unwrap_or(&Value::Null)).unwrap();
                let mut args: Vec<Value> = (0..m.params.len())
                    .map(|i| msg.arg(i).unwrap_or(&Value::Null).clone())
                    .collect();
                args[idx] = Value::Blob(base + grow);
                let after = message_request_size(&m, &Message::new(args)).unwrap();
                prop_assert!(after > before);
            }
        }
    }
}
