//! Per-link health tracking and circuit breakers.
//!
//! The fault layer ([`crate::faults`]) makes the wire misbehave; this
//! module makes the runtime *notice*. Every remote-call outcome feeds a
//! per-link state machine with the classic three breaker states:
//!
//! * **Closed** — the link is healthy; calls flow normally. Consecutive
//!   failures are counted, and reaching the threshold trips the breaker.
//! * **Open** — the link is presumed dead; calls fail fast with the error
//!   that tripped the breaker, charging nothing to the simulated clock.
//!   After a deterministic probe interval on the simulated clock, the next
//!   call is allowed through as a probe.
//! * **HalfOpen** — probing; calls flow, and a run of consecutive
//!   successes closes the breaker while any failure re-opens it (and
//!   re-arms the probe timer).
//!
//! Machine death gets a second, coarser breaker: `MachineDown` outcomes
//! accumulate per target machine, and when a machine's breaker opens it is
//! queued for the recovery layer to drain — the signal that triggers an
//! online re-partitioning away from the dead machine.
//!
//! Everything is scheduled against the *simulated* clock and fed only from
//! the transport's fault paths, so a run with an empty fault plan never
//! touches the monitor: the health layer is provably inert when nothing
//! fails.

use coign_com::{ComError, MachineId};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Thresholds and timers governing every breaker of a [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip a closed (or half-open) breaker.
    pub failure_threshold: u32,
    /// Consecutive successes that close a half-open breaker.
    pub success_threshold: u32,
    /// Simulated microseconds an open breaker waits before letting one
    /// probe call through.
    pub probe_interval_us: u64,
}

impl Default for BreakerPolicy {
    /// Trip after 3 consecutive failures, probe every 20 ms of simulated
    /// time, close again after 2 consecutive probe successes.
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            success_threshold: 2,
            probe_interval_us: 20_000,
        }
    }
}

/// The three circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, failures are counted.
    Closed,
    /// Tripped: calls fail fast until the probe timer expires.
    Open,
    /// Probing: calls flow; successes close, failures re-open.
    HalfOpen,
}

/// What kind of failure tripped a breaker — replayed on fast-fails so the
/// caller still sees a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailureKind {
    MachineDown(MachineId),
    Partitioned,
    Timeout,
}

impl FailureKind {
    fn classify(error: &ComError) -> FailureKind {
        match error {
            ComError::MachineDown(m) => FailureKind::MachineDown(*m),
            ComError::Partitioned { .. } => FailureKind::Partitioned,
            _ => FailureKind::Timeout,
        }
    }

    fn to_error(self, from: MachineId, to: MachineId) -> ComError {
        match self {
            FailureKind::MachineDown(m) => ComError::MachineDown(m),
            FailureKind::Partitioned => ComError::Partitioned { from, to },
            FailureKind::Timeout => ComError::Timeout {
                detail: format!("{from}→{to} breaker open"),
            },
        }
    }
}

/// A state transition one outcome caused, for observability hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed/HalfOpen → Open.
    Opened,
    /// Open → HalfOpen (the probe timer expired).
    HalfOpened,
    /// HalfOpen → Closed.
    Closed,
}

impl BreakerTransition {
    /// Stable event name for tracer instants and recorder entries.
    pub fn event_name(self) -> &'static str {
        match self {
            BreakerTransition::Opened => "breaker_open",
            BreakerTransition::HalfOpened => "breaker_half_open",
            BreakerTransition::Closed => "breaker_close",
        }
    }
}

/// The gate decision for a call about to cross a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BreakerDecision {
    /// The breaker is closed (or half-open): let the call through.
    Allow,
    /// The breaker was open and the probe timer expired: the call
    /// proceeds as a probe (the breaker just moved to half-open).
    Probe,
    /// The breaker is open and no probe is due: fail fast with the error
    /// that tripped it, charging nothing.
    FastFail(ComError),
}

#[derive(Debug, Clone, Copy)]
struct LinkHealth {
    state: BreakerState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    next_probe_us: u64,
    tripped_by: FailureKind,
}

impl LinkHealth {
    fn new() -> Self {
        LinkHealth {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            consecutive_successes: 0,
            next_probe_us: 0,
            tripped_by: FailureKind::Timeout,
        }
    }
}

/// Counters the monitor accumulates, surfaced as `coign_health_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Breakers tripped (Closed/HalfOpen → Open).
    pub opens: u64,
    /// Probe windows entered (Open → HalfOpen).
    pub probes: u64,
    /// Breakers closed again (HalfOpen → Closed).
    pub closes: u64,
    /// Calls rejected without touching the wire.
    pub fast_fails: u64,
    /// Machine-level breakers opened (machines declared dead).
    pub machines_opened: u64,
}

#[derive(Default)]
struct HealthInner {
    links: BTreeMap<(u16, u16), LinkHealth>,
    /// Consecutive `MachineDown` outcomes per target machine.
    machine_failures: BTreeMap<u16, u32>,
    /// Machines whose breaker is open (declared dead).
    dead_machines: BTreeMap<u16, ()>,
    /// Dead machines not yet drained by the recovery layer.
    opened_queue: Vec<MachineId>,
    stats: HealthStats,
}

/// Health state for every link and machine of one run.
///
/// Shared behind an `Arc` between the transport (which feeds outcomes and
/// consults the gate) and the recovery layer (which drains dead machines).
/// All mutation happens under one lock; scheduling uses only the simulated
/// timestamps the transport passes in, so identical call sequences yield
/// identical breaker histories.
pub struct HealthMonitor {
    policy: BreakerPolicy,
    inner: Mutex<HealthInner>,
}

impl HealthMonitor {
    /// Creates a monitor with the given breaker policy; every link starts
    /// closed and every machine alive.
    pub fn new(policy: BreakerPolicy) -> Self {
        HealthMonitor {
            policy,
            inner: Mutex::new(HealthInner::default()),
        }
    }

    /// The policy the monitor was built with.
    pub fn policy(&self) -> &BreakerPolicy {
        &self.policy
    }

    fn key(from: MachineId, to: MachineId) -> (u16, u16) {
        if from.0 <= to.0 {
            (from.0, to.0)
        } else {
            (to.0, from.0)
        }
    }

    /// Gate for a call about to cross `from`↔`to` at simulated time
    /// `now_us`: allow, admit as probe, or fail fast.
    pub fn check(&self, from: MachineId, to: MachineId, now_us: u64) -> BreakerDecision {
        let mut inner = self.inner.lock();
        let link = inner
            .links
            .entry(Self::key(from, to))
            .or_insert_with(LinkHealth::new);
        match link.state {
            BreakerState::Closed | BreakerState::HalfOpen => BreakerDecision::Allow,
            BreakerState::Open => {
                if now_us >= link.next_probe_us {
                    link.state = BreakerState::HalfOpen;
                    link.consecutive_successes = 0;
                    inner.stats.probes += 1;
                    BreakerDecision::Probe
                } else {
                    let error = link.tripped_by.to_error(from, to);
                    inner.stats.fast_fails += 1;
                    BreakerDecision::FastFail(error)
                }
            }
        }
    }

    /// Records a successful call on `from`↔`to`. Returns the transition
    /// this success caused, if any (half-open breakers close after the
    /// policy's success threshold).
    pub fn on_success(&self, from: MachineId, to: MachineId) -> Option<BreakerTransition> {
        let mut inner = self.inner.lock();
        let link = inner
            .links
            .entry(Self::key(from, to))
            .or_insert_with(LinkHealth::new);
        link.consecutive_failures = 0;
        if link.state == BreakerState::HalfOpen {
            link.consecutive_successes += 1;
            if link.consecutive_successes >= self.policy.success_threshold {
                link.state = BreakerState::Closed;
                link.consecutive_successes = 0;
                inner.stats.closes += 1;
                return Some(BreakerTransition::Closed);
            }
        }
        None
    }

    /// Records a failed call on `from`↔`to` at simulated time `now_us`.
    ///
    /// Returns the link transition this failure caused (if any) plus the
    /// machine that was newly declared dead. A machine is declared dead
    /// when `MachineDown` outcomes push its machine breaker over the
    /// threshold, or when a link breaker trips *on* a `MachineDown`
    /// failure — mixed failure kinds (a partition riding alongside the
    /// death) must not let the open link breaker starve the machine
    /// counter of the outcomes it needs, since fast-fails never reach
    /// here.
    pub fn on_failure(
        &self,
        from: MachineId,
        to: MachineId,
        error: &ComError,
        now_us: u64,
    ) -> (Option<BreakerTransition>, Option<MachineId>) {
        let kind = FailureKind::classify(error);
        let mut inner = self.inner.lock();
        let threshold = self.policy.failure_threshold;
        let link = inner
            .links
            .entry(Self::key(from, to))
            .or_insert_with(LinkHealth::new);
        link.consecutive_successes = 0;
        link.consecutive_failures += 1;
        let trip = match link.state {
            // A half-open probe failure re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => link.consecutive_failures >= threshold,
            BreakerState::Open => false,
        };
        let link_transition = if trip {
            link.state = BreakerState::Open;
            link.tripped_by = kind;
            link.next_probe_us = now_us + self.policy.probe_interval_us;
            inner.stats.opens += 1;
            Some(BreakerTransition::Opened)
        } else {
            None
        };
        let mut machine_opened = None;
        if let FailureKind::MachineDown(machine) = kind {
            let count = inner.machine_failures.entry(machine.0).or_insert(0);
            *count += 1;
            if (*count >= threshold || trip) && !inner.dead_machines.contains_key(&machine.0) {
                inner.dead_machines.insert(machine.0, ());
                inner.opened_queue.push(machine);
                inner.stats.machines_opened += 1;
                machine_opened = Some(machine);
            }
        }
        (link_transition, machine_opened)
    }

    /// Current breaker state of the `from`↔`to` link (closed if the link
    /// has never reported an outcome).
    pub fn link_state(&self, from: MachineId, to: MachineId) -> BreakerState {
        self.inner
            .lock()
            .links
            .get(&Self::key(from, to))
            .map(|l| l.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// True when `machine`'s breaker has opened (the machine is presumed
    /// dead).
    pub fn machine_open(&self, machine: MachineId) -> bool {
        self.inner.lock().dead_machines.contains_key(&machine.0)
    }

    /// Machines declared dead since the last drain, in declaration order.
    /// The recovery layer polls this to trigger re-partitioning.
    pub fn drain_opened_machines(&self) -> Vec<MachineId> {
        std::mem::take(&mut self.inner.lock().opened_queue)
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> HealthStats {
        self.inner.lock().stats
    }

    /// True when no outcome has ever been recorded and no gate decision
    /// went beyond `Allow` — the monitor provably never interfered.
    pub fn is_pristine(&self) -> bool {
        let inner = self.inner.lock();
        inner.stats == HealthStats::default()
            && inner
                .links
                .values()
                .all(|l| l.state == BreakerState::Closed && l.consecutive_failures == 0)
    }

    /// Absorbs the counters into a metrics registry under the
    /// `coign_health_*` namespace.
    pub fn record_metrics(&self, registry: &coign_obs::Registry) {
        let stats = self.stats();
        registry
            .counter("coign_health_breaker_opens_total")
            .add(stats.opens);
        registry
            .counter("coign_health_breaker_probes_total")
            .add(stats.probes);
        registry
            .counter("coign_health_breaker_closes_total")
            .add(stats.closes);
        registry
            .counter("coign_health_fast_fails_total")
            .add(stats.fast_fails);
        registry
            .counter("coign_health_machines_opened_total")
            .add(stats.machines_opened);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: MachineId = MachineId::CLIENT;
    const S: MachineId = MachineId::SERVER;

    fn timeout() -> ComError {
        ComError::Timeout {
            detail: "test".into(),
        }
    }

    #[test]
    fn breaker_trips_after_consecutive_failures() {
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        assert_eq!(monitor.link_state(C, S), BreakerState::Closed);
        assert_eq!(monitor.on_failure(C, S, &timeout(), 0), (None, None));
        assert_eq!(monitor.on_failure(C, S, &timeout(), 10), (None, None));
        assert_eq!(
            monitor.on_failure(C, S, &timeout(), 20),
            (Some(BreakerTransition::Opened), None)
        );
        assert_eq!(monitor.link_state(C, S), BreakerState::Open);
        // Link keys are order-insensitive.
        assert_eq!(monitor.link_state(S, C), BreakerState::Open);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        monitor.on_failure(C, S, &timeout(), 0);
        monitor.on_failure(C, S, &timeout(), 10);
        assert_eq!(monitor.on_success(C, S), None);
        monitor.on_failure(C, S, &timeout(), 20);
        monitor.on_failure(C, S, &timeout(), 30);
        assert_eq!(monitor.link_state(C, S), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_fast_fails_until_the_probe_timer() {
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        for at in [0, 10, 20] {
            monitor.on_failure(C, S, &ComError::Partitioned { from: C, to: S }, at);
        }
        // Probe due at 20 + 20_000.
        match monitor.check(C, S, 1_000) {
            BreakerDecision::FastFail(ComError::Partitioned { from, to }) => {
                assert_eq!((from, to), (C, S));
            }
            other => panic!("expected a partitioned fast-fail, got {other:?}"),
        }
        assert_eq!(monitor.check(C, S, 20_020), BreakerDecision::Probe);
        assert_eq!(monitor.link_state(C, S), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_closes_after_success_threshold_or_reopens_on_failure() {
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        for at in [0, 10, 20] {
            monitor.on_failure(C, S, &timeout(), at);
        }
        assert_eq!(monitor.check(C, S, 50_000), BreakerDecision::Probe);
        assert_eq!(monitor.on_success(C, S), None, "one success is not enough");
        assert_eq!(monitor.on_success(C, S), Some(BreakerTransition::Closed));
        assert_eq!(monitor.link_state(C, S), BreakerState::Closed);

        // Trip again; this time the probe fails and the breaker re-opens.
        for at in [60_000, 60_010, 60_020] {
            monitor.on_failure(C, S, &timeout(), at);
        }
        assert_eq!(monitor.check(C, S, 90_000), BreakerDecision::Probe);
        let (transition, _) = monitor.on_failure(C, S, &timeout(), 90_001);
        assert_eq!(transition, Some(BreakerTransition::Opened));
        assert_eq!(monitor.link_state(C, S), BreakerState::Open);
        // The probe timer re-armed from the failure time.
        assert!(matches!(
            monitor.check(C, S, 90_002),
            BreakerDecision::FastFail(_)
        ));
        assert_eq!(monitor.check(C, S, 110_001), BreakerDecision::Probe);
    }

    #[test]
    fn probe_success_fully_closes_the_breaker() {
        // The probe schedule is deterministic on the simulated clock: a
        // breaker tripped at t probes exactly at t + probe_interval_us,
        // and a full run of probe successes restores a *pristine-looking*
        // closed breaker — the failure run restarts from zero.
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        for at in [0, 10, 20] {
            monitor.on_failure(C, S, &timeout(), at);
        }
        assert!(matches!(
            monitor.check(C, S, 20_019),
            BreakerDecision::FastFail(_)
        ));
        assert_eq!(
            monitor.check(C, S, 20_020),
            BreakerDecision::Probe,
            "probe due exactly at trip + probe_interval"
        );
        assert_eq!(monitor.on_success(C, S), None);
        assert_eq!(monitor.on_success(C, S), Some(BreakerTransition::Closed));
        assert_eq!(monitor.link_state(C, S), BreakerState::Closed);
        // Fully closed: a single new failure does not trip — the
        // consecutive-failure counter reset with the close.
        assert_eq!(monitor.on_failure(C, S, &timeout(), 30_000), (None, None));
        assert_eq!(monitor.link_state(C, S), BreakerState::Closed);
        assert_eq!(monitor.check(C, S, 30_001), BreakerDecision::Allow);
    }

    #[test]
    fn probe_failure_reopens_with_the_backoff_reset() {
        // A failed probe re-opens the breaker and re-arms the probe timer
        // from the *failure* instant, not the original trip: the backoff
        // resets deterministically each time a probe fails.
        let policy = BreakerPolicy::default();
        let interval = policy.probe_interval_us;
        let monitor = HealthMonitor::new(policy);
        for at in [0, 10, 20] {
            monitor.on_failure(C, S, &timeout(), at);
        }
        let mut probe_at = 20 + interval;
        for round in 0..3u64 {
            assert_eq!(
                monitor.check(C, S, probe_at),
                BreakerDecision::Probe,
                "round {round}: probe due exactly on schedule"
            );
            let fail_at = probe_at + 5;
            let (transition, _) = monitor.on_failure(C, S, &timeout(), fail_at);
            assert_eq!(
                transition,
                Some(BreakerTransition::Opened),
                "round {round}: one probe failure re-opens immediately"
            );
            // Fast-fails until exactly fail_at + interval.
            assert!(matches!(
                monitor.check(C, S, fail_at + interval - 1),
                BreakerDecision::FastFail(_)
            ));
            probe_at = fail_at + interval;
        }
        assert_eq!(monitor.stats().opens, 4);
        assert_eq!(monitor.stats().probes, 3);
    }

    #[test]
    fn probe_failure_with_machine_down_covers_the_mixed_kind_rule() {
        // Mixed-kind sequence ending in a MachineDown probe failure: the
        // HalfOpen→Open trip IS a MachineDown, so the machine must be
        // declared dead on the spot even though only one MachineDown
        // outcome ever reached the machine counter (fast-fails feed it
        // nothing). Subsequent fast-fails replay the MachineDown error.
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        for at in [0, 10, 20] {
            monitor.on_failure(C, S, &ComError::Partitioned { from: C, to: S }, at);
        }
        assert_eq!(monitor.check(C, S, 40_020), BreakerDecision::Probe);
        let (transition, opened) = monitor.on_failure(C, S, &ComError::MachineDown(S), 40_025);
        assert_eq!(transition, Some(BreakerTransition::Opened));
        assert_eq!(opened, Some(S), "the tripping MachineDown declares death");
        assert!(monitor.machine_open(S));
        assert_eq!(monitor.drain_opened_machines(), vec![S]);
        match monitor.check(C, S, 40_030) {
            BreakerDecision::FastFail(ComError::MachineDown(m)) => assert_eq!(m, S),
            other => panic!("expected a machine-down fast-fail, got {other:?}"),
        }
    }

    #[test]
    fn machine_down_outcomes_open_the_machine_breaker_once() {
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        let down = ComError::MachineDown(S);
        assert_eq!(monitor.on_failure(C, S, &down, 0).1, None);
        assert_eq!(monitor.on_failure(C, S, &down, 10).1, None);
        assert_eq!(monitor.on_failure(C, S, &down, 20).1, Some(S));
        assert!(monitor.machine_open(S));
        assert!(!monitor.machine_open(C));
        // Further failures do not re-queue the machine.
        monitor.on_failure(C, S, &down, 30);
        assert_eq!(monitor.drain_opened_machines(), vec![S]);
        assert_eq!(monitor.drain_opened_machines(), Vec::<MachineId>::new());
        assert_eq!(monitor.stats().machines_opened, 1);
    }

    #[test]
    fn mixed_failures_tripping_the_link_still_declare_the_machine_dead() {
        // A partition outcome shares the link breaker with subsequent
        // machine-down outcomes (link keys are order-normalized). The trip
        // arrives with only two MachineDown counts — but the tripping
        // failure IS a MachineDown, so the machine must be declared dead
        // here: once the breaker is open, fast-fails would never feed the
        // machine counter again.
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        let down = ComError::MachineDown(S);
        assert_eq!(
            monitor.on_failure(S, C, &ComError::Partitioned { from: S, to: C }, 0),
            (None, None)
        );
        assert_eq!(monitor.on_failure(C, S, &down, 10), (None, None));
        assert_eq!(
            monitor.on_failure(C, S, &down, 20),
            (Some(BreakerTransition::Opened), Some(S))
        );
        assert!(monitor.machine_open(S));
        assert_eq!(monitor.drain_opened_machines(), vec![S]);
    }

    #[test]
    fn fast_fail_replays_machine_down_errors() {
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        let down = ComError::MachineDown(S);
        for at in [0, 1, 2] {
            monitor.on_failure(C, S, &down, at);
        }
        match monitor.check(C, S, 100) {
            BreakerDecision::FastFail(ComError::MachineDown(m)) => assert_eq!(m, S),
            other => panic!("expected a machine-down fast-fail, got {other:?}"),
        }
    }

    #[test]
    fn untouched_monitor_is_pristine() {
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        assert!(monitor.is_pristine());
        assert_eq!(monitor.check(C, S, 0), BreakerDecision::Allow);
        assert!(monitor.is_pristine(), "an allow decision leaves no trace");
        monitor.on_failure(C, S, &timeout(), 0);
        monitor.on_failure(C, S, &timeout(), 1);
        monitor.on_failure(C, S, &timeout(), 2);
        assert!(!monitor.is_pristine());
    }

    #[test]
    fn stats_and_metrics_agree() {
        let monitor = HealthMonitor::new(BreakerPolicy::default());
        for at in [0, 1, 2] {
            monitor.on_failure(C, S, &timeout(), at);
        }
        let _ = monitor.check(C, S, 5); // fast fail
        let _ = monitor.check(C, S, 30_000); // probe
        monitor.on_success(C, S);
        monitor.on_success(C, S); // closes
        let stats = monitor.stats();
        assert_eq!(
            (stats.opens, stats.probes, stats.closes, stats.fast_fails),
            (1, 1, 1, 1)
        );
        let registry = coign_obs::Registry::new();
        monitor.record_metrics(&registry);
        assert_eq!(
            registry.counter_value("coign_health_breaker_opens_total"),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("coign_health_fast_fails_total"),
            Some(1)
        );
    }
}
