//! Corporate Benefits Sample — the MSDN 3-tier client/server application.
//!
//! A synthetic reconstruction of the sample the paper analyzes: a small
//! Visual-Basic front end (GUI forms), a C++ middle tier of business-logic
//! components — many of which **cache results for the client** — and a
//! database reached through ODBC (a proprietary connection Coign cannot
//! analyze, so the driver is pinned to the server by its DATABASE import).
//!
//! The experiment's punchline (Figure 6): the programmer put all middle-tier
//! classes on the middle tier; Coign discovers that the caching components
//! talk overwhelmingly to the client and moves them there, cutting
//! communication ~35 % — without violating security, because the business
//! logic itself stays put.

use crate::common::{
    blob_of, call, fingerprint_of, i4_of, iface_of, register_gui_class, work, GuiSpec, WIDGET_BUILD,
};
use coign::application::Application;
use coign::constraints::NamedConstraint;
use coign_com::idl::{InterfaceBuilder, InterfaceDesc};
use coign_com::{
    ApiImports, AppImage, CallCtx, Clsid, ComError, ComObject, ComResult, ComRuntime, Iid,
    InterfacePtr, MachineId, Message, PType, Value,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Queries the client form sends each result cache.
pub const CACHE_QUERIES: i32 = 6;
/// Direct (uncached) status queries the form sends each manager — the
/// irreducible client↔middle-tier traffic that remains after Coign moves
/// the caches.
pub const MANAGER_STATUS_QUERIES: i32 = 25;
/// Benefit rows per employee.
pub const BENEFITS_PER_EMPLOYEE: i32 = 25;
/// Dependents per employee.
pub const DEPENDENTS_PER_EMPLOYEE: i32 = 10;
/// Result caches created per benefits view (grouping benefit rows).
pub const BENEFIT_CACHES: i32 = 10;
/// Result caches created per dependents view.
pub const DEPENDENT_CACHES: i32 = 5;

/// `IOdbc`: the database driver (pinned to the server).
pub fn iodbc() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IOdbc")
        .method("Exec", |m| {
            m.input("sql", PType::Str).output("rows", PType::Blob)
        })
        .build()
}

/// `IManager`: the middle-tier business-logic entry points.
pub fn imanager() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IManager")
        .method("Load", |m| {
            m.input("employee", PType::I4).output(
                "caches",
                PType::Array(Box::new(PType::Interface(Iid::from_name("ICache")))),
            )
        })
        .method("Mutate", |m| {
            m.input("employee", PType::I4)
                .input("fields", PType::Blob)
                .output("status", PType::I4)
        })
        .method("Status", |m| {
            m.input("key", PType::I4).output("value", PType::Blob)
        })
        .build()
}

/// `ICache`: a client-facing result cache. `Fill` is the one mutation;
/// the paging queries afterwards only read the cached rows.
pub fn icache() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ICache")
        .method("Fill", |m| m.input("rows", PType::Blob).mutates_state())
        .method("Get", |m| {
            m.input("key", PType::I4)
                .output("value", PType::Blob)
                .reads_state()
        })
        .build()
}

/// `IRecord`: a row-backed business object (stays on the middle tier).
/// Cross-checks read the database; the record itself never changes.
pub fn irecord() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IRecord")
        .method("Init", |m| {
            m.input("driver", PType::Interface(Iid::from_name("IOdbc")))
                .input("row", PType::Blob)
                .reads_state()
        })
        .method("Validate", |m| m.output("ok", PType::I4).pure())
        .build()
}

/// `IValidator`: field validation (rule tables from the database).
pub fn ivalidator() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IValidator")
        .method("Init", |m| {
            m.input("driver", PType::Interface(Iid::from_name("IOdbc")))
                .mutates_state()
        })
        .method("Check", |m| {
            m.input("field", PType::Blob)
                .output("ok", PType::I4)
                .reads_state()
        })
        .build()
}

/// `IReport`: chart/report generation.
pub fn ireport() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IReport")
        .method("Render", |m| {
            m.input("driver", PType::Interface(Iid::from_name("IOdbc")))
                .input("kind", PType::I4)
                .output("chart", PType::Blob)
        })
        .build()
}

/// The ODBC driver: serves row data; DATABASE import pins it to the server.
struct OdbcDriver;

impl ComObject for OdbcDriver {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        if method != 0 {
            return Err(ComError::App(format!("IOdbc has no method {method}")));
        }
        work(ctx, 50);
        let sql = msg.arg(0).and_then(Value::as_str).unwrap_or("");
        let rows = match sql {
            s if s.starts_with("select-employee") => 8_000,
            s if s.starts_with("select-benefits") => 24_000,
            s if s.starts_with("select-dependents") => 12_000,
            s if s.starts_with("select-rules") => 50_000,
            s if s.starts_with("select-report") => 180_000,
            _ => 2_000,
        };
        msg.set(1, Value::Blob(rows));
        Ok(())
    }
}

/// A result cache: filled once by its manager, then queried repeatedly by
/// the client forms — the components Coign moves to the client.
struct ResultCache {
    rows: Mutex<u64>,
}

impl ComObject for ResultCache {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                *self.rows.lock() = blob_of(msg, 0);
                work(ctx, 10);
                Ok(())
            }
            1 => {
                work(ctx, 2);
                msg.set(1, Value::Blob(150));
                Ok(())
            }
            _ => Err(ComError::App(format!("ICache has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&*self.rows.lock())
    }
}

/// A row-backed business object: heavy traffic with the driver.
struct Record;

impl ComObject for Record {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                let driver = iface_of(msg, 0)?;
                // Cross-check against the database (foreign keys + history).
                for sql in ["select-xref", "select-hist"] {
                    let mut check = Message::new(vec![Value::Str(sql.into()), Value::Null]);
                    driver.call(ctx.rt(), 0, &mut check)?;
                }
                work(ctx, 15);
                Ok(())
            }
            1 => {
                work(ctx, 5);
                msg.set(0, Value::I4(1));
                Ok(())
            }
            _ => Err(ComError::App(format!("IRecord has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64) // row snapshot, fixed at creation
    }
}

/// Field validator: pulls rule tables once, then answers client checks.
struct Validator {
    rules: Mutex<u64>,
}

impl ComObject for Validator {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                let driver = iface_of(msg, 0)?;
                let mut pull = Message::new(vec![Value::Str("select-rules".into()), Value::Null]);
                driver.call(ctx.rt(), 0, &mut pull)?;
                *self.rules.lock() = blob_of(&pull, 1);
                work(ctx, 30);
                Ok(())
            }
            1 => {
                work(ctx, 4);
                msg.set(1, Value::I4(1));
                Ok(())
            }
            _ => Err(ComError::App(format!("IValidator has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&*self.rules.lock())
    }
}

/// Report engine: renders charts from database aggregates.
struct ReportEngine;

impl ComObject for ReportEngine {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        if method != 0 {
            return Err(ComError::App(format!("IReport has no method {method}")));
        }
        let driver = iface_of(msg, 0)?;
        let mut pull = Message::new(vec![Value::Str("select-report".into()), Value::Null]);
        driver.call(ctx.rt(), 0, &mut pull)?;
        work(ctx, 120);
        // The rendered chart image handed to the client.
        msg.set(2, Value::Blob(60_000));
        Ok(())
    }
}

/// A middle-tier manager: loads records from the database, builds records
/// and result caches.
struct Manager {
    /// Which entity this manager serves (drives row counts).
    entity: &'static str,
    /// The database connection, opened on first use.
    driver: Mutex<Option<InterfacePtr>>,
}

impl ComObject for Manager {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        match method {
            0 => {
                let employee = i4_of(msg, 0);
                let driver =
                    ctx.create(Clsid::from_name("BenOdbcDriver"), Iid::from_name("IOdbc"))?;
                *self.driver.lock() = Some(driver.clone());
                let (records, caches) = match self.entity {
                    "benefits" => (BENEFITS_PER_EMPLOYEE, BENEFIT_CACHES),
                    "dependents" => (DEPENDENTS_PER_EMPLOYEE, DEPENDENT_CACHES),
                    _ => (1, 2),
                };
                // Main query plus permission and row-count checks.
                for sql in ["select", "perms", "count"] {
                    let mut query = Message::new(vec![
                        Value::Str(format!("{sql}-{} {employee}", self.entity)),
                        Value::Null,
                    ]);
                    driver.call(rt, 0, &mut query)?;
                }
                for _ in 0..records {
                    let record =
                        ctx.create(Clsid::from_name("BenRecord"), Iid::from_name("IRecord"))?;
                    let mut init = Message::new(vec![
                        Value::Interface(Some(driver.clone())),
                        Value::Blob(900),
                    ]);
                    record.call(rt, 0, &mut init)?;
                }
                // The client-facing caches, all returned to the caller.
                let mut cache_ptrs = Vec::new();
                for _ in 0..caches {
                    let cache =
                        ctx.create(Clsid::from_name("BenResultCache"), Iid::from_name("ICache"))?;
                    let mut fill = Message::new(vec![Value::Blob(4_000)]);
                    cache.call(rt, 0, &mut fill)?;
                    cache_ptrs.push(Value::Interface(Some(cache)));
                }
                work(ctx, 60);
                msg.set(1, Value::Array(cache_ptrs));
                Ok(())
            }
            1 => {
                let driver =
                    ctx.create(Clsid::from_name("BenOdbcDriver"), Iid::from_name("IOdbc"))?;
                let mut update = Message::new(vec![
                    Value::Str(format!("update-{}", self.entity)),
                    Value::Null,
                ]);
                driver.call(rt, 0, &mut update)?;
                work(ctx, 40);
                msg.set(2, Value::I4(1));
                Ok(())
            }
            2 => {
                // Live status fields always hit the database — they cannot
                // be cached, so this traffic is irreducible no matter where
                // the manager sits.
                let driver = self.driver.lock().clone();
                let driver = match driver {
                    Some(d) => d,
                    None => {
                        let d =
                            ctx.create(Clsid::from_name("BenOdbcDriver"), Iid::from_name("IOdbc"))?;
                        *self.driver.lock() = Some(d.clone());
                        d
                    }
                };
                let mut q = Message::new(vec![Value::Str("select-status".into()), Value::Null]);
                driver.call(rt, 0, &mut q)?;
                work(ctx, 3);
                msg.set(1, Value::Blob(120));
                Ok(())
            }
            _ => Err(ComError::App(format!("IManager has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&(self.entity, self.driver.lock().is_some()))
    }
}

/// Registers the small Visual-Basic-style front end.
fn register_gui(rt: &ComRuntime) {
    for form in [
        "BenUiLogonForm",
        "BenUiNavBar",
        "BenUiStatusBar",
        "BenUiChartView",
    ] {
        register_gui_class(
            rt,
            form,
            GuiSpec {
                notify_parent: 1,
                build_cost_us: 5,
                paint_cost_us: 3,
                ..GuiSpec::default()
            },
        );
    }
    register_gui_class(
        rt,
        "BenUiBenefitsGrid",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 6,
            paint_cost_us: 4,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "BenUiDependentsGrid",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 4,
            paint_cost_us: 3,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "BenUiEmployeeForm",
        GuiSpec {
            children: vec![
                ("BenUiLogonForm", 1),
                ("BenUiNavBar", 1),
                ("BenUiStatusBar", 1),
                ("BenUiBenefitsGrid", 1),
                ("BenUiDependentsGrid", 1),
                ("BenUiChartView", 1),
            ],
            build_cost_us: 12,
            paint_cost_us: 6,
            ..GuiSpec::default()
        },
    );
}

/// The Corporate Benefits application.
///
/// "As shipped, Benefits can be distributed as either a 2-tier or a 3-tier
/// client-server application" (§4.3). The default is the 3-tier split the
/// paper analyzes; [`Benefits::two_tier`] gives the 2-tier variant, where
/// the business logic ships on the client and only the database lives
/// remotely.
#[derive(Debug, Default)]
pub struct Benefits {
    two_tier: bool,
}

impl Benefits {
    /// The 2-tier shipped configuration: Visual Basic front end *and*
    /// business logic on the client, database on the server.
    pub fn two_tier() -> Self {
        Benefits { two_tier: true }
    }

    /// The 3-tier shipped configuration (the paper's analysis target).
    pub fn three_tier() -> Self {
        Benefits { two_tier: false }
    }
}

/// Benefits' Table 1 scenarios.
pub const SCENARIOS: [&str; 4] = ["b_vueone", "b_addone", "b_delone", "b_bigone"];

impl Benefits {
    fn view_employee(&self, rt: &ComRuntime, employee: i32) -> ComResult<()> {
        for entity in ["employee", "benefits", "dependents"] {
            let manager = rt.create_instance(
                Clsid::from_name(match entity {
                    "benefits" => "BenBenefitsManager",
                    "dependents" => "BenDependentsManager",
                    _ => "BenEmployeeManager",
                }),
                Iid::from_name("IManager"),
            )?;
            let load = call(rt, &manager, 0, vec![Value::I4(employee), Value::Null])?;
            let caches: Vec<_> = match load.arg(1) {
                Some(Value::Array(items)) => items
                    .iter()
                    .filter_map(|v| v.as_interface().cloned())
                    .collect(),
                _ => Vec::new(),
            };
            // The form pages through every cached result set.
            for cache in &caches {
                for key in 0..CACHE_QUERIES {
                    call(rt, cache, 1, vec![Value::I4(key), Value::Null])?;
                }
            }
            // Live status fields bypass the caches — irreducible
            // client↔middle-tier traffic.
            for key in 0..MANAGER_STATUS_QUERIES {
                call(rt, &manager, 2, vec![Value::I4(key), Value::Null])?;
            }
        }
        // The chart view renders a report.
        let report = rt.create_instance(
            Clsid::from_name("BenReportEngine"),
            Iid::from_name("IReport"),
        )?;
        let driver =
            rt.create_instance(Clsid::from_name("BenOdbcDriver"), Iid::from_name("IOdbc"))?;
        call(
            rt,
            &report,
            0,
            vec![Value::Interface(Some(driver)), Value::I4(1), Value::Null],
        )?;
        Ok(())
    }

    fn mutate_employee(&self, rt: &ComRuntime, employee: i32, fields: i32) -> ComResult<()> {
        let driver =
            rt.create_instance(Clsid::from_name("BenOdbcDriver"), Iid::from_name("IOdbc"))?;
        let validator = rt.create_instance(
            Clsid::from_name("BenValidator"),
            Iid::from_name("IValidator"),
        )?;
        call(rt, &validator, 0, vec![Value::Interface(Some(driver))])?;
        for _ in 0..fields {
            call(rt, &validator, 1, vec![Value::Blob(120), Value::Null])?;
        }
        let manager = rt.create_instance(
            Clsid::from_name("BenEmployeeManager"),
            Iid::from_name("IManager"),
        )?;
        call(
            rt,
            &manager,
            1,
            vec![Value::I4(employee), Value::Blob(2_000), Value::Null],
        )?;
        // Refresh the cached views afterwards.
        self.view_employee(rt, employee)
    }
}

impl Application for Benefits {
    fn name(&self) -> &str {
        "benefits"
    }

    fn register(&self, rt: &ComRuntime) {
        register_gui(rt);
        let reg = rt.registry();
        reg.register(
            "BenOdbcDriver",
            vec![iodbc()],
            ApiImports::DATABASE,
            |_, _| Arc::new(OdbcDriver),
        );
        for (name, entity) in [
            ("BenEmployeeManager", "employee"),
            ("BenBenefitsManager", "benefits"),
            ("BenDependentsManager", "dependents"),
        ] {
            reg.register(name, vec![imanager()], ApiImports::NONE, move |_, _| {
                Arc::new(Manager {
                    entity,
                    driver: Mutex::new(None),
                })
            });
        }
        reg.register(
            "BenResultCache",
            vec![icache()],
            ApiImports::NONE,
            |_, _| {
                Arc::new(ResultCache {
                    rows: Mutex::new(0),
                })
            },
        );
        reg.register("BenRecord", vec![irecord()], ApiImports::NONE, |_, _| {
            Arc::new(Record)
        });
        reg.register(
            "BenValidator",
            vec![ivalidator()],
            ApiImports::NONE,
            |_, _| {
                Arc::new(Validator {
                    rules: Mutex::new(0),
                })
            },
        );
        reg.register(
            "BenReportEngine",
            vec![ireport()],
            ApiImports::NONE,
            |_, _| Arc::new(ReportEngine),
        );
    }

    fn scenarios(&self) -> Vec<&'static str> {
        SCENARIOS.to_vec()
    }

    fn run_scenario(&self, rt: &ComRuntime, scenario: &str) -> ComResult<()> {
        // The VB front end.
        let form = rt.create_instance(
            Clsid::from_name("BenUiEmployeeForm"),
            Iid::from_name("IWidget"),
        )?;
        call(rt, &form, WIDGET_BUILD, vec![Value::Interface(None)])?;

        match scenario {
            "b_vueone" => self.view_employee(rt, 1001),
            "b_addone" => self.mutate_employee(rt, 1002, 12),
            "b_delone" => {
                // Deleting cascades: dependents first, then the employee,
                // then a fresh report of the department.
                self.mutate_employee(rt, 1003, 4)?;
                let report = rt.create_instance(
                    Clsid::from_name("BenReportEngine"),
                    Iid::from_name("IReport"),
                )?;
                let driver =
                    rt.create_instance(Clsid::from_name("BenOdbcDriver"), Iid::from_name("IOdbc"))?;
                call(
                    rt,
                    &report,
                    0,
                    vec![Value::Interface(Some(driver)), Value::I4(2), Value::Null],
                )?;
                Ok(())
            }
            "b_bigone" => {
                self.view_employee(rt, 1001)?;
                self.mutate_employee(rt, 1002, 12)?;
                self.mutate_employee(rt, 1003, 4)
            }
            other => Err(ComError::App(format!("benefits has no scenario `{other}`"))),
        }
    }

    fn image(&self) -> AppImage {
        AppImage::new(
            "benefits.exe",
            vec![
                Clsid::from_name("BenUiEmployeeForm"),
                Clsid::from_name("BenEmployeeManager"),
                Clsid::from_name("BenOdbcDriver"),
            ],
        )
    }

    fn default_placement(&self, class_name: &str) -> MachineId {
        if self.two_tier {
            // 2-tier: front end and business logic on the client; only the
            // database (pinned separately by its DATABASE import) remote.
            MachineId::CLIENT
        } else if class_name.starts_with("BenUi") {
            // 3-tier: Visual Basic front end on the client, everything
            // else on the middle tier.
            MachineId::CLIENT
        } else {
            MachineId::SERVER
        }
    }

    fn explicit_constraints(&self) -> Vec<NamedConstraint> {
        // The paper notes the programmer *can* add absolute and pair-wise
        // constraints for data integrity, though the analysis does not use
        // them. We keep the hook exercised: the ODBC driver is absolutely
        // constrained to the server (redundant with its DATABASE import).
        vec![NamedConstraint::Absolute(
            "BenOdbcDriver".into(),
            MachineId::SERVER,
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_scenario_builds_records_and_caches() {
        let app = Benefits::default();
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        app.run_scenario(&rt, "b_vueone").unwrap();
        let count = |name: &str| {
            rt.instances_snapshot()
                .iter()
                .filter(|i| i.clsid == Clsid::from_name(name))
                .count() as i32
        };
        assert_eq!(
            count("BenRecord"),
            1 + BENEFITS_PER_EMPLOYEE + DEPENDENTS_PER_EMPLOYEE
        );
        assert_eq!(
            count("BenResultCache"),
            2 + BENEFIT_CACHES + DEPENDENT_CACHES
        );
    }

    #[test]
    fn all_scenarios_run() {
        let app = Benefits::default();
        for scenario in SCENARIOS {
            let rt = ComRuntime::single_machine();
            app.register(&rt);
            app.run_scenario(&rt, scenario)
                .unwrap_or_else(|e| panic!("{scenario}: {e}"));
        }
    }

    #[test]
    fn default_placement_matches_tiers() {
        let app = Benefits::three_tier();
        assert_eq!(app.default_placement("BenUiNavBar"), MachineId::CLIENT);
        assert_eq!(app.default_placement("BenResultCache"), MachineId::SERVER);
        assert_eq!(app.default_placement("BenOdbcDriver"), MachineId::SERVER);
        let two = Benefits::two_tier();
        assert_eq!(two.default_placement("BenResultCache"), MachineId::CLIENT);
        // The DATABASE import pins the driver regardless of the tiering
        // (run_default overrides storage classes to the server).
        assert_eq!(two.default_placement("BenUiNavBar"), MachineId::CLIENT);
    }
}
