//! Octarine — the component-granularity word processor.
//!
//! A synthetic reconstruction of the Microsoft Research prototype the paper
//! profiles: ~70 component classes across a GUI forest, a storage-backed
//! document pipeline, and three document types (text, table, sheet music)
//! whose fragments combine into one document. Scenario names follow the
//! paper's Table 1 (`o_*`).

pub mod components;
pub mod gui;
pub mod script;

use crate::common::{call, IDLE_PUMP, WIDGET_BUILD, WIDGET_PAINT, WIDGET_REGISTER_IDLE};
use coign::application::Application;
use coign_com::{AppImage, Clsid, ComError, ComResult, ComRuntime, Iid, InterfacePtr, Value};

/// The Octarine application.
#[derive(Debug, Default)]
pub struct Octarine;

/// The scenario names of the paper's Table 1 for Octarine.
pub const SCENARIOS: [&str; 12] = [
    "o_newdoc", "o_newmus", "o_newtbl", "o_oldtb0", "o_oldtb3", "o_oldwp0", "o_oldwp3", "o_oldwp7",
    "o_oldbth", "o_offtb3", "o_offwp7", "o_bigone",
];

/// One document operation: (kind, pages, embedded tables).
type DocOp = (&'static str, i32, i32);

fn ops_for(scenario: &str) -> ComResult<Vec<DocOp>> {
    Ok(match scenario {
        "o_newdoc" => vec![("newtext", 0, 0)],
        "o_newmus" => vec![("newmusic", 0, 0)],
        "o_newtbl" => vec![("newtable", 0, 0)],
        "o_oldtb0" => vec![("table", 5, 0)],
        "o_oldtb3" => vec![("table", 150, 0)],
        "o_fig5" => vec![("text", 35, 0)], // the 35-page document of Figure 5
        "o_oldwp0" => vec![("text", 5, 0)],
        "o_oldwp3" => vec![("text", 13, 0)],
        "o_oldwp7" => vec![("text", 208, 0)],
        "o_oldbth" => vec![("both", 5, 11)],
        "o_offtb3" => vec![("newtext", 0, 0), ("table", 150, 0)],
        "o_offwp7" => vec![("newtext", 0, 0), ("text", 208, 0)],
        "o_bigone" => {
            let mut ops = Vec::new();
            for s in SCENARIOS.iter().take(11) {
                ops.extend(ops_for(s)?);
            }
            ops
        }
        other => return Err(ComError::App(format!("octarine has no scenario `{other}`"))),
    })
}

/// Builds the application shell: window forest, idle loop, two idle rounds.
pub(crate) fn build_shell(rt: &ComRuntime) -> ComResult<(InterfacePtr, InterfacePtr)> {
    let window = rt.create_instance(Clsid::from_name("OctAppWindow"), Iid::from_name("IWidget"))?;
    call(rt, &window, WIDGET_BUILD, vec![Value::Interface(None)])?;
    let idle = rt.create_instance(Clsid::from_name("OctIdleLoop"), Iid::from_name("IIdleLoop"))?;
    call(
        rt,
        &window,
        WIDGET_REGISTER_IDLE,
        vec![Value::Interface(Some(idle.clone()))],
    )?;
    Ok((window, idle))
}

impl Application for Octarine {
    fn name(&self) -> &str {
        "octarine"
    }

    fn register(&self, rt: &ComRuntime) {
        gui::register(rt);
        components::register(rt);
    }

    fn scenarios(&self) -> Vec<&'static str> {
        SCENARIOS.to_vec()
    }

    fn run_scenario(&self, rt: &ComRuntime, scenario: &str) -> ComResult<()> {
        let ops = ops_for(scenario)?;
        let (window, idle) = build_shell(rt)?;
        let manager =
            rt.create_instance(Clsid::from_name("OctDocManager"), Iid::from_name("IDocMgr"))?;
        for (kind, pages, tables) in ops {
            let view =
                rt.create_instance(Clsid::from_name("OctPageView"), Iid::from_name("IPageView"))?;
            call(
                rt,
                &manager,
                components::doc_mgr_method(kind),
                vec![
                    Value::I4(pages),
                    Value::I4(tables),
                    Value::Interface(Some(view)),
                ],
            )?;
            // The user keeps the app alive: idle round + repaint per
            // document.
            call(rt, &idle, IDLE_PUMP, vec![Value::I4(2)])?;
            call(rt, &window, WIDGET_PAINT, vec![])?;
        }
        Ok(())
    }

    fn image(&self) -> AppImage {
        AppImage::new(
            "octarine.exe",
            vec![
                Clsid::from_name("OctAppWindow"),
                Clsid::from_name("OctDocManager"),
                Clsid::from_name("OctStory"),
                Clsid::from_name("OctTableModel"),
                Clsid::from_name("OctMusicSheet"),
            ],
        )
    }

    fn default_placement(&self, _class_name: &str) -> coign_com::MachineId {
        // Octarine ships as a desktop application: everything on the
        // client; only the data files (the store components, which static
        // analysis pins) live on the server.
        coign_com::MachineId::CLIENT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_run_raw() {
        let app = Octarine;
        for scenario in [
            "o_newdoc", "o_newmus", "o_newtbl", "o_oldtb0", "o_oldwp0", "o_oldbth",
        ] {
            let rt = ComRuntime::single_machine();
            app.register(&rt);
            app.run_scenario(&rt, scenario)
                .unwrap_or_else(|e| panic!("{scenario}: {e}"));
            assert!(rt.instance_count() > 100, "{scenario} too small");
        }
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let app = Octarine;
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        assert!(app.run_scenario(&rt, "o_nope").is_err());
    }

    #[test]
    fn text_document_scales_instances_with_pages() {
        let app = Octarine;
        let count_for = |scenario: &str| {
            let rt = ComRuntime::single_machine();
            app.register(&rt);
            app.run_scenario(&rt, scenario).unwrap();
            rt.instance_count()
        };
        let small = count_for("o_oldwp0");
        let large = count_for("o_oldwp7");
        // Larger documents add page stubs.
        assert!(large > small + 150, "small={small} large={large}");
    }

    #[test]
    fn mixed_document_builds_table_models() {
        let app = Octarine;
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        app.run_scenario(&rt, "o_oldbth").unwrap();
        let models = rt
            .instances_snapshot()
            .iter()
            .filter(|i| i.clsid == Clsid::from_name("OctTableModel"))
            .count();
        assert_eq!(models, 11);
    }

    #[test]
    fn bigone_synthesizes_all_scenarios() {
        let app = Octarine;
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        app.run_scenario(&rt, "o_bigone").unwrap();
        // One shell + eleven scenarios' worth of documents.
        assert!(rt.instance_count() > 1_000);
    }
}
