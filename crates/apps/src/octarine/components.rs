//! Octarine's document components: storage, reader, properties, text
//! pipeline, tables, and sheet music.
//!
//! The communication constants at the top of this module are the knobs that
//! reproduce the paper's Table 4 / Figures 5–8 shape:
//!
//! * Reading a document pulls the *whole file* through the reader — so in
//!   the default distribution (reader on the client, file on the server)
//!   communication scales with document size.
//! * Displaying a document touches only the first page, but layout chats
//!   with the text-properties component (many small queries) and with the
//!   page view (geometry callbacks). The properties chatter is what moving
//!   the reader+properties pair to the server costs; the view chatter is
//!   what keeps the layout components on the client — so small documents
//!   stay whole (0 % savings) and large documents split (95–99 %).
//! * Embedded tables trigger page-placement negotiation: table models and
//!   paragraph layouts exchange many reflow rounds and hammer the
//!   properties component, while their output to the GUI is minimal. The
//!   negotiation cluster therefore follows the reader to the server —
//!   the paper's Figure 8.

use crate::common::{
    blob_of, fingerprint_of, i4_of, iface_of, work, STORE_READ_PAGE, STORE_READ_STREAM,
};
use coign_com::idl::{InterfaceBuilder, InterfaceDesc};
use coign_com::{
    ApiImports, CallCtx, Clsid, ComError, ComObject, ComResult, ComRuntime, Iid, InterfacePtr,
    Message, PType, Value,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Bytes per text-document page in the file.
pub const TEXT_PAGE_BYTES: u64 = 30_000;
/// Bytes per table-document page in the file.
pub const TABLE_PAGE_BYTES: u64 = 100_000;
/// Usable bytes per table page after the reader strips formatting metadata
/// (the ~2 % the reader saves when it runs next to the file).
pub const TABLE_BATCH_BYTES: u64 = 98_000;
/// Bytes of one embedded-table batch in a mixed document.
pub const EMBEDDED_TABLE_BYTES: u64 = 100_000;
/// Size of the text-properties stream (style sheets, fonts, …).
pub const PROP_STREAM_BYTES: u64 = 150_000;
/// Paragraphs laid out per page.
pub const PARAS_PER_PAGE: usize = 4;
/// Text runs per paragraph.
pub const RUNS_PER_PARA: usize = 3;
/// Line-metric queries one paragraph layout sends the reader while
/// breaking lines (the chatter that keeps readers local for small files).
pub const READER_QUERIES_PER_LAYOUT: usize = 60;
/// Property queries issued by one paragraph layout during initial layout.
pub const PROPS_QUERIES_PER_LAYOUT: usize = 4;
/// Property queries per reflow round during table/text negotiation.
pub const PROPS_QUERIES_PER_REFLOW: usize = 8;
/// View geometry callbacks per layout: text-only documents.
pub const VIEW_CALLS_TEXT: i32 = 80;
/// View geometry callbacks per layout: mixed (negotiating) documents.
pub const VIEW_CALLS_MIXED: i32 = 3;
/// View geometry callbacks per table column: standalone table documents.
pub const VIEW_CALLS_TABLE: i32 = 20;
/// View geometry callbacks per table column: embedded tables (geometry
/// comes out of the negotiation with the text layouts instead).
pub const VIEW_CALLS_TABLE_MIXED: i32 = 0;
/// Negotiation rounds between embedded tables and paragraph layouts.
pub const NEGOTIATION_ROUNDS: i32 = 6;
/// Table columns per table.
pub const TABLE_COLUMNS: usize = 10;
/// Rows shown when a table page is displayed.
pub const DISPLAY_ROWS: i32 = 30;
/// Rows shown per embedded table.
pub const EMBEDDED_ROWS: i32 = 4;
/// Cell-set components per table (row groups negotiated as units).
pub const CELL_SETS_PER_TABLE: usize = 12;

/// `IDocReader`. `Open` loads the document (the one mutation); everything
/// after it only reads the loaded content.
pub fn idoc_reader() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IDocReader")
        .method("Open", |m| {
            m.input("kind", PType::Str)
                .input("pages", PType::I4)
                .mutates_state()
        })
        .method("GetOutline", |m| {
            m.output("outline", PType::Blob).reads_state()
        })
        .method("GetParaText", |m| {
            m.input("page", PType::I4)
                .input("idx", PType::I4)
                .output("text", PType::Blob)
                .output("block", PType::Interface(Iid::from_name("ITextBlock")))
                .reads_state()
        })
        .method("GetPropStream", |m| {
            m.output("props", PType::Blob).reads_state()
        })
        .method("GetTableBatch", |m| {
            m.input("table", PType::I4)
                .output("batch", PType::Blob)
                .reads_state()
        })
        .method("GetTemplate", |m| {
            m.output("template", PType::Blob).reads_state()
        })
        .method("GetLineMetrics", |m| {
            m.input("para", PType::I4)
                .input("line", PType::I4)
                .output("metrics", PType::Blob)
                .pure()
        })
        .build()
}

/// Method ids of `IDocReader`.
pub mod reader_m {
    /// `Open(kind, pages)`.
    pub const OPEN: u32 = 0;
    /// `GetOutline() -> blob`.
    pub const GET_OUTLINE: u32 = 1;
    /// `GetParaText(page, idx) -> blob`.
    pub const GET_PARA_TEXT: u32 = 2;
    /// `GetPropStream() -> blob`.
    pub const GET_PROP_STREAM: u32 = 3;
    /// `GetTableBatch(table) -> blob`.
    pub const GET_TABLE_BATCH: u32 = 4;
    /// `GetTemplate() -> blob`.
    pub const GET_TEMPLATE: u32 = 5;
    /// `GetLineMetrics(para, line) -> blob`.
    pub const GET_LINE_METRICS: u32 = 6;
}

/// `ITextProps`.
pub fn itext_props() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ITextProps")
        .method("Init", |m| {
            m.input("reader", PType::Interface(Iid::from_name("IDocReader")))
        })
        .method("Query", |m| {
            m.input("key", PType::I4)
                .output("value", PType::Blob)
                .reads_state()
        })
        // Font caches are allocated *through* the shared property set: all
        // layouts of a document funnel their cache creation through one
        // instance and one internal `AllocFace` hop — the chains that make
        // classifier accuracy depend on stack-walk depth (Table 3).
        // Allocation reads the loaded style data; it never writes it.
        .method("MakeFontCache", |m| {
            m.output("cache", PType::Interface(Iid::from_name("IFontCache")))
                .reads_state()
        })
        .method("AllocFace", |m| {
            m.output("cache", PType::Interface(Iid::from_name("IFontCache")))
                .reads_state()
        })
        .build()
}

/// `ITextBlock`: one paragraph's backing text, handed out by the reader.
/// A flyweight over immutable text — every method is effect-free, so the
/// replication lints prove the class legal to duplicate.
pub fn itext_block() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ITextBlock")
        .method("Init", |m| m.input("text", PType::Blob).pure())
        .method("GetRange", |m| {
            m.input("from", PType::I4)
                .input("to", PType::I4)
                .output("text", PType::Blob)
                .pure()
        })
        .build()
}

/// `IFontCache`: cached font metrics for one paragraph layout. The metrics
/// are fixed at creation — effect-free, hence replicable.
pub fn ifont_cache() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IFontCache")
        .method("Init", |m| m.input("face", PType::Blob).pure())
        .method("Measure", |m| {
            m.input("key", PType::I4).output("width", PType::I4).pure()
        })
        .build()
}

/// `IStory`.
pub fn istory() -> Arc<InterfaceDesc> {
    let style_params = |m: coign_com::idl::MethodBuilder| {
        m.input("reader", PType::Interface(Iid::from_name("IDocReader")))
            .input("props", PType::Interface(Iid::from_name("ITextProps")))
            .input("view", PType::Interface(Iid::from_name("IPageView")))
            .input("page", PType::I4)
            .input("idx", PType::I4)
            .input("view_calls", PType::I4)
            .output("layout", PType::Interface(Iid::from_name("ILayoutNeg")))
            .output("para", PType::Interface(Iid::from_name("IParagraph")))
    };
    InterfaceBuilder::new("IStory")
        .method("Build", |m| {
            m.input("reader", PType::Interface(Iid::from_name("IDocReader")))
                .input("props", PType::Interface(Iid::from_name("ITextProps")))
                .input("view", PType::Interface(Iid::from_name("IPageView")))
                .input("pages", PType::I4)
                .input("tables", PType::I4)
        })
        // Per-style paragraph builders: body, heading, list, quote. Each
        // style is a distinct internal code path, so paragraphs (and their
        // layouts and runs) created for different styles carry different
        // instantiation contexts.
        .method("BuildBody", style_params)
        .method("BuildHeading", style_params)
        .method("BuildList", style_params)
        .method("BuildQuote", style_params)
        .build()
}

/// `IParagraph`.
pub fn iparagraph() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IParagraph")
        .method("Init", |m| {
            m.input("reader", PType::Interface(Iid::from_name("IDocReader")))
                .input("props", PType::Interface(Iid::from_name("ITextProps")))
                .input("view", PType::Interface(Iid::from_name("IPageView")))
                .input("page", PType::I4)
                .input("idx", PType::I4)
                .input("view_calls", PType::I4)
                .output("layout", PType::Interface(Iid::from_name("ILayoutNeg")))
        })
        .method("Render", |m| {
            m.input("view", PType::Interface(Iid::from_name("IPageView")))
        })
        .build()
}

/// `ILayoutNeg` — paragraph layout, including the negotiation entry point.
pub fn ilayout_neg() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ILayoutNeg")
        .method("Init", |m| {
            m.input("reader", PType::Interface(Iid::from_name("IDocReader")))
                .input("props", PType::Interface(Iid::from_name("ITextProps")))
                .input("view", PType::Interface(Iid::from_name("IPageView")))
                .input("view_calls", PType::I4)
                .input("content", PType::I4)
        })
        .method("Reflow", |m| {
            m.input("round", PType::I4).output("metrics", PType::Blob)
        })
        .method("Metric", |m| {
            m.input("key", PType::I4).output("value", PType::Blob)
        })
        .build()
}

/// `ITextRun`.
pub fn itext_run() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ITextRun")
        .method("Init", |m| {
            m.input("layout", PType::Interface(Iid::from_name("ILayoutNeg")))
        })
        .method("Measure", |m| m.output("width", PType::I4))
        .build()
}

/// `IPageStub` — placeholder for a not-yet-displayed page. Stateless.
pub fn ipage_stub() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IPageStub")
        .method("Init", |m| m.input("page", PType::I4).pure())
        .build()
}

/// `IPageView` — the document viewport (a GUI component).
pub fn ipage_view() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IPageView")
        .method("Geometry", |m| {
            m.input("q", PType::I4).output("rect", PType::Blob)
        })
        .method("RenderPara", |m| m.input("data", PType::Blob))
        .method("DrawRow", |m| m.input("data", PType::Blob))
        .build()
}

/// `ITableModel`.
pub fn itable_model() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ITableModel")
        .method("Init", |m| {
            m.input("reader", PType::Interface(Iid::from_name("IDocReader")))
                .input("view", PType::Interface(Iid::from_name("IPageView")))
                .input("table", PType::I4)
                .input("pages", PType::I4)
                .input("view_calls", PType::I4)
        })
        .method("NegotiateText", |m| {
            m.input("props", PType::Interface(Iid::from_name("ITextProps")))
                .input(
                    "layouts",
                    PType::Array(Box::new(PType::Interface(Iid::from_name("ILayoutNeg")))),
                )
                .input("rounds", PType::I4)
        })
        .method("GetRow", |m| {
            m.input("page", PType::I4)
                .input("row", PType::I4)
                .output("cells", PType::Blob)
        })
        .build()
}

/// `ITableCol`. Column statistics are fixed at creation; balancing is a
/// computation over them — effect-free, hence replicable.
pub fn itable_col() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ITableCol")
        .method("Init", |m| m.input("stats", PType::Blob).pure())
        .method("Balance", |m| {
            m.input("round", PType::I4)
                .output("width", PType::I4)
                .pure()
        })
        .build()
}

/// `ICellSet` — a negotiated row-group of table cells. Placement derives
/// from the fixed cell data — effect-free, hence replicable.
pub fn icell_set() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ICellSet")
        .method("Init", |m| m.input("cells", PType::Blob).pure())
        .method("Place", |m| {
            m.input("round", PType::I4)
                .output("rect", PType::Blob)
                .pure()
        })
        .build()
}

/// `IRowBatch`.
pub fn irow_batch() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IRowBatch")
        .method("Init", |m| m.input("data", PType::Blob))
        .method("GetRow", |m| {
            m.input("row", PType::I4).output("cells", PType::Blob)
        })
        .build()
}

/// `ITableFrame` — the on-screen table grid (a GUI component).
pub fn itable_frame() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ITableFrame")
        .method("Show", |m| {
            m.input("model", PType::Interface(Iid::from_name("ITableModel")))
                .input("page", PType::I4)
                .input("rows", PType::I4)
        })
        .build()
}

/// `IMusicSheet`.
pub fn imusic_sheet() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IMusicSheet")
        .method("Init", |m| {
            m.input("reader", PType::Interface(Iid::from_name("IDocReader")))
                .input("view", PType::Interface(Iid::from_name("IPageView")))
        })
        .build()
}

/// `IStaff`.
pub fn istaff() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IStaff")
        .method("Init", |m| {
            m.input("notes", PType::Blob)
                .input("view", PType::Interface(Iid::from_name("IPageView")))
        })
        .build()
}

/// `INoteRun`.
pub fn inote_run() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("INoteRun")
        .method("Init", |m| m.input("notes", PType::Blob))
        .build()
}

/// `IDocMgr`: one entry point per document command, so the instantiation
/// call chains of readers, stories, and their descendants differ by the
/// user action that triggered them — the context the call-chain classifiers
/// rely on.
pub fn idoc_mgr() -> Arc<InterfaceDesc> {
    let doc_params = |m: coign_com::idl::MethodBuilder| {
        m.input("pages", PType::I4)
            .input("tables", PType::I4)
            .input("view", PType::Interface(Iid::from_name("IPageView")))
    };
    InterfaceBuilder::new("IDocMgr")
        .method("OpenText", doc_params)
        .method("OpenTable", doc_params)
        .method("OpenMixed", doc_params)
        .method("OpenMusic", doc_params)
        .method("NewText", doc_params)
        .method("NewTable", doc_params)
        .method("NewMusic", doc_params)
        .build()
}

/// Method ids of `IDocMgr`, matching document kinds.
pub fn doc_mgr_method(kind: &str) -> u32 {
    match kind {
        "text" => 0,
        "table" => 1,
        "both" => 2,
        "music" => 3,
        "newtext" => 4,
        "newtable" => 5,
        _ => 6, // newmusic
    }
}

// ---------------------------------------------------------------------------
// Component implementations.
// ---------------------------------------------------------------------------

/// The document reader: opens the store, pulls the file, serves content.
struct DocReader {
    state: Mutex<ReaderState>,
}

#[derive(Default)]
struct ReaderState {
    store: Option<InterfacePtr>,
    kind: String,
    pages: i32,
}

impl ComObject for DocReader {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        match method {
            reader_m::OPEN => {
                let kind = msg
                    .arg(0)
                    .and_then(Value::as_str)
                    .unwrap_or("text")
                    .to_string();
                let pages = i4_of(msg, 1);
                let store_class = match kind.as_str() {
                    "table" => "OctTableStore",
                    "music" => "OctMusicStore",
                    _ => "OctTextStore",
                };
                let store = ctx.create(Clsid::from_name(store_class), Iid::from_name("IStore"))?;
                work(ctx, 40);
                // Pull the text content of the file — the whole file, the
                // way real applications load documents.
                if kind == "text" || kind == "both" {
                    for page in 0..pages {
                        let mut read = Message::new(vec![Value::I4(page), Value::Null]);
                        store.call(rt, STORE_READ_PAGE, &mut read)?;
                        work(ctx, 20);
                    }
                }
                let mut state = self.state.lock();
                state.store = Some(store);
                state.kind = kind;
                state.pages = pages;
                Ok(())
            }
            reader_m::GET_OUTLINE => {
                let pages = self.state.lock().pages.max(1) as u64;
                work(ctx, 10);
                msg.set(0, Value::Blob(64 * pages));
                Ok(())
            }
            reader_m::GET_PARA_TEXT => {
                work(ctx, 5);
                // The text is handed out as a block component the paragraph
                // keeps consulting.
                let block = ctx.create(
                    Clsid::from_name("OctTextBlock"),
                    Iid::from_name("ITextBlock"),
                )?;
                let mut init = Message::new(vec![Value::Blob(800)]);
                block.call(rt, 0, &mut init)?;
                msg.set(2, Value::Blob(800));
                msg.set(3, Value::Interface(Some(block)));
                Ok(())
            }
            reader_m::GET_PROP_STREAM => {
                let store = self.store()?;
                let mut read = Message::new(vec![Value::Str("props".into()), Value::Null]);
                store.call(rt, STORE_READ_STREAM, &mut read)?;
                work(ctx, 15);
                msg.set(0, Value::Blob(blob_of(&read, 1)));
                Ok(())
            }
            reader_m::GET_TABLE_BATCH => {
                let (store, kind) = {
                    let state = self.state.lock();
                    (
                        state
                            .store
                            .clone()
                            .ok_or(ComError::App("reader not opened".to_string()))?,
                        state.kind.clone(),
                    )
                };
                let table = i4_of(msg, 0);
                let batch = if kind == "table" {
                    // Standalone tables: one file page per batch; the reader
                    // strips formatting metadata (TABLE_PAGE_BYTES →
                    // TABLE_BATCH_BYTES).
                    let mut read = Message::new(vec![Value::I4(table), Value::Null]);
                    store.call(rt, STORE_READ_PAGE, &mut read)?;
                    TABLE_BATCH_BYTES
                } else {
                    // Embedded table: a named stream in the text file.
                    let mut read = Message::new(vec![Value::Str("tbl".into()), Value::Null]);
                    store.call(rt, STORE_READ_STREAM, &mut read)?;
                    EMBEDDED_TABLE_BYTES
                };
                work(ctx, 25);
                msg.set(1, Value::Blob(batch));
                Ok(())
            }
            reader_m::GET_LINE_METRICS => {
                work(ctx, 2);
                msg.set(2, Value::Blob(128));
                Ok(())
            }
            reader_m::GET_TEMPLATE => {
                let store = self.store()?;
                let mut read = Message::new(vec![Value::Str("template".into()), Value::Null]);
                store.call(rt, STORE_READ_STREAM, &mut read)?;
                work(ctx, 10);
                msg.set(0, Value::Blob(blob_of(&read, 1)));
                Ok(())
            }
            _ => Err(ComError::App(format!("IDocReader has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        let state = self.state.lock();
        fingerprint_of(&(state.store.is_some(), &state.kind, state.pages))
    }
}

impl DocReader {
    fn store(&self) -> ComResult<InterfacePtr> {
        self.state
            .lock()
            .store
            .clone()
            .ok_or(ComError::App("reader not opened".to_string()))
    }
}

/// The text-properties provider: created directly from data in the file,
/// then queried constantly by layout — the second component the paper's
/// Figure 5 shows on the server.
struct TextProps {
    loaded: Mutex<u64>,
}

impl ComObject for TextProps {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                let reader = iface_of(msg, 0)?;
                let mut pull = Message::outputs(1);
                reader.call(ctx.rt(), reader_m::GET_PROP_STREAM, &mut pull)?;
                *self.loaded.lock() = blob_of(&pull, 0);
                work(ctx, 30);
                Ok(())
            }
            1 => {
                work(ctx, 2);
                msg.set(1, Value::Blob(96));
                Ok(())
            }
            2 => {
                // Route through the internal allocation hop.
                let me = ctx
                    .rt()
                    .make_ptr(ctx.self_id(), Iid::from_name("ITextProps"))?;
                let mut alloc = Message::outputs(1);
                me.call(ctx.rt(), 3, &mut alloc)?;
                msg.set(0, alloc.args[0].clone());
                Ok(())
            }
            3 => {
                let cache = ctx.create(
                    Clsid::from_name("OctFontCache"),
                    Iid::from_name("IFontCache"),
                )?;
                let mut init = Message::new(vec![Value::Blob(512)]);
                cache.call(ctx.rt(), 0, &mut init)?;
                work(ctx, 4);
                msg.set(0, Value::Interface(Some(cache)));
                Ok(())
            }
            _ => Err(ComError::App(format!("ITextProps has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&*self.loaded.lock())
    }
}

/// One paragraph's backing text block.
struct TextBlock;

impl ComObject for TextBlock {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                work(ctx, 2);
                Ok(())
            }
            1 => {
                work(ctx, 1);
                msg.set(2, Value::Blob(200));
                Ok(())
            }
            _ => Err(ComError::App(format!("ITextBlock has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64) // stateless flyweight
    }
}

/// Cached font metrics, allocated through the shared property set.
struct FontCache;

impl ComObject for FontCache {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                work(ctx, 2);
                Ok(())
            }
            1 => {
                work(ctx, 1);
                msg.set(1, Value::I4(11));
                Ok(())
            }
            _ => Err(ComError::App(format!("IFontCache has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64) // stateless flyweight
    }
}

/// A text run: takes its metrics from its paragraph's layout.
struct TextRun {
    layout: Mutex<Option<InterfacePtr>>,
}

impl ComObject for TextRun {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                let layout = iface_of(msg, 0)?;
                let mut q = Message::new(vec![Value::I4(0), Value::Null]);
                layout.call(ctx.rt(), 2, &mut q)?;
                *self.layout.lock() = Some(layout);
                work(ctx, 3);
                Ok(())
            }
            1 => {
                work(ctx, 2);
                msg.set(0, Value::I4(120));
                Ok(())
            }
            _ => Err(ComError::App(format!("ITextRun has no method {method}"))),
        }
    }
}

/// Paragraph layout: hammers the property set during initial layout and
/// queries the page view's geometry; participates in table negotiation.
struct ParaLayout {
    state: Mutex<LayoutState>,
}

#[derive(Default)]
struct LayoutState {
    props: Option<InterfacePtr>,
}

impl ComObject for ParaLayout {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        match method {
            0 => {
                let reader = iface_of(msg, 0)?;
                let props = iface_of(msg, 1)?;
                let view = iface_of(msg, 2)?;
                let view_calls = i4_of(msg, 3);
                let content = i4_of(msg, 4);
                // Line breaking scans the backing text through the reader.
                // The number of lines depends on the *content*, not the
                // instantiation context — the variance the paper notes no
                // classifier can predict.
                let lines = READER_QUERIES_PER_LAYOUT as i32 * 2 / 3
                    + (content * 31).rem_euclid(READER_QUERIES_PER_LAYOUT as i32 * 2 / 3);
                for line in 0..lines {
                    let mut q = Message::new(vec![Value::I4(0), Value::I4(line), Value::Null]);
                    reader.call(rt, reader_m::GET_LINE_METRICS, &mut q)?;
                }
                for key in 0..PROPS_QUERIES_PER_LAYOUT as i32 {
                    let mut q = Message::new(vec![Value::I4(key), Value::Null]);
                    props.call(rt, 1, &mut q)?;
                }
                // Font metrics come from a cache allocated through the
                // shared property set, then consulted locally.
                let mut mk = Message::outputs(1);
                props.call(rt, 2, &mut mk)?;
                if let Ok(cache) = iface_of(&mk, 0) {
                    for key in 0..3 {
                        let mut measure = Message::new(vec![Value::I4(key), Value::Null]);
                        cache.call(rt, 1, &mut measure)?;
                    }
                }
                for q in 0..view_calls {
                    let mut geo = Message::new(vec![Value::I4(q), Value::Null]);
                    view.call(rt, 0, &mut geo)?;
                }
                work(ctx, 40);
                self.state.lock().props = Some(props);
                Ok(())
            }
            1 => {
                let props = self
                    .state
                    .lock()
                    .props
                    .clone()
                    .ok_or(ComError::App("layout not initialized".to_string()))?;
                for key in 0..PROPS_QUERIES_PER_REFLOW as i32 {
                    let mut q = Message::new(vec![Value::I4(key), Value::Null]);
                    props.call(rt, 1, &mut q)?;
                }
                work(ctx, 15);
                msg.set(1, Value::Blob(512));
                Ok(())
            }
            2 => {
                work(ctx, 2);
                msg.set(1, Value::Blob(64));
                Ok(())
            }
            _ => Err(ComError::App(format!("ILayoutNeg has no method {method}"))),
        }
    }
}

/// A paragraph: pulls its text, builds its layout and runs, renders.
struct Paragraph;

impl ComObject for Paragraph {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        match method {
            0 => {
                let reader = iface_of(msg, 0)?;
                let props = iface_of(msg, 1)?;
                let view = iface_of(msg, 2)?;
                let page = i4_of(msg, 3);
                let idx = i4_of(msg, 4);
                let view_calls = i4_of(msg, 5);
                if page >= 0 {
                    let mut text = Message::new(vec![
                        Value::I4(page),
                        Value::I4(idx),
                        Value::Null,
                        Value::Null,
                    ]);
                    reader.call(rt, reader_m::GET_PARA_TEXT, &mut text)?;
                    // The paragraph keeps the block and re-reads ranges of
                    // it while shaping lines.
                    if let Ok(block) = iface_of(&text, 3) {
                        for i in 0..2 {
                            let mut range = Message::new(vec![
                                Value::I4(i * 100),
                                Value::I4(i * 100 + 99),
                                Value::Null,
                            ]);
                            block.call(rt, 1, &mut range)?;
                        }
                    }
                }
                let layout = ctx.create(
                    Clsid::from_name("OctParaLayout"),
                    Iid::from_name("ILayoutNeg"),
                )?;
                let mut init = Message::new(vec![
                    Value::Interface(Some(reader.clone())),
                    Value::Interface(Some(props.clone())),
                    Value::Interface(Some(view)),
                    Value::I4(view_calls),
                    Value::I4(page * 7 + idx * 13),
                ]);
                layout.call(rt, 0, &mut init)?;
                for _ in 0..RUNS_PER_PARA {
                    let run =
                        ctx.create(Clsid::from_name("OctTextRun"), Iid::from_name("ITextRun"))?;
                    let mut rinit = Message::new(vec![Value::Interface(Some(layout.clone()))]);
                    run.call(rt, 0, &mut rinit)?;
                    // The paragraph re-measures its runs during justification
                    // — the tight paragraph↔run coupling that keeps runs with
                    // their paragraph.
                    for _ in 0..2 {
                        let mut measure = Message::outputs(1);
                        run.call(rt, 1, &mut measure)?;
                    }
                }
                work(ctx, 20);
                msg.set(6, Value::Interface(Some(layout)));
                Ok(())
            }
            1 => {
                let view = iface_of(msg, 0)?;
                let mut draw = Message::new(vec![Value::Blob(400)]);
                view.call(rt, 1, &mut draw)?;
                work(ctx, 10);
                Ok(())
            }
            _ => Err(ComError::App(format!("IParagraph has no method {method}"))),
        }
    }
}

/// Placeholder for an unbuilt page.
struct PageStub;

impl ComObject for PageStub {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        _msg: &mut Message,
    ) -> ComResult<()> {
        work(ctx, 1);
        Ok(())
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64) // stateless placeholder
    }
}

/// The story: owns the document model and orchestrates layout.
struct Story;

impl Story {
    /// Creates one styled paragraph (the shared tail of the per-style
    /// builder methods).
    fn build_paragraph(&self, ctx: &CallCtx<'_>, msg: &mut Message) -> ComResult<()> {
        let rt = ctx.rt();
        let reader = iface_of(msg, 0)?;
        let props = iface_of(msg, 1)?;
        let view = iface_of(msg, 2)?;
        let page = i4_of(msg, 3);
        let idx = i4_of(msg, 4);
        let view_calls = i4_of(msg, 5);
        let para = ctx.create(
            Clsid::from_name("OctParagraph"),
            Iid::from_name("IParagraph"),
        )?;
        let mut init = Message::new(vec![
            Value::Interface(Some(reader)),
            Value::Interface(Some(props)),
            Value::Interface(Some(view)),
            Value::I4(page),
            Value::I4(idx),
            Value::I4(view_calls),
            Value::Null,
        ]);
        para.call(rt, 0, &mut init)?;
        if let Ok(layout) = iface_of(&init, 6) {
            msg.set(6, Value::Interface(Some(layout)));
        }
        msg.set(7, Value::Interface(Some(para)));
        Ok(())
    }
}

impl ComObject for Story {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        if (1..=4).contains(&method) {
            return self.build_paragraph(ctx, msg);
        }
        if method != 0 {
            return Err(ComError::App(format!("IStory has no method {method}")));
        }
        let rt = ctx.rt();
        let reader = iface_of(msg, 0)?;
        let props = iface_of(msg, 1)?;
        let view = iface_of(msg, 2)?;
        let pages = i4_of(msg, 3);
        let tables = i4_of(msg, 4);

        let mut outline = Message::outputs(1);
        reader.call(rt, reader_m::GET_OUTLINE, &mut outline)?;
        work(ctx, 30);

        // With embedded tables, page placement is global: every page gets
        // real paragraphs (and enters negotiation). Text-only documents
        // build the displayed page and stub the rest.
        let negotiating = tables > 0;
        // Text-only documents build exactly the displayed page (new
        // documents get one empty page); negotiating documents lay out all
        // pages because tables shift text globally.
        let built_pages = if negotiating { pages.max(1) } else { 1 };
        let view_calls = if negotiating {
            VIEW_CALLS_MIXED
        } else {
            VIEW_CALLS_TEXT
        };

        // Paragraphs route through the style-specific builder methods —
        // each style is a different internal code path of the story, so
        // the instantiation contexts of paragraphs, layouts, and runs
        // differ by style.
        let me = rt.make_ptr(ctx.self_id(), Iid::from_name("IStory"))?;
        let mut paragraphs = Vec::new();
        let mut layouts = Vec::new();
        for page in 0..built_pages {
            for idx in 0..PARAS_PER_PAGE as i32 {
                let style_method = 1 + (idx as u32 % 4);
                let mut build = Message::new(vec![
                    Value::Interface(Some(reader.clone())),
                    Value::Interface(Some(props.clone())),
                    Value::Interface(Some(view.clone())),
                    Value::I4(if pages == 0 { -1 } else { page }),
                    Value::I4(idx),
                    Value::I4(view_calls),
                    Value::Null,
                    Value::Null,
                ]);
                me.call(rt, style_method, &mut build)?;
                if let Ok(layout) = iface_of(&build, 6) {
                    layouts.push(layout);
                }
                if let Ok(para) = iface_of(&build, 7) {
                    paragraphs.push(para);
                }
            }
        }
        for page in built_pages..pages {
            let stub = ctx.create(Clsid::from_name("OctPageStub"), Iid::from_name("IPageStub"))?;
            let mut init = Message::new(vec![Value::I4(page)]);
            stub.call(rt, 0, &mut init)?;
        }

        if negotiating {
            let layout_values: Vec<Value> = layouts
                .iter()
                .map(|l| Value::Interface(Some(l.clone())))
                .collect();
            for t in 0..tables {
                let model = ctx.create(
                    Clsid::from_name("OctTableModel"),
                    Iid::from_name("ITableModel"),
                )?;
                let mut init = Message::new(vec![
                    Value::Interface(Some(reader.clone())),
                    Value::Interface(Some(view.clone())),
                    Value::I4(t),
                    Value::I4(1),
                    Value::I4(VIEW_CALLS_TABLE_MIXED),
                ]);
                model.call(rt, 0, &mut init)?;
                let mut neg = Message::new(vec![
                    Value::Interface(Some(props.clone())),
                    Value::Array(layout_values.clone()),
                    Value::I4(NEGOTIATION_ROUNDS),
                ]);
                model.call(rt, 1, &mut neg)?;
                // The table appears in the flow: a GUI frame renders a few
                // of its rows.
                let frame = ctx.create(
                    Clsid::from_name("OctTableFrame"),
                    Iid::from_name("ITableFrame"),
                )?;
                let mut show = Message::new(vec![
                    Value::Interface(Some(model.clone())),
                    Value::I4(0),
                    Value::I4(EMBEDDED_ROWS),
                ]);
                frame.call(rt, 0, &mut show)?;
            }
        }

        // Paint the visible page.
        for para in paragraphs.iter().take(PARAS_PER_PAGE) {
            let mut render = Message::new(vec![Value::Interface(Some(view.clone()))]);
            para.call(rt, 1, &mut render)?;
        }
        Ok(())
    }
}

/// The table model: pulls table data through the reader, balances columns
/// against the view, negotiates page placement with text layouts.
struct TableModel {
    state: Mutex<TableState>,
}

#[derive(Default)]
struct TableState {
    batches: Vec<InterfacePtr>,
    cell_sets: Vec<InterfacePtr>,
}

impl ComObject for TableModel {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        match method {
            0 => {
                let reader = iface_of(msg, 0)?;
                let view = iface_of(msg, 1)?;
                let table = i4_of(msg, 2);
                let pages = i4_of(msg, 3).max(1);
                let view_calls = i4_of(msg, 4);

                // Pull the table content, one batch per page, and hand each
                // batch to a row-batch component.
                let mut batches = Vec::new();
                for p in 0..pages {
                    let mut pull = Message::new(vec![Value::I4(table + p), Value::Null]);
                    reader.call(rt, reader_m::GET_TABLE_BATCH, &mut pull)?;
                    let size = blob_of(&pull, 1);
                    let batch =
                        ctx.create(Clsid::from_name("OctRowBatch"), Iid::from_name("IRowBatch"))?;
                    let mut init = Message::new(vec![Value::Blob(size.saturating_sub(8_000))]);
                    batch.call(rt, 0, &mut init)?;
                    batches.push(batch);
                }

                // Cell sets: row groups placed as units during negotiation.
                let mut cell_sets = Vec::new();
                for _ in 0..CELL_SETS_PER_TABLE {
                    let cells =
                        ctx.create(Clsid::from_name("OctCellSet"), Iid::from_name("ICellSet"))?;
                    let mut init = Message::new(vec![Value::Blob(2_000)]);
                    cells.call(rt, 0, &mut init)?;
                    cell_sets.push(cells);
                }

                // Column statistics and balancing against the viewport.
                let mut cols = Vec::new();
                for _ in 0..TABLE_COLUMNS {
                    let col = ctx.create(
                        Clsid::from_name("OctTableColumn"),
                        Iid::from_name("ITableCol"),
                    )?;
                    let mut init = Message::new(vec![Value::Blob(1_000)]);
                    col.call(rt, 0, &mut init)?;
                    for q in 0..view_calls {
                        let mut geo = Message::new(vec![Value::I4(q), Value::Null]);
                        view.call(rt, 0, &mut geo)?;
                    }
                    for round in 0..3 {
                        let mut bal = Message::new(vec![Value::I4(round), Value::Null]);
                        col.call(rt, 1, &mut bal)?;
                    }
                    cols.push(col);
                }
                work(ctx, 60);
                let mut state = self.state.lock();
                state.batches = batches;
                state.cell_sets = cell_sets;
                Ok(())
            }
            1 => {
                let props = iface_of(msg, 0)?;
                let layouts: Vec<InterfacePtr> = match msg.arg(1) {
                    Some(Value::Array(items)) => items
                        .iter()
                        .filter_map(|v| v.as_interface().cloned())
                        .collect(),
                    _ => Vec::new(),
                };
                let rounds = i4_of(msg, 2);
                let cell_sets: Vec<InterfacePtr> = self.state.lock().cell_sets.clone();
                for round in 0..rounds {
                    for layout in &layouts {
                        let mut reflow = Message::new(vec![Value::I4(round), Value::Null]);
                        layout.call(rt, 1, &mut reflow)?;
                    }
                    for cells in &cell_sets {
                        let mut place = Message::new(vec![Value::I4(round), Value::Null]);
                        cells.call(rt, 1, &mut place)?;
                    }
                    for key in 0..10 {
                        let mut q = Message::new(vec![Value::I4(key), Value::Null]);
                        props.call(rt, 1, &mut q)?;
                    }
                    work(ctx, 25);
                }
                Ok(())
            }
            2 => {
                let page = i4_of(msg, 0) as usize;
                let batch = self
                    .state
                    .lock()
                    .batches
                    .get(page)
                    .cloned()
                    .ok_or(ComError::App(format!("no batch for page {page}")))?;
                let row = i4_of(msg, 1);
                let mut pull = Message::new(vec![Value::I4(row), Value::Null]);
                batch.call(rt, 1, &mut pull)?;
                work(ctx, 3);
                msg.set(2, Value::Blob(blob_of(&pull, 1)));
                Ok(())
            }
            _ => Err(ComError::App(format!("ITableModel has no method {method}"))),
        }
    }
}

/// One table column.
struct TableColumn;

impl ComObject for TableColumn {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                work(ctx, 4);
                Ok(())
            }
            1 => {
                work(ctx, 2);
                msg.set(1, Value::I4(72));
                Ok(())
            }
            _ => Err(ComError::App(format!("ITableCol has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64) // stateless flyweight
    }
}

/// A negotiated row group of table cells.
struct CellSet;

impl ComObject for CellSet {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                work(ctx, 3);
                Ok(())
            }
            1 => {
                work(ctx, 2);
                msg.set(1, Value::Blob(48));
                Ok(())
            }
            _ => Err(ComError::App(format!("ICellSet has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64) // stateless flyweight
    }
}

/// Holds one page of table rows.
struct RowBatch {
    bytes: Mutex<u64>,
}

impl ComObject for RowBatch {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                *self.bytes.lock() = blob_of(msg, 0);
                work(ctx, 8);
                Ok(())
            }
            1 => {
                work(ctx, 2);
                msg.set(1, Value::Blob(3_000));
                Ok(())
            }
            _ => Err(ComError::App(format!("IRowBatch has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&*self.bytes.lock())
    }
}

/// The on-screen table grid (GUI): pulls displayed rows from the model.
struct TableFrame;

impl ComObject for TableFrame {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        if method != 0 {
            return Err(ComError::App(format!("ITableFrame has no method {method}")));
        }
        let rt = ctx.rt();
        let model = iface_of(msg, 0)?;
        let page = i4_of(msg, 1);
        let rows = i4_of(msg, 2);
        for row in 0..rows {
            let mut pull = Message::new(vec![Value::I4(page), Value::I4(row), Value::Null]);
            model.call(rt, 2, &mut pull)?;
            work(ctx, 4);
        }
        work(ctx, 20);
        Ok(())
    }
}

/// Sheet-music components: a sheet of staves of note runs.
struct MusicSheet;

impl ComObject for MusicSheet {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        if method != 0 {
            return Err(ComError::App(format!("IMusicSheet has no method {method}")));
        }
        let rt = ctx.rt();
        let reader = iface_of(msg, 0)?;
        let view = iface_of(msg, 1)?;
        // The sheet reads the (small) notation properties; the template
        // itself was already pulled by the document manager.
        let mut props = Message::outputs(1);
        reader.call(rt, reader_m::GET_PROP_STREAM, &mut props)?;
        for _ in 0..2 {
            let staff = ctx.create(Clsid::from_name("OctStaff"), Iid::from_name("IStaff"))?;
            let mut init = Message::new(vec![
                Value::Blob(2_000),
                Value::Interface(Some(view.clone())),
            ]);
            staff.call(rt, 0, &mut init)?;
        }
        work(ctx, 30);
        Ok(())
    }
}

/// One musical staff.
struct Staff;

impl ComObject for Staff {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        if method != 0 {
            return Err(ComError::App(format!("IStaff has no method {method}")));
        }
        let rt = ctx.rt();
        let view = iface_of(msg, 1)?;
        for _ in 0..8 {
            let run = ctx.create(Clsid::from_name("OctNoteRun"), Iid::from_name("INoteRun"))?;
            let mut init = Message::new(vec![Value::Blob(256)]);
            run.call(rt, 0, &mut init)?;
        }
        let mut draw = Message::new(vec![Value::Blob(300)]);
        view.call(rt, 2, &mut draw)?;
        work(ctx, 15);
        Ok(())
    }
}

/// One run of notes.
struct NoteRun;

impl ComObject for NoteRun {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        _msg: &mut Message,
    ) -> ComResult<()> {
        work(ctx, 2);
        Ok(())
    }
}

/// The page view: geometry queries and draw sink (GUI-pinned).
struct PageView;

impl ComObject for PageView {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                work(ctx, 1);
                msg.set(1, Value::Blob(64));
                Ok(())
            }
            1 | 2 => {
                work(ctx, 4);
                Ok(())
            }
            _ => Err(ComError::App(format!("IPageView has no method {method}"))),
        }
    }
}

/// The document manager: opens documents end to end.
struct DocManager;

impl ComObject for DocManager {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        let kind = match method {
            0 => "text",
            1 => "table",
            2 => "both",
            3 => "music",
            4 => "newtext",
            5 => "newtable",
            6 => "newmusic",
            other => return Err(ComError::App(format!("IDocMgr has no method {other}"))),
        }
        .to_string();
        let pages = i4_of(msg, 0);
        let tables = i4_of(msg, 1);
        let view = iface_of(msg, 2)?;

        let reader = ctx.create(
            Clsid::from_name("OctDocReader"),
            Iid::from_name("IDocReader"),
        )?;
        let (store_kind, is_new) = match kind.as_str() {
            "newtext" => ("text", true),
            "newmusic" => ("music", true),
            "newtable" => ("table", true),
            other => (other, false),
        };
        let mut open = Message::new(vec![
            Value::Str(store_kind.to_string()),
            Value::I4(if is_new { 0 } else { pages }),
        ]);
        reader.call(rt, reader_m::OPEN, &mut open)?;
        if is_new {
            let mut template = Message::outputs(1);
            reader.call(rt, reader_m::GET_TEMPLATE, &mut template)?;
        }

        match store_kind {
            "music" => {
                let sheet = ctx.create(
                    Clsid::from_name("OctMusicSheet"),
                    Iid::from_name("IMusicSheet"),
                )?;
                let mut init = Message::new(vec![
                    Value::Interface(Some(reader)),
                    Value::Interface(Some(view)),
                ]);
                sheet.call(rt, 0, &mut init)?;
            }
            "table" if !is_new => {
                let model = ctx.create(
                    Clsid::from_name("OctTableModel"),
                    Iid::from_name("ITableModel"),
                )?;
                let mut init = Message::new(vec![
                    Value::Interface(Some(reader)),
                    Value::Interface(Some(view.clone())),
                    Value::I4(0),
                    Value::I4(pages),
                    Value::I4(VIEW_CALLS_TABLE),
                ]);
                model.call(rt, 0, &mut init)?;
                let frame = ctx.create(
                    Clsid::from_name("OctTableFrame"),
                    Iid::from_name("ITableFrame"),
                )?;
                let mut show = Message::new(vec![
                    Value::Interface(Some(model)),
                    Value::I4(0),
                    Value::I4(DISPLAY_ROWS),
                ]);
                frame.call(rt, 0, &mut show)?;
            }
            _ => {
                // Text, mixed, and freshly created documents flow through
                // the story.
                let props = ctx.create(
                    Clsid::from_name("OctTextProps"),
                    Iid::from_name("ITextProps"),
                )?;
                let mut pinit = Message::new(vec![Value::Interface(Some(reader.clone()))]);
                props.call(rt, 0, &mut pinit)?;
                let story = ctx.create(Clsid::from_name("OctStory"), Iid::from_name("IStory"))?;
                let mut build = Message::new(vec![
                    Value::Interface(Some(reader)),
                    Value::Interface(Some(props)),
                    Value::Interface(Some(view)),
                    Value::I4(if is_new { 0 } else { pages }),
                    Value::I4(tables),
                ]);
                story.call(rt, 0, &mut build)?;
            }
        }
        work(ctx, 25);
        Ok(())
    }
}

/// Registers every Octarine document component class. Returns the count.
pub fn register(rt: &ComRuntime) -> usize {
    use crate::common::register_file_store;
    let reg = rt.registry();
    register_file_store(
        rt,
        "OctTextStore",
        256,
        TEXT_PAGE_BYTES,
        vec![
            ("props", PROP_STREAM_BYTES),
            ("template", 150_000),
            ("tbl", EMBEDDED_TABLE_BYTES + 2_000),
        ],
    );
    register_file_store(
        rt,
        "OctTableStore",
        256,
        TABLE_PAGE_BYTES,
        vec![("props", 4_000), ("template", 2_000)],
    );
    register_file_store(
        rt,
        "OctMusicStore",
        8,
        40_000,
        vec![("props", 8_000), ("template", 140_000)],
    );

    reg.register(
        "OctDocReader",
        vec![idoc_reader()],
        ApiImports::NONE,
        |_, _| {
            Arc::new(DocReader {
                state: Mutex::new(ReaderState::default()),
            })
        },
    );
    reg.register(
        "OctTextProps",
        vec![itext_props()],
        ApiImports::NONE,
        |_, _| {
            Arc::new(TextProps {
                loaded: Mutex::new(0),
            })
        },
    );
    reg.register(
        "OctFontCache",
        vec![ifont_cache()],
        ApiImports::NONE,
        |_, _| Arc::new(FontCache),
    );
    reg.register(
        "OctTextBlock",
        vec![itext_block()],
        ApiImports::NONE,
        |_, _| Arc::new(TextBlock),
    );
    reg.register("OctStory", vec![istory()], ApiImports::NONE, |_, _| {
        Arc::new(Story)
    });
    reg.register(
        "OctParagraph",
        vec![iparagraph()],
        ApiImports::NONE,
        |_, _| Arc::new(Paragraph),
    );
    reg.register(
        "OctParaLayout",
        vec![ilayout_neg()],
        ApiImports::NONE,
        |_, _| {
            Arc::new(ParaLayout {
                state: Mutex::new(LayoutState::default()),
            })
        },
    );
    reg.register("OctTextRun", vec![itext_run()], ApiImports::NONE, |_, _| {
        Arc::new(TextRun {
            layout: Mutex::new(None),
        })
    });
    reg.register(
        "OctPageStub",
        vec![ipage_stub()],
        ApiImports::NONE,
        |_, _| Arc::new(PageStub),
    );
    reg.register(
        "OctTableModel",
        vec![itable_model()],
        ApiImports::NONE,
        |_, _| {
            Arc::new(TableModel {
                state: Mutex::new(TableState::default()),
            })
        },
    );
    reg.register(
        "OctTableColumn",
        vec![itable_col()],
        ApiImports::NONE,
        |_, _| Arc::new(TableColumn),
    );
    reg.register("OctCellSet", vec![icell_set()], ApiImports::NONE, |_, _| {
        Arc::new(CellSet)
    });
    reg.register(
        "OctRowBatch",
        vec![irow_batch()],
        ApiImports::NONE,
        |_, _| {
            Arc::new(RowBatch {
                bytes: Mutex::new(0),
            })
        },
    );
    reg.register(
        "OctTableFrame",
        vec![itable_frame()],
        ApiImports::GUI,
        |_, _| Arc::new(TableFrame),
    );
    reg.register(
        "OctMusicSheet",
        vec![imusic_sheet()],
        ApiImports::NONE,
        |_, _| Arc::new(MusicSheet),
    );
    reg.register("OctStaff", vec![istaff()], ApiImports::NONE, |_, _| {
        Arc::new(Staff)
    });
    reg.register("OctNoteRun", vec![inote_run()], ApiImports::NONE, |_, _| {
        Arc::new(NoteRun)
    });
    reg.register(
        "OctPageView",
        vec![ipage_view()],
        ApiImports::GUI,
        |_, _| Arc::new(PageView),
    );
    // The document manager drives file-open dialogs and progress UI, so its
    // binary imports GUI APIs — static analysis pins it to the client.
    reg.register(
        "OctDocManager",
        vec![idoc_mgr()],
        ApiImports::GUI,
        |_, _| Arc::new(DocManager),
    );
    20
}
