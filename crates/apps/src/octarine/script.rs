//! Scenario scripts — the Visual Test analog.
//!
//! "For advanced profiling, scenarios can be driven by an automated testing
//! tool, such as Visual Test" (§2). This module gives Octarine a small,
//! line-oriented scenario-script language so profiling runs can be authored
//! as data instead of code:
//!
//! ```text
//! # open a 35-page text document, let the app idle, repaint
//! open text 35
//! idle 2
//! paint
//! open both 5 tables=11
//! new music
//! ```
//!
//! Commands:
//! * `open <text|table|both|music> <pages> [tables=N]` — open a document.
//! * `new <text|table|music>` — create a fresh document from a template.
//! * `idle <rounds>` — pump the idle loop.
//! * `paint` — repaint the window forest.
//! * `#` — comment; blank lines are ignored.

use crate::common::{call, IDLE_PUMP, WIDGET_PAINT};
use coign_com::{Clsid, ComError, ComResult, ComRuntime, Iid, InterfacePtr, Value};

/// One parsed script command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// Open an existing document: `(kind, pages, embedded tables)`.
    Open(String, i32, i32),
    /// Create a new document of the given kind.
    New(String),
    /// Pump the idle loop for `n` rounds.
    Idle(i32),
    /// Repaint the application window.
    Paint,
}

/// Parses a scenario script. Errors name the offending line.
pub fn parse_script(text: &str) -> ComResult<Vec<ScriptOp>> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fail = |what: &str| {
            Err(ComError::App(format!(
                "script line {}: {what}: `{line}`",
                lineno + 1
            )))
        };
        let mut words = line.split_whitespace();
        match words.next() {
            Some("open") => {
                let Some(kind) = words.next() else {
                    return fail("missing document kind");
                };
                if !["text", "table", "both", "music"].contains(&kind) {
                    return fail("unknown document kind");
                }
                let Some(pages) = words.next().and_then(|w| w.parse::<i32>().ok()) else {
                    return fail("missing or invalid page count");
                };
                if pages < 0 {
                    return fail("negative page count");
                }
                let mut tables = 0;
                if let Some(extra) = words.next() {
                    match extra
                        .strip_prefix("tables=")
                        .and_then(|v| v.parse::<i32>().ok())
                    {
                        Some(t) if t >= 0 => tables = t,
                        _ => return fail("expected `tables=N`"),
                    }
                }
                ops.push(ScriptOp::Open(kind.to_string(), pages, tables));
            }
            Some("new") => {
                let Some(kind) = words.next() else {
                    return fail("missing document kind");
                };
                if !["text", "table", "music"].contains(&kind) {
                    return fail("unknown document kind");
                }
                ops.push(ScriptOp::New(kind.to_string()));
            }
            Some("idle") => {
                let Some(rounds) = words.next().and_then(|w| w.parse::<i32>().ok()) else {
                    return fail("missing or invalid round count");
                };
                ops.push(ScriptOp::Idle(rounds));
            }
            Some("paint") => ops.push(ScriptOp::Paint),
            _ => return fail("unknown command"),
        }
        if words.next().is_some() && !matches!(ops.last(), Some(ScriptOp::Open(..))) {
            return fail("trailing tokens");
        }
    }
    Ok(ops)
}

/// Executes parsed script operations against a runtime with Octarine's
/// classes registered. Builds the application shell first, like every
/// built-in scenario.
pub fn run_ops(rt: &ComRuntime, ops: &[ScriptOp]) -> ComResult<()> {
    let (window, idle) = super::build_shell(rt)?;
    let manager =
        rt.create_instance(Clsid::from_name("OctDocManager"), Iid::from_name("IDocMgr"))?;
    for op in ops {
        match op {
            ScriptOp::Open(kind, pages, tables) => {
                open_document(rt, &manager, kind, *pages, *tables)?;
            }
            ScriptOp::New(kind) => {
                open_document(rt, &manager, &format!("new{kind}"), 0, 0)?;
            }
            ScriptOp::Idle(rounds) => {
                call(rt, &idle, IDLE_PUMP, vec![Value::I4(*rounds)])?;
            }
            ScriptOp::Paint => {
                call(rt, &window, WIDGET_PAINT, vec![])?;
            }
        }
    }
    Ok(())
}

fn open_document(
    rt: &ComRuntime,
    manager: &InterfacePtr,
    kind: &str,
    pages: i32,
    tables: i32,
) -> ComResult<()> {
    let view = rt.create_instance(Clsid::from_name("OctPageView"), Iid::from_name("IPageView"))?;
    call(
        rt,
        manager,
        super::components::doc_mgr_method(kind),
        vec![
            Value::I4(pages),
            Value::I4(tables),
            Value::Interface(Some(view)),
        ],
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Octarine;
    use coign::application::Application;

    #[test]
    fn parse_accepts_the_command_set() {
        let ops = parse_script(
            "# comment\n\
             open text 35\n\
             \n\
             idle 2\n\
             paint\n\
             open both 5 tables=11\n\
             new music\n",
        )
        .unwrap();
        assert_eq!(
            ops,
            vec![
                ScriptOp::Open("text".into(), 35, 0),
                ScriptOp::Idle(2),
                ScriptOp::Paint,
                ScriptOp::Open("both".into(), 5, 11),
                ScriptOp::New("music".into()),
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "open",
            "open pdf 5",
            "open text",
            "open text five",
            "open text -3",
            "open text 5 rows=3",
            "idle",
            "idle many",
            "launch missiles",
            "new",
            "new spreadsheet",
        ] {
            let err = parse_script(bad).unwrap_err();
            assert!(err.to_string().contains("script line 1"), "{bad:?} → {err}");
        }
    }

    #[test]
    fn scripts_execute_like_scenarios() {
        // The script equivalent of o_oldwp0 creates the same population as
        // the built-in scenario.
        let script = "open text 5\nidle 2\npaint\n";
        let rt = ComRuntime::single_machine();
        Octarine.register(&rt);
        run_ops(&rt, &parse_script(script).unwrap()).unwrap();
        let scripted = rt.instance_count();

        let rt2 = ComRuntime::single_machine();
        Octarine.register(&rt2);
        Octarine.run_scenario(&rt2, "o_oldwp0").unwrap();
        assert_eq!(scripted, rt2.instance_count());
    }

    #[test]
    fn scripts_compose_multiple_documents() {
        let script = "new text\nopen table 5\nidle 1\npaint\nopen both 2 tables=3\n";
        let rt = ComRuntime::single_machine();
        Octarine.register(&rt);
        run_ops(&rt, &parse_script(script).unwrap()).unwrap();
        assert!(rt.instance_count() > 400);
    }
}
