//! Octarine's GUI forest.
//!
//! Octarine was "designed as a prototype to explore the limits of component
//! granularity": its GUI is literally hundreds of components. This module
//! registers the widget-class catalog. The classes matter for the
//! experiments in three ways: they dominate instance counts (Figures 5, 7,
//! 8 all show a large client-side mass), their window-site links are
//! non-remotable (the black GUI edges in Figure 5), and their idle-loop
//! transients (tooltips, undo records, accessibility nodes) exercise the
//! instance classifiers with same-procedure/different-instance call chains.

use crate::common::{register_gui_class, register_idle_loop, register_theme_engine, GuiSpec};
use coign_com::ComRuntime;

/// Registers every Octarine GUI class. Returns the number registered.
pub fn register(rt: &ComRuntime) -> usize {
    let mut count = 0;
    let mut gui = |name: &str, spec: GuiSpec| {
        register_gui_class(rt, name, spec);
        count += 1;
    };

    // Transient classes spawned from idle callbacks.
    gui("OctTooltip", GuiSpec::default());
    gui("OctUndoRecord", GuiSpec::default());
    gui("OctAccessNode", GuiSpec::default());
    gui("OctGlyphCache", GuiSpec::default());

    // Leaf widgets.
    gui(
        "OctMenuItem",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 3,
            paint_cost_us: 2,
            idle_spawn: Some("OctTooltip"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctMenuSeparator",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctToolButton",
        GuiSpec {
            notify_parent: 2,
            build_cost_us: 4,
            paint_cost_us: 3,
            idle_spawn: Some("OctTooltip"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctToolSeparator",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctStatusPane",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 2,
            idle_spawn: Some("OctGlyphCache"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctPaletteItem",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 2,
            idle_spawn: Some("OctTooltip"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctRuler",
        GuiSpec {
            notify_parent: 2,
            build_cost_us: 5,
            paint_cost_us: 4,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctScrollBar",
        GuiSpec {
            notify_parent: 2,
            build_cost_us: 3,
            paint_cost_us: 2,
            idle_spawn: Some("OctGlyphCache"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctCaret",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctSelectionMgr",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctUndoStack",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 2,
            idle_spawn: Some("OctUndoRecord"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctAccessBridge",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 2,
            idle_spawn: Some("OctAccessNode"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctLineGauge",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );

    // Menus: six distinct classes sharing item classes — PCB/STCB see the
    // menu class, IFCB additionally separates instances.
    for menu in [
        "OctFileMenu",
        "OctEditMenu",
        "OctViewMenu",
        "OctInsertMenu",
        "OctFormatMenu",
        "OctHelpMenu",
    ] {
        gui(
            menu,
            GuiSpec {
                children: vec![("OctMenuItem", 10), ("OctMenuSeparator", 2)],
                notify_parent: 1,
                build_cost_us: 5,
                paint_cost_us: 3,
                ..GuiSpec::default()
            },
        );
    }

    gui(
        "OctMenuBar",
        GuiSpec {
            children: vec![
                ("OctFileMenu", 1),
                ("OctEditMenu", 1),
                ("OctViewMenu", 1),
                ("OctInsertMenu", 1),
                ("OctFormatMenu", 1),
                ("OctHelpMenu", 1),
            ],
            notify_parent: 1,
            build_cost_us: 8,
            paint_cost_us: 4,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctToolbar",
        GuiSpec {
            children: vec![("OctToolButton", 16), ("OctToolSeparator", 3)],
            notify_parent: 1,
            build_cost_us: 6,
            paint_cost_us: 4,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctStatusBar",
        GuiSpec {
            children: vec![("OctStatusPane", 6)],
            notify_parent: 1,
            build_cost_us: 3,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctPanelTab",
        GuiSpec {
            children: vec![("OctPaletteItem", 12)],
            notify_parent: 1,
            build_cost_us: 3,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctSidePanel",
        GuiSpec {
            children: vec![("OctPanelTab", 3)],
            notify_parent: 1,
            build_cost_us: 4,
            paint_cost_us: 3,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctDocFrame",
        GuiSpec {
            children: vec![
                ("OctRuler", 2),
                ("OctScrollBar", 2),
                ("OctCaret", 1),
                ("OctSelectionMgr", 1),
                ("OctUndoStack", 1),
                ("OctAccessBridge", 1),
                ("OctLineGauge", 8),
            ],
            notify_parent: 2,
            build_cost_us: 10,
            paint_cost_us: 6,
            ..GuiSpec::default()
        },
    );
    // Dialog and auxiliary panels: each a distinct component class, built
    // with the window like any commercial word processor's chrome.
    gui(
        "OctFindField",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctFindBar",
        GuiSpec {
            children: vec![("OctFindField", 2), ("OctToolButton", 3)],
            notify_parent: 1,
            build_cost_us: 3,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctSpellSquiggle",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctSpellPanel",
        GuiSpec {
            children: vec![("OctSpellSquiggle", 6)],
            notify_parent: 1,
            build_cost_us: 3,
            paint_cost_us: 2,
            idle_spawn: Some("OctGlyphCache"),
        },
    );
    gui(
        "OctStyleChip",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctStyleGallery",
        GuiSpec {
            children: vec![("OctStyleChip", 9)],
            notify_parent: 1,
            build_cost_us: 3,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctHeaderEditor",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctFooterEditor",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctZoomSlider",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            idle_spawn: Some("OctTooltip"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctPageThumb",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctThumbStrip",
        GuiSpec {
            children: vec![("OctPageThumb", 6)],
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    gui(
        "OctWordCounter",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            idle_spawn: Some("OctGlyphCache"),
            ..GuiSpec::default()
        },
    );
    gui(
        "OctOutlinePane",
        GuiSpec {
            children: vec![("OctPageThumb", 3)],
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );

    gui(
        "OctAppWindow",
        GuiSpec {
            children: vec![
                ("OctMenuBar", 1),
                ("OctToolbar", 2),
                ("OctStatusBar", 1),
                ("OctSidePanel", 2),
                ("OctDocFrame", 1),
                ("OctFindBar", 1),
                ("OctSpellPanel", 1),
                ("OctStyleGallery", 1),
                ("OctHeaderEditor", 1),
                ("OctFooterEditor", 1),
                ("OctZoomSlider", 1),
                ("OctThumbStrip", 1),
                ("OctWordCounter", 1),
                ("OctOutlinePane", 1),
            ],
            notify_parent: 0,
            build_cost_us: 20,
            paint_cost_us: 10,
            ..GuiSpec::default()
        },
    );

    register_idle_loop(rt, "OctIdleLoop", Some("OctThemeEngine"));
    register_theme_engine(rt, "OctThemeEngine");
    count += 2;
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{call, WIDGET_BUILD};
    use coign_com::{Clsid, Iid, Value};

    #[test]
    fn app_window_builds_a_few_hundred_widgets() {
        let rt = ComRuntime::single_machine();
        register(&rt);
        let window = rt
            .create_instance(Clsid::from_name("OctAppWindow"), Iid::from_name("IWidget"))
            .unwrap();
        call(&rt, &window, WIDGET_BUILD, vec![Value::Interface(None)]).unwrap();
        let n = rt.instance_count();
        assert!(
            (150..600).contains(&n),
            "GUI forest should be a few hundred widgets, got {n}"
        );
    }
}
