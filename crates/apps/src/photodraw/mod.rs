//! PhotoDraw — the consumer image composer.
//!
//! A synthetic reconstruction of Microsoft PhotoDraw 2000 as the paper
//! describes it: 112 component classes, a composition reader, high-level
//! property sets created directly from data in the file, and a hierarchy of
//! **sprite caches** that pass pixels between themselves and the UI through
//! shared-memory regions — opaque pointers that make their interfaces
//! non-remotable and constrain Coign's distribution (Figure 4: of 295
//! components, only the reader and seven property sets can usefully move).

use crate::common::{
    blob_of, call, fingerprint_of, i4_of, iface_of, register_gui_class, register_idle_loop,
    register_theme_engine, work, GuiSpec, IDLE_PUMP, STORE_READ_PAGE, STORE_READ_STREAM,
    WIDGET_BUILD, WIDGET_PAINT, WIDGET_REGISTER_IDLE,
};
use coign::application::Application;
use coign_com::idl::{InterfaceBuilder, InterfaceDesc};
use coign_com::{
    ApiImports, AppImage, CallCtx, Clsid, ComError, ComObject, ComResult, ComRuntime, Iid,
    InterfacePtr, Message, PType, Value,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Pixel chunk size, bytes.
pub const CHUNK_BYTES: u64 = 100_000;
/// Number of property sets in a composition.
pub const PROP_SETS: usize = 7;
/// Sprite-cache fanout (root → children → grandchildren).
pub const SPRITE_FANOUT: usize = 3;
/// Property queries the UI sends each property set.
pub const PROP_QUERIES: i32 = 4;

/// `IPdReader`: the composition reader. `Open` loads the file; the chunk
/// and stream accessors afterwards only read it.
pub fn ipd_reader() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IPdReader")
        .method("Open", |m| m.input("doc", PType::Str).mutates_state())
        .method("GetChunk", |m| {
            m.input("i", PType::I4)
                .output("pixels", PType::Blob)
                .reads_state()
        })
        .method("GetPropStream", |m| {
            m.input("name", PType::Str)
                .output("data", PType::Blob)
                .reads_state()
        })
        .method("ChunkCount", |m| m.output("n", PType::I4).reads_state())
        .build()
}

/// `IPdPropSet`: a high-level property set — a read-only projection of
/// data in the file, so the replication lints prove the class legal to
/// duplicate (these are the seven components Figure 4 moves).
pub fn ipd_prop_set() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IPdPropSet")
        .method("Init", |m| {
            m.input("reader", PType::Interface(Iid::from_name("IPdReader")))
                .input("stream", PType::Str)
                .reads_state()
        })
        .method("Query", |m| {
            m.input("key", PType::I4)
                .output("value", PType::Blob)
                .pure()
        })
        .build()
}

/// `ISprite`: sprite-cache construction and painting (remotable part).
pub fn isprite() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ISprite")
        .method("Build", |m| {
            m.input("reader", PType::Interface(Iid::from_name("IPdReader")))
                .input("canvas", PType::Interface(Iid::from_name("IBlitSink")))
                .input("depth", PType::I4)
                .input("chunk", PType::I4)
                .mutates_state()
        })
        .method("Compose", |m| m.output("regions", PType::I4).reads_state())
        .build()
}

/// `ISharedRegion`: pixel hand-off through shared memory — **non-remotable**.
pub fn ishared_region() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ISharedRegion")
        .method("Share", |m| {
            m.input("region", PType::Opaque).input("len", PType::I4)
        })
        .build()
}

/// `IBlitSink`: the canvas the sprites blit into — **non-remotable**.
pub fn iblit_sink() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IBlitSink")
        .method("Blit", |m| m.input("region", PType::Opaque))
        .build()
}

/// `ISelection`: the marquee tool — tracks a selected image subset.
pub fn iselection() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ISelection")
        .method("Select", |m| {
            m.input("canvas", PType::Interface(Iid::from_name("IBlitSink")))
                .input("rect", PType::Blob)
        })
        .method("Region", |m| m.output("region", PType::Opaque))
        .build()
}

/// `ITransform`: an image transform applied to a selection — the pixels
/// travel through shared memory, so the interface is **non-remotable**.
pub fn itransform() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ITransform")
        .method("Apply", |m| {
            m.input("region", PType::Opaque)
                .input("strength", PType::I4)
                .mutates_state()
        })
        .method("Params", |m| {
            m.input("key", PType::I4)
                .output("value", PType::Blob)
                .reads_state()
        })
        .build()
}

/// The composition reader: pulls the whole file from the store at `Open`,
/// then serves pixel chunks and property streams from memory.
struct PdReader {
    state: Mutex<PdReaderState>,
}

#[derive(Default)]
struct PdReaderState {
    store: Option<InterfacePtr>,
    chunks: i32,
}

/// Per-document shape: `(pixel chunks, propset stream, propset bytes)`.
fn doc_shape(doc: &str) -> ComResult<(i32, &'static str, usize)> {
    Ok(match doc {
        // (chunks, property stream name, number of property sets)
        "image-new" => (12, "props_small", 1),
        "composition" => (30, "props_full", PROP_SETS),
        "drawing" => (6, "props_cur", PROP_SETS),
        "newcomp" => (36, "props_mid", PROP_SETS),
        other => return Err(ComError::App(format!("unknown document `{other}`"))),
    })
}

impl ComObject for PdReader {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        match method {
            0 => {
                let doc = msg.arg(0).and_then(Value::as_str).unwrap_or("").to_string();
                let (chunks, _, _) = doc_shape(&doc)?;
                let store =
                    ctx.create(Clsid::from_name("PdImageStore"), Iid::from_name("IStore"))?;
                for i in 0..chunks {
                    let mut read = Message::new(vec![Value::I4(i), Value::Null]);
                    store.call(rt, STORE_READ_PAGE, &mut read)?;
                    work(ctx, 15);
                }
                // File metadata (thumbnails, color profiles).
                let mut meta = Message::new(vec![Value::Str("meta".into()), Value::Null]);
                store.call(rt, STORE_READ_STREAM, &mut meta)?;
                let mut state = self.state.lock();
                state.store = Some(store);
                state.chunks = chunks;
                Ok(())
            }
            1 => {
                work(ctx, 10);
                msg.set(1, Value::Blob(CHUNK_BYTES));
                Ok(())
            }
            2 => {
                let store = self
                    .state
                    .lock()
                    .store
                    .clone()
                    .ok_or(ComError::App("reader not opened".to_string()))?;
                let name = msg.arg(0).and_then(Value::as_str).unwrap_or("").to_string();
                let mut read = Message::new(vec![Value::Str(name), Value::Null]);
                store.call(rt, STORE_READ_STREAM, &mut read)?;
                work(ctx, 10);
                msg.set(1, Value::Blob(blob_of(&read, 1)));
                Ok(())
            }
            3 => {
                msg.set(0, Value::I4(self.state.lock().chunks));
                Ok(())
            }
            _ => Err(ComError::App(format!("IPdReader has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        let state = self.state.lock();
        fingerprint_of(&(state.store.is_some(), state.chunks))
    }
}

/// A high-level property set: large input from the file, small replies to
/// the UI — the components Coign moves to the server in Figure 4.
struct PdPropSet;

impl ComObject for PdPropSet {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                let reader = iface_of(msg, 0)?;
                let stream = msg.arg(1).and_then(Value::as_str).unwrap_or("").to_string();
                let mut pull = Message::new(vec![Value::Str(stream), Value::Null]);
                reader.call(ctx.rt(), 2, &mut pull)?;
                work(ctx, 40);
                Ok(())
            }
            1 => {
                work(ctx, 2);
                msg.set(1, Value::Blob(200));
                Ok(())
            }
            _ => Err(ComError::App(format!("IPdPropSet has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64) // read-only projection of the file
    }
}

/// A sprite cache: pulls pixels from the reader, shares regions with its
/// parent and blits to the canvas through shared memory.
struct SpriteCache {
    children: Mutex<Vec<InterfacePtr>>,
}

impl ComObject for SpriteCache {
    fn invoke(&self, ctx: &CallCtx<'_>, iid: Iid, method: u32, msg: &mut Message) -> ComResult<()> {
        let rt = ctx.rt();
        if iid == Iid::from_name("ISharedRegion") {
            work(ctx, 2);
            return Ok(());
        }
        match method {
            0 => {
                let reader = iface_of(msg, 0)?;
                let canvas = iface_of(msg, 1)?;
                let depth = i4_of(msg, 2);
                let chunk = i4_of(msg, 3);
                // Leaf sprites pull pixels through the remotable pixel
                // source; interior sprites compose purely from their
                // children's shared-memory regions. Each leaf covers one
                // region of the image, so the total pulled matches the
                // image size — a leaf whose region lies outside the image
                // pulls nothing.
                if depth == 0 {
                    let mut count = Message::outputs(1);
                    reader.call(rt, 3, &mut count)?;
                    let chunks = i4_of(&count, 0).max(1);
                    if chunk < chunks {
                        let mut pull = Message::new(vec![Value::I4(chunk), Value::Null]);
                        reader.call(rt, 1, &mut pull)?;
                    }
                }
                work(ctx, 30);
                // Blit into the canvas through shared memory (opaque).
                let mut blit = Message::new(vec![Value::Opaque(ctx.self_id().0)]);
                canvas.call(rt, 0, &mut blit)?;
                // Children.
                if depth > 0 {
                    let my_region = rt.make_ptr(ctx.self_id(), Iid::from_name("ISharedRegion"))?;
                    let mut children = Vec::new();
                    for i in 0..SPRITE_FANOUT as i32 {
                        let child = ctx
                            .create(Clsid::from_name("PdSpriteCache"), Iid::from_name("ISprite"))?;
                        let mut build = Message::new(vec![
                            Value::Interface(Some(reader.clone())),
                            Value::Interface(Some(canvas.clone())),
                            Value::I4(depth - 1),
                            Value::I4(chunk * SPRITE_FANOUT as i32 + i),
                        ]);
                        child.call(rt, 0, &mut build)?;
                        // The child hands its region up through shared
                        // memory — the non-remotable sprite↔sprite links.
                        let child_region =
                            rt.query_interface(&child, Iid::from_name("ISharedRegion"))?;
                        let mut share =
                            Message::new(vec![Value::Opaque(child.owner().0), Value::I4(4096)]);
                        child_region.call(rt, 0, &mut share)?;
                        let mut share_up =
                            Message::new(vec![Value::Opaque(ctx.self_id().0), Value::I4(4096)]);
                        my_region.call(rt, 0, &mut share_up)?;
                        children.push(child);
                    }
                    *self.children.lock() = children;
                }
                Ok(())
            }
            1 => {
                let children: Vec<InterfacePtr> = self.children.lock().clone();
                let mut regions = 1i32;
                for child in &children {
                    let mut inner = Message::outputs(1);
                    child.call(rt, 1, &mut inner)?;
                    regions += i4_of(&inner, 0);
                }
                work(ctx, 8);
                msg.set(0, Value::I4(regions));
                Ok(())
            }
            _ => Err(ComError::App(format!("ISprite has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&(self.children.lock().len() as u64))
    }
}

/// The marquee selection tool: owns a shared-memory region of the image.
struct PdSelection;

impl ComObject for PdSelection {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                work(ctx, 15);
                Ok(())
            }
            1 => {
                work(ctx, 2);
                msg.set(0, Value::Opaque(ctx.self_id().0));
                Ok(())
            }
            _ => Err(ComError::App(format!("ISelection has no method {method}"))),
        }
    }
}

/// One image transform (blur, sharpen, recolor, …): operates on a
/// shared-memory region in place.
struct PdTransform {
    cost_us: u64,
}

impl ComObject for PdTransform {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => {
                work(ctx, self.cost_us);
                Ok(())
            }
            1 => {
                work(ctx, 1);
                msg.set(1, Value::Blob(64));
                Ok(())
            }
            _ => Err(ComError::App(format!("ITransform has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&self.cost_us)
    }
}

/// The drawing canvas: receives shared-memory blits (GUI, non-remotable).
struct PdCanvas;

impl ComObject for PdCanvas {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        _msg: &mut Message,
    ) -> ComResult<()> {
        work(ctx, 3);
        Ok(())
    }
}

/// Registers PhotoDraw's GUI widget catalog.
fn register_gui(rt: &ComRuntime) {
    register_gui_class(rt, "PdTooltip", GuiSpec::default());
    register_gui_class(rt, "PdSwatch", GuiSpec::default());
    for leaf in ["PdToolButton", "PdEffectButton", "PdZoomButton"] {
        register_gui_class(
            rt,
            leaf,
            GuiSpec {
                notify_parent: 1,
                build_cost_us: 3,
                paint_cost_us: 2,
                idle_spawn: Some("PdTooltip"),
                ..GuiSpec::default()
            },
        );
    }
    register_gui_class(
        rt,
        "PdColorChip",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            idle_spawn: Some("PdSwatch"),
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdToolbar",
        GuiSpec {
            children: vec![("PdToolButton", 10), ("PdZoomButton", 3)],
            notify_parent: 1,
            build_cost_us: 5,
            paint_cost_us: 3,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdEffectGallery",
        GuiSpec {
            children: vec![("PdEffectButton", 18)],
            notify_parent: 1,
            build_cost_us: 5,
            paint_cost_us: 4,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdColorPalette",
        GuiSpec {
            children: vec![("PdColorChip", 24)],
            notify_parent: 1,
            build_cost_us: 4,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdStatusBar",
        GuiSpec {
            children: vec![("PdColorChip", 2)],
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdWorkPane",
        GuiSpec {
            children: vec![("PdToolbar", 1), ("PdColorPalette", 1)],
            notify_parent: 1,
            build_cost_us: 4,
            paint_cost_us: 3,
            ..GuiSpec::default()
        },
    );
    register_gui_class(rt, "PdHistogramBar", GuiSpec::default());
    register_gui_class(
        rt,
        "PdHistogram",
        GuiSpec {
            children: vec![("PdHistogramBar", 8)],
            notify_parent: 1,
            build_cost_us: 3,
            paint_cost_us: 3,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdLayerRow",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            idle_spawn: Some("PdTooltip"),
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdLayerPanel",
        GuiSpec {
            children: vec![("PdLayerRow", 6)],
            notify_parent: 1,
            build_cost_us: 3,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdNavigatorThumb",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdNavigator",
        GuiSpec {
            children: vec![("PdNavigatorThumb", 4)],
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdBrushPreview",
        GuiSpec {
            notify_parent: 1,
            build_cost_us: 1,
            paint_cost_us: 1,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdBrushPalette",
        GuiSpec {
            children: vec![("PdBrushPreview", 8)],
            notify_parent: 1,
            build_cost_us: 2,
            paint_cost_us: 2,
            ..GuiSpec::default()
        },
    );
    register_gui_class(
        rt,
        "PdAppWindow",
        GuiSpec {
            children: vec![
                ("PdToolbar", 2),
                ("PdEffectGallery", 1),
                ("PdColorPalette", 1),
                ("PdStatusBar", 1),
                ("PdWorkPane", 2),
                ("PdHistogram", 1),
                ("PdLayerPanel", 1),
                ("PdNavigator", 1),
                ("PdBrushPalette", 1),
            ],
            build_cost_us: 15,
            paint_cost_us: 8,
            ..GuiSpec::default()
        },
    );
    register_idle_loop(rt, "PdIdleLoop", Some("PdThemeEngine"));
    register_theme_engine(rt, "PdThemeEngine");
}

/// Creates the canvas the editing tools draw into.
fn canvas_for_edit(rt: &ComRuntime) -> ComResult<coign_com::InterfacePtr> {
    rt.create_instance(Clsid::from_name("PdCanvas"), Iid::from_name("IBlitSink"))
}

/// The PhotoDraw application.
#[derive(Debug, Default)]
pub struct PhotoDraw;

/// PhotoDraw's Table 1 scenarios.
pub const SCENARIOS: [&str; 7] = [
    "p_newdoc", "p_newmsr", "p_oldcur", "p_oldmsr", "p_offcur", "p_offmsr", "p_bigone",
];

fn docs_for(scenario: &str) -> ComResult<Vec<&'static str>> {
    Ok(match scenario {
        "p_newdoc" => vec!["image-new"],
        "p_newmsr" => vec!["newcomp"],
        "p_oldcur" => vec!["drawing"],
        "p_oldmsr" => vec!["composition"],
        "p_offcur" => vec!["image-new", "drawing"],
        "p_offmsr" => vec!["image-new", "composition"],
        "p_bigone" => vec![
            "image-new",
            "newcomp",
            "drawing",
            "composition",
            "image-new",
            "drawing",
            "image-new",
            "composition",
        ],
        other => {
            return Err(ComError::App(format!(
                "photodraw has no scenario `{other}`"
            )))
        }
    })
}

impl Application for PhotoDraw {
    fn name(&self) -> &str {
        "photodraw"
    }

    fn register(&self, rt: &ComRuntime) {
        register_gui(rt);
        crate::common::register_file_store(
            rt,
            "PdImageStore",
            64,
            CHUNK_BYTES,
            vec![
                ("meta", 100_000),
                ("props_small", 60_000),
                ("props_full", 120_000),
                ("props_cur", 40_000),
                ("props_mid", 70_000),
            ],
        );
        let reg = rt.registry();
        reg.register("PdReader", vec![ipd_reader()], ApiImports::NONE, |_, _| {
            Arc::new(PdReader {
                state: Mutex::new(PdReaderState::default()),
            })
        });
        reg.register(
            "PdPropSet",
            vec![ipd_prop_set()],
            ApiImports::NONE,
            |_, _| Arc::new(PdPropSet),
        );
        reg.register(
            "PdSpriteCache",
            vec![isprite(), ishared_region()],
            ApiImports::NONE,
            |_, _| {
                Arc::new(SpriteCache {
                    children: Mutex::new(Vec::new()),
                })
            },
        );
        reg.register("PdCanvas", vec![iblit_sink()], ApiImports::GUI, |_, _| {
            Arc::new(PdCanvas)
        });
        reg.register(
            "PdSelection",
            vec![iselection()],
            ApiImports::NONE,
            |_, _| Arc::new(PdSelection),
        );
        for (name, cost) in [
            ("PdBlurTransform", 120u64),
            ("PdSharpenTransform", 110),
            ("PdRecolorTransform", 60),
            ("PdCropTransform", 30),
            ("PdEmbossTransform", 150),
            ("PdContrastTransform", 45),
        ] {
            reg.register(name, vec![itransform()], ApiImports::NONE, move |_, _| {
                Arc::new(PdTransform { cost_us: cost })
            });
        }
    }

    fn scenarios(&self) -> Vec<&'static str> {
        SCENARIOS.to_vec()
    }

    fn run_scenario(&self, rt: &ComRuntime, scenario: &str) -> ComResult<()> {
        let docs = docs_for(scenario)?;
        // Shell.
        let window =
            rt.create_instance(Clsid::from_name("PdAppWindow"), Iid::from_name("IWidget"))?;
        call(rt, &window, WIDGET_BUILD, vec![Value::Interface(None)])?;
        let idle =
            rt.create_instance(Clsid::from_name("PdIdleLoop"), Iid::from_name("IIdleLoop"))?;
        call(
            rt,
            &window,
            WIDGET_REGISTER_IDLE,
            vec![Value::Interface(Some(idle.clone()))],
        )?;

        for doc in docs {
            let (_, stream, prop_sets) = doc_shape(doc)?;
            let reader =
                rt.create_instance(Clsid::from_name("PdReader"), Iid::from_name("IPdReader"))?;
            call(rt, &reader, 0, vec![Value::Str(doc.to_string())])?;

            // Property sets, created directly from data in the file.
            let mut sets = Vec::new();
            for _ in 0..prop_sets {
                let set = rt
                    .create_instance(Clsid::from_name("PdPropSet"), Iid::from_name("IPdPropSet"))?;
                call(
                    rt,
                    &set,
                    0,
                    vec![
                        Value::Interface(Some(reader.clone())),
                        Value::Str(stream.to_string()),
                    ],
                )?;
                sets.push(set);
            }
            // The UI queries the property sets (small replies).
            for set in &sets {
                for key in 0..PROP_QUERIES {
                    call(rt, set, 1, vec![Value::I4(key), Value::Null])?;
                }
            }

            // Sprite hierarchy renders the image into the canvas.
            let canvas =
                rt.create_instance(Clsid::from_name("PdCanvas"), Iid::from_name("IBlitSink"))?;
            let root =
                rt.create_instance(Clsid::from_name("PdSpriteCache"), Iid::from_name("ISprite"))?;
            call(
                rt,
                &root,
                0,
                vec![
                    Value::Interface(Some(reader)),
                    Value::Interface(Some(canvas)),
                    Value::I4(3),
                    Value::I4(0),
                ],
            )?;
            call(rt, &root, 1, vec![])?;

            // Editing documents run the transform pipeline: select a
            // subset of the image, apply a set of transforms to it, and
            // re-compose (the paper's §4.1 description of PhotoDraw). The
            // pixels move through shared memory — more non-remotable
            // communication pinning the editing path to the client.
            if doc == "newcomp" || doc == "image-new" {
                let selection = rt.create_instance(
                    Clsid::from_name("PdSelection"),
                    Iid::from_name("ISelection"),
                )?;
                call(
                    rt,
                    &selection,
                    0,
                    vec![
                        Value::Interface(Some(canvas_for_edit(rt)?)),
                        Value::Blob(32),
                    ],
                )?;
                let region = call(rt, &selection, 1, vec![Value::Null])?;
                let region = region.args[0].clone();
                for transform_class in ["PdBlurTransform", "PdRecolorTransform", "PdCropTransform"]
                {
                    let transform = rt.create_instance(
                        Clsid::from_name(transform_class),
                        Iid::from_name("ITransform"),
                    )?;
                    // Tune the parameters, then apply to the shared region.
                    for key in 0..3 {
                        call(rt, &transform, 1, vec![Value::I4(key), Value::Null])?;
                    }
                    call(rt, &transform, 0, vec![region.clone(), Value::I4(5)])?;
                }
                call(rt, &root, 1, vec![])?; // re-compose after editing
            }

            call(rt, &idle, IDLE_PUMP, vec![Value::I4(2)])?;
            call(rt, &window, WIDGET_PAINT, vec![])?;
        }
        Ok(())
    }

    fn image(&self) -> AppImage {
        AppImage::new(
            "photodraw.exe",
            vec![
                Clsid::from_name("PdAppWindow"),
                Clsid::from_name("PdReader"),
                Clsid::from_name("PdSpriteCache"),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_scenario_builds_sprite_hierarchy() {
        let app = PhotoDraw;
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        app.run_scenario(&rt, "p_oldmsr").unwrap();
        let sprites = rt
            .instances_snapshot()
            .iter()
            .filter(|i| i.clsid == Clsid::from_name("PdSpriteCache"))
            .count();
        // 1 + 3 + 9 + 27.
        assert_eq!(sprites, 40);
        let props = rt
            .instances_snapshot()
            .iter()
            .filter(|i| i.clsid == Clsid::from_name("PdPropSet"))
            .count();
        assert_eq!(props, PROP_SETS);
        assert!(rt.instance_count() > 150);
    }

    #[test]
    fn editing_scenarios_run_the_transform_pipeline() {
        let app = PhotoDraw;
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        app.run_scenario(&rt, "p_newmsr").unwrap();
        let transforms = rt
            .instances_snapshot()
            .iter()
            .filter(|i| {
                ["PdBlurTransform", "PdRecolorTransform", "PdCropTransform"]
                    .iter()
                    .any(|n| i.clsid == Clsid::from_name(n))
            })
            .count();
        assert_eq!(transforms, 3);
        // Viewing scenarios do not edit.
        let rt2 = ComRuntime::single_machine();
        app.register(&rt2);
        app.run_scenario(&rt2, "p_oldmsr").unwrap();
        assert!(!rt2
            .instances_snapshot()
            .iter()
            .any(|i| i.clsid == Clsid::from_name("PdBlurTransform")));
    }

    #[test]
    fn all_scenarios_run() {
        let app = PhotoDraw;
        for scenario in SCENARIOS {
            let rt = ComRuntime::single_machine();
            app.register(&rt);
            app.run_scenario(&rt, scenario)
                .unwrap_or_else(|e| panic!("{scenario}: {e}"));
        }
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let app = PhotoDraw;
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        assert!(app.run_scenario(&rt, "p_zzz").is_err());
    }
}
