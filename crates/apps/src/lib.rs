//! The Coign application and scenario suite.
//!
//! Synthetic reconstructions of the paper's three test applications. The
//! originals are proprietary Microsoft binaries; these reconstructions
//! preserve what the Coign experiments actually exercise — the
//! *communication structure*: who talks to whom, how often, with what
//! payloads, which interfaces are non-remotable, and which instances share
//! instantiation context. See `DESIGN.md` for the substitution argument.
//!
//! * [`octarine`] — the component-mad word processor (~70 component
//!   classes): a large GUI forest joined by non-remotable window-site
//!   interfaces, a storage-backed document pipeline, text/table/music
//!   document types, and the chatty table-vs-text page-placement
//!   negotiation behind the paper's Figure 8.
//! * [`photodraw`] — the image composer: sprite-cache hierarchy passing
//!   pixels through shared memory (non-remotable), a composition reader,
//!   and the high-level property sets that Coign moves to the server.
//! * [`benefits`] — the MSDN 3-tier client/server sample: a small Visual
//!   Basic front end, middle-tier business logic with result-caching
//!   components, and an ODBC boundary pinned to the server.
//! * [`scenarios`] — the 23 profiling scenarios of the paper's Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benefits;
pub mod common;
pub mod octarine;
pub mod photodraw;
pub mod scenarios;

pub use benefits::Benefits;
pub use octarine::Octarine;
pub use photodraw::PhotoDraw;
pub use scenarios::{all_scenarios, app_by_name, Scenario};
