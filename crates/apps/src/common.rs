//! Shared component machinery for the application suite.
//!
//! The three applications share idioms any large COM code base exhibits:
//! a GUI forest of widget components joined to their parents by
//! **non-remotable window-site interfaces** (raw `HWND`s travel as opaque
//! pointers), storage components behind remotable streams, and compute
//! charged per call. This module provides those building blocks:
//!
//! * [`GuiNode`] — a data-driven GUI component: one implementation serves
//!   dozens of widget *classes* (buttons, menus, rulers, …), each registered
//!   under its own CLSID with its own [`GuiSpec`] (children, chatter,
//!   compute). This mirrors how real GUI frameworks stamp out widget classes
//!   from shared code while keeping distinct COM identities.
//! * [`FileStore`] — the data file on the server: page-oriented reads plus
//!   named streams, `STORAGE`-importing (so static analysis pins it).
//! * Interface definitions shared across the suite.

use coign_com::idl::{InterfaceBuilder, InterfaceDesc};
use coign_com::{
    ApiImports, CallCtx, Clsid, ComError, ComObject, ComResult, ComRuntime, Iid, InterfacePtr,
    Message, PType, Value,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// `IWidget`: the uniform GUI-component interface.
///
/// Besides `Build`/`Paint`, widgets participate in the application's idle
/// loop: `RegisterIdle` recursively subscribes interested widgets, and the
/// loop later calls `OnIdle`, which internally routes through `RefreshA` or
/// `RefreshB` (alternating) — the deferred-callback idiom that gives the
/// call-chain classifiers their hardest cases: the same procedures executed
/// by *different instances*.
pub fn iwidget() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IWidget")
        .method("Build", |m| {
            m.input("site", PType::Interface(Iid::from_name("IWindowSite")))
        })
        .method("Paint", |m| m.output("pixels", PType::I4))
        .method("OnIdle", |m| {
            m.input("theme", PType::Interface(Iid::from_name("ITheme")))
        })
        .method("RefreshA", |m| {
            m.input("theme", PType::Interface(Iid::from_name("ITheme")))
        })
        .method("RefreshB", |m| {
            m.input("theme", PType::Interface(Iid::from_name("ITheme")))
        })
        .method("RegisterIdle", |m| {
            m.input("loop", PType::Interface(Iid::from_name("IIdleLoop")))
        })
        .build()
}

/// `IIdleLoop`: background-callback dispatcher.
pub fn iidle_loop() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IIdleLoop")
        .method("Register", |m| {
            m.input("sink", PType::Interface(Iid::from_name("IWidget")))
        })
        .method("Pump", |m| m.input("rounds", PType::I4))
        .build()
}

/// `ITheme`: the shared theme/resource service all idle transients are
/// allocated through. Because one engine instance serves *every* widget,
/// the instantiation chains of transients share their innermost frames —
/// the pattern that makes classifier accuracy depend on stack-walk depth
/// (Table 3).
pub fn itheme() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("ITheme")
        .method("SpawnTransient", |m| {
            m.input("class", PType::Str)
                .output("widget", PType::Interface(Iid::from_name("IWidget")))
        })
        .method("AllocRecord", |m| {
            m.input("class", PType::Str)
                .output("widget", PType::Interface(Iid::from_name("IWidget")))
        })
        .method("CommitRecord", |m| {
            m.input("class", PType::Str)
                .output("widget", PType::Interface(Iid::from_name("IWidget")))
        })
        .build()
}

/// `IWindowSite`: parent←child GUI notification. **Non-remotable** — the
/// window handle is a raw pointer, exactly the idiom that makes most of
/// Octarine's and PhotoDraw's GUI interfaces non-distributable.
pub fn iwindow_site() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IWindowSite")
        .method("Notify", |m| {
            m.input("hwnd", PType::Opaque).input("code", PType::I4)
        })
        .build()
}

/// `IStore`: the data-file interface (page reads and named streams). The
/// file content is fixed at registration, so every method is a state read.
pub fn istore() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IStore")
        .method("ReadPage", |m| {
            m.input("page", PType::I4)
                .output("data", PType::Blob)
                .reads_state()
        })
        .method("ReadStream", |m| {
            m.input("name", PType::Str)
                .output("data", PType::Blob)
                .reads_state()
        })
        .method("PageCount", |m| m.output("pages", PType::I4).reads_state())
        .build()
}

/// Hashes a component's mutable state into a COIGN045 fingerprint.
///
/// `DefaultHasher::new()` uses fixed keys, so fingerprints are stable
/// within a profiling run — all the effect cross-check needs.
pub fn fingerprint_of(value: &impl std::hash::Hash) -> Option<u64> {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    Some(h.finish())
}

/// Scales a component's compute charge to the paper's hardware era.
///
/// The synthetic components express their work in small architecture-neutral
/// units; the paper's measurements ran on 200 MHz Pentiums where each
/// interface call did tens of microseconds of real work. Scaling here keeps
/// the profiling-informer overhead (§3.2: ≤85 %, typically ~45 %) and the
/// distribution-informer overhead (<3 %) in the paper's bands relative to
/// application compute.
pub const WORK_SCALE: u64 = 20;

/// Charges `units` of application work on the calling component's machine.
pub fn work(ctx: &CallCtx<'_>, units: u64) {
    ctx.compute(units * WORK_SCALE);
}

/// Calls a method expecting `args` and returns the completed message.
pub fn call(
    rt: &ComRuntime,
    ptr: &InterfacePtr,
    method: u32,
    args: Vec<Value>,
) -> ComResult<Message> {
    let mut msg = Message::new(args);
    // Grow for out-params the caller did not pre-fill.
    if let Some(desc) = ptr.desc().method(method) {
        if msg.args.len() < desc.params.len() {
            msg.args.resize(desc.params.len(), Value::Null);
        }
    }
    ptr.call(rt, method, &mut msg)?;
    Ok(msg)
}

/// Extracts a blob size from a message argument.
pub fn blob_of(msg: &Message, idx: usize) -> u64 {
    msg.arg(idx).and_then(Value::as_blob).unwrap_or(0)
}

/// Extracts an i4 from a message argument.
pub fn i4_of(msg: &Message, idx: usize) -> i32 {
    msg.arg(idx).and_then(Value::as_i4).unwrap_or(0)
}

/// Extracts an interface pointer from a message argument.
pub fn iface_of(msg: &Message, idx: usize) -> ComResult<InterfacePtr> {
    msg.arg(idx)
        .and_then(Value::as_interface)
        .cloned()
        .ok_or_else(|| ComError::App(format!("argument {idx} is not an interface pointer")))
}

/// Declarative behavior of one GUI widget class.
#[derive(Debug, Clone, Default)]
pub struct GuiSpec {
    /// Child widget classes instantiated during `Build`: `(class, count)`.
    pub children: Vec<(&'static str, usize)>,
    /// `Notify` calls sent to the parent site during `Build` (opaque HWND
    /// traffic — non-remotable).
    pub notify_parent: u32,
    /// Compute charged by `Build`, microseconds.
    pub build_cost_us: u64,
    /// Compute charged by `Paint`, microseconds.
    pub paint_cost_us: u64,
    /// Class instantiated transiently from idle refreshes (tooltips, undo
    /// records, accessibility nodes, …). Widgets with a spawn subscribe to
    /// the idle loop.
    pub idle_spawn: Option<&'static str>,
}

struct GuiState {
    site: Option<InterfacePtr>,
    children: Vec<InterfacePtr>,
    idle_count: u32,
}

/// A data-driven GUI component; see [`GuiSpec`].
pub struct GuiNode {
    spec: Arc<GuiSpec>,
    state: Mutex<GuiState>,
}

/// Method indices of `IWidget`.
pub const WIDGET_BUILD: u32 = 0;
/// Method index of `IWidget::Paint`.
pub const WIDGET_PAINT: u32 = 1;
/// Method index of `IWidget::OnIdle`.
pub const WIDGET_ON_IDLE: u32 = 2;
/// Method index of `IWidget::RefreshA`.
pub const WIDGET_REFRESH_A: u32 = 3;
/// Method index of `IWidget::RefreshB`.
pub const WIDGET_REFRESH_B: u32 = 4;
/// Method index of `IWidget::RegisterIdle`.
pub const WIDGET_REGISTER_IDLE: u32 = 5;
/// Method index of `IWindowSite::Notify`.
pub const SITE_NOTIFY: u32 = 0;
/// Method index of `IIdleLoop::Register`.
pub const IDLE_REGISTER: u32 = 0;
/// Method index of `IIdleLoop::Pump`.
pub const IDLE_PUMP: u32 = 1;
/// Method index of `ITheme::SpawnTransient`.
pub const THEME_SPAWN: u32 = 0;
/// Method index of `ITheme::AllocRecord`.
pub const THEME_ALLOC: u32 = 1;
/// Method index of `ITheme::CommitRecord`.
pub const THEME_COMMIT: u32 = 2;

impl GuiNode {
    fn build(&self, ctx: &CallCtx<'_>, msg: &mut Message) -> ComResult<()> {
        let rt = ctx.rt();
        work(ctx, self.spec.build_cost_us);
        let site = msg.arg(0).and_then(Value::as_interface).cloned();
        if let Some(parent) = &site {
            for code in 0..self.spec.notify_parent {
                let mut notify =
                    Message::new(vec![Value::Opaque(ctx.self_id().0), Value::I4(code as i32)]);
                parent.call(rt, SITE_NOTIFY, &mut notify)?;
            }
        }
        let my_site = rt.make_ptr(ctx.self_id(), Iid::from_name("IWindowSite"))?;
        let mut children = Vec::new();
        for (class, count) in &self.spec.children {
            for _ in 0..*count {
                let child = ctx.create(Clsid::from_name(class), Iid::from_name("IWidget"))?;
                let mut build = Message::new(vec![Value::Interface(Some(my_site.clone()))]);
                child.call(rt, WIDGET_BUILD, &mut build)?;
                children.push(child);
            }
        }
        let mut state = self.state.lock();
        state.site = site;
        state.children = children;
        Ok(())
    }

    fn on_idle(&self, ctx: &CallCtx<'_>, msg: &mut Message) -> ComResult<()> {
        work(ctx, 2);
        // Route internally through the alternating refresh method — an
        // internal hop that IFCB sees and EPCB collapses.
        let count = {
            let mut state = self.state.lock();
            state.idle_count += 1;
            state.idle_count
        };
        let me = ctx
            .rt()
            .make_ptr(ctx.self_id(), Iid::from_name("IWidget"))?;
        let method = if count % 2 == 1 {
            WIDGET_REFRESH_A
        } else {
            WIDGET_REFRESH_B
        };
        let mut fwd = Message::new(vec![msg.arg(0).cloned().unwrap_or(Value::Null)]);
        me.call(ctx.rt(), method, &mut fwd)
    }

    fn refresh(&self, ctx: &CallCtx<'_>, msg: &mut Message) -> ComResult<()> {
        work(ctx, 3);
        let Some(class) = self.spec.idle_spawn else {
            return Ok(());
        };
        let spawned = if let Some(theme) = msg.arg(0).and_then(Value::as_interface) {
            // Allocate the transient through the shared theme service.
            let mut spawn = Message::new(vec![Value::Str(class.to_string()), Value::Null]);
            theme.call(ctx.rt(), THEME_SPAWN, &mut spawn)?;
            spawn.args.get(1).and_then(Value::as_interface).cloned()
        } else {
            Some(ctx.create(Clsid::from_name(class), Iid::from_name("IWidget"))?)
        };
        // The spawner drives the transient: its paint traffic depends on
        // *which widget* spawned it — behavior the static-type classifier
        // cannot predict (the same transient class serves every widget).
        if let Some(transient) = spawned {
            for _ in 0..=self.spec.notify_parent {
                transient.call(ctx.rt(), WIDGET_PAINT, &mut Message::outputs(1))?;
            }
        }
        Ok(())
    }

    fn register_idle(&self, ctx: &CallCtx<'_>, msg: &mut Message) -> ComResult<()> {
        let Some(idle) = msg.arg(0).and_then(Value::as_interface).cloned() else {
            return Ok(());
        };
        if self.spec.idle_spawn.is_some() {
            let me = ctx
                .rt()
                .make_ptr(ctx.self_id(), Iid::from_name("IWidget"))?;
            let mut reg = Message::new(vec![Value::Interface(Some(me))]);
            idle.call(ctx.rt(), IDLE_REGISTER, &mut reg)?;
        }
        let children: Vec<InterfacePtr> = self.state.lock().children.clone();
        for child in &children {
            let mut fwd = Message::new(vec![Value::Interface(Some(idle.clone()))]);
            child.call(ctx.rt(), WIDGET_REGISTER_IDLE, &mut fwd)?;
        }
        Ok(())
    }

    fn paint(&self, ctx: &CallCtx<'_>, msg: &mut Message) -> ComResult<()> {
        work(ctx, self.spec.paint_cost_us);
        let children: Vec<InterfacePtr> = self.state.lock().children.clone();
        let mut pixels = 1i32;
        for child in &children {
            let mut inner = Message::outputs(1);
            child.call(ctx.rt(), WIDGET_PAINT, &mut inner)?;
            pixels += i4_of(&inner, 0);
        }
        msg.set(0, Value::I4(pixels));
        Ok(())
    }
}

impl ComObject for GuiNode {
    fn invoke(&self, ctx: &CallCtx<'_>, iid: Iid, method: u32, msg: &mut Message) -> ComResult<()> {
        if iid == Iid::from_name("IWindowSite") {
            // Notify: cheap bookkeeping.
            work(ctx, 1);
            return Ok(());
        }
        match method {
            WIDGET_BUILD => self.build(ctx, msg),
            WIDGET_PAINT => self.paint(ctx, msg),
            WIDGET_ON_IDLE => self.on_idle(ctx, msg),
            WIDGET_REFRESH_A | WIDGET_REFRESH_B => self.refresh(ctx, msg),
            WIDGET_REGISTER_IDLE => self.register_idle(ctx, msg),
            _ => Err(ComError::App(format!("IWidget has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        let state = self.state.lock();
        fingerprint_of(&(
            state.site.is_some(),
            state.children.len() as u64,
            state.idle_count,
        ))
    }
}

/// Registers a GUI widget class under `name`.
pub fn register_gui_class(rt: &ComRuntime, name: &str, spec: GuiSpec) -> Clsid {
    let spec = Arc::new(spec);
    rt.registry().register(
        name,
        vec![iwidget(), iwindow_site()],
        ApiImports::GUI,
        move |_, _| {
            Arc::new(GuiNode {
                spec: spec.clone(),
                state: Mutex::new(GuiState {
                    site: None,
                    children: Vec::new(),
                    idle_count: 0,
                }),
            })
        },
    )
}

/// The application idle loop: widgets subscribe, `Pump` drives rounds of
/// `OnIdle` callbacks, passing the shared theme engine along.
pub struct IdleLoop {
    theme_class: Option<&'static str>,
    sinks: Mutex<Vec<InterfacePtr>>,
    theme: Mutex<Option<InterfacePtr>>,
}

impl ComObject for IdleLoop {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            IDLE_REGISTER => {
                if let Some(sink) = msg.arg(0).and_then(Value::as_interface).cloned() {
                    self.sinks.lock().push(sink);
                }
                Ok(())
            }
            IDLE_PUMP => {
                let rounds = i4_of(msg, 0).max(0);
                let theme = match self.theme_class {
                    Some(class) => {
                        let cached = self.theme.lock().clone();
                        match cached {
                            Some(t) => Some(t),
                            None => {
                                let t =
                                    ctx.create(Clsid::from_name(class), Iid::from_name("ITheme"))?;
                                *self.theme.lock() = Some(t.clone());
                                Some(t)
                            }
                        }
                    }
                    None => None,
                };
                let sinks: Vec<InterfacePtr> = self.sinks.lock().clone();
                for _ in 0..rounds {
                    for sink in &sinks {
                        let mut tick = Message::new(vec![Value::Interface(theme.clone())]);
                        sink.call(ctx.rt(), WIDGET_ON_IDLE, &mut tick)?;
                    }
                }
                Ok(())
            }
            _ => Err(ComError::App(format!("IIdleLoop has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&(self.sinks.lock().len() as u64, self.theme.lock().is_some()))
    }
}

/// The shared theme/resource engine: allocates transient widgets on behalf
/// of every caller, funneling their instantiation chains through one
/// instance (and one internal `AllocRecord` hop).
pub struct ThemeEngine;

impl ComObject for ThemeEngine {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            THEME_SPAWN => {
                work(ctx, 2);
                // Internal bookkeeping hop before the actual allocation.
                let me = ctx.rt().make_ptr(ctx.self_id(), Iid::from_name("ITheme"))?;
                let mut alloc = Message::new(vec![
                    msg.arg(0).cloned().unwrap_or(Value::Null),
                    Value::Null,
                ]);
                me.call(ctx.rt(), THEME_ALLOC, &mut alloc)?;
                msg.set(1, alloc.args[1].clone());
                Ok(())
            }
            THEME_ALLOC => {
                work(ctx, 1);
                let me = ctx.rt().make_ptr(ctx.self_id(), Iid::from_name("ITheme"))?;
                let mut commit = Message::new(vec![
                    msg.arg(0).cloned().unwrap_or(Value::Null),
                    Value::Null,
                ]);
                me.call(ctx.rt(), THEME_COMMIT, &mut commit)?;
                msg.set(1, commit.args[1].clone());
                Ok(())
            }
            THEME_COMMIT => {
                let class = msg.arg(0).and_then(Value::as_str).unwrap_or("").to_string();
                let spawn = ctx.create(Clsid::from_name(&class), Iid::from_name("IWidget"))?;
                work(ctx, 3);
                msg.set(1, Value::Interface(Some(spawn)));
                Ok(())
            }
            _ => Err(ComError::App(format!("ITheme has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64) // stateless service
    }
}

/// Registers the idle-loop class under `name`; transients are allocated
/// through `theme_class` when given (register it with
/// [`register_theme_engine`]).
pub fn register_idle_loop(rt: &ComRuntime, name: &str, theme_class: Option<&'static str>) -> Clsid {
    rt.registry()
        .register(name, vec![iidle_loop()], ApiImports::NONE, move |_, _| {
            Arc::new(IdleLoop {
                theme_class,
                sinks: Mutex::new(Vec::new()),
                theme: Mutex::new(None),
            })
        })
}

/// Registers the theme-engine class under `name`.
pub fn register_theme_engine(rt: &ComRuntime, name: &str) -> Clsid {
    rt.registry()
        .register(name, vec![itheme()], ApiImports::NONE, |_, _| {
            Arc::new(ThemeEngine)
        })
}

/// The data file living on the server: page-oriented content plus named
/// streams (properties, outline, …).
pub struct FileStore {
    /// Number of content pages.
    pub pages: i32,
    /// Bytes per content page.
    pub page_size: u64,
    /// Named auxiliary streams: `(name, size)`.
    pub streams: Vec<(&'static str, u64)>,
}

/// Method indices of `IStore`.
pub const STORE_READ_PAGE: u32 = 0;
/// Method index of `IStore::ReadStream`.
pub const STORE_READ_STREAM: u32 = 1;
/// Method index of `IStore::PageCount`.
pub const STORE_PAGE_COUNT: u32 = 2;

impl ComObject for FileStore {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            STORE_READ_PAGE => {
                work(ctx, 30); // disk access
                let page = i4_of(msg, 0);
                if page < 0 || page >= self.pages {
                    return Err(ComError::App(format!(
                        "page {page} out of range 0..{}",
                        self.pages
                    )));
                }
                msg.set(1, Value::Blob(self.page_size));
                Ok(())
            }
            STORE_READ_STREAM => {
                work(ctx, 30);
                let name = msg.arg(0).and_then(Value::as_str).unwrap_or("");
                let size = self
                    .streams
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, s)| *s)
                    .ok_or_else(|| ComError::App(format!("no stream `{name}`")))?;
                msg.set(1, Value::Blob(size));
                Ok(())
            }
            STORE_PAGE_COUNT => {
                work(ctx, 5);
                msg.set(0, Value::I4(self.pages));
                Ok(())
            }
            _ => Err(ComError::App(format!("IStore has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&(self.pages, self.page_size, &self.streams))
    }
}

/// Registers a file-store class (STORAGE import → pinned to the server by
/// static analysis).
pub fn register_file_store(
    rt: &ComRuntime,
    name: &str,
    pages: i32,
    page_size: u64,
    streams: Vec<(&'static str, u64)>,
) -> Clsid {
    rt.registry()
        .register(name, vec![istore()], ApiImports::STORAGE, move |_, _| {
            Arc::new(FileStore {
                pages,
                page_size,
                streams: streams.clone(),
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_site_is_non_remotable_but_widget_is() {
        assert!(!iwindow_site().remotable);
        assert!(iwidget().remotable);
        assert!(istore().remotable);
    }

    #[test]
    fn gui_forest_builds_recursively() {
        let rt = ComRuntime::single_machine();
        register_gui_class(&rt, "LeafBtn", GuiSpec::default());
        register_gui_class(
            &rt,
            "Bar",
            GuiSpec {
                children: vec![("LeafBtn", 3)],
                notify_parent: 1,
                build_cost_us: 10,
                paint_cost_us: 5,
                ..GuiSpec::default()
            },
        );
        register_gui_class(
            &rt,
            "Frame",
            GuiSpec {
                children: vec![("Bar", 2)],
                ..GuiSpec::default()
            },
        );
        let frame = rt
            .create_instance(Clsid::from_name("Frame"), Iid::from_name("IWidget"))
            .unwrap();
        let mut build = Message::new(vec![Value::Interface(None)]);
        frame.call(&rt, WIDGET_BUILD, &mut build).unwrap();
        // Frame + 2 bars + 6 leaves.
        assert_eq!(rt.instance_count(), 9);
        let paint = call(&rt, &frame, WIDGET_PAINT, vec![]).unwrap();
        assert_eq!(i4_of(&paint, 0), 9);
    }

    #[test]
    fn idle_loop_spawns_transients_via_internal_refresh() {
        let rt = ComRuntime::single_machine();
        register_gui_class(&rt, "Tip", GuiSpec::default());
        register_gui_class(
            &rt,
            "Pane",
            GuiSpec {
                idle_spawn: Some("Tip"),
                ..GuiSpec::default()
            },
        );
        register_gui_class(
            &rt,
            "Root",
            GuiSpec {
                children: vec![("Pane", 2)],
                ..GuiSpec::default()
            },
        );
        register_idle_loop(&rt, "Idle", None);
        let root = rt
            .create_instance(Clsid::from_name("Root"), Iid::from_name("IWidget"))
            .unwrap();
        call(&rt, &root, WIDGET_BUILD, vec![Value::Interface(None)]).unwrap();
        let idle = rt
            .create_instance(Clsid::from_name("Idle"), Iid::from_name("IIdleLoop"))
            .unwrap();
        call(
            &rt,
            &root,
            WIDGET_REGISTER_IDLE,
            vec![Value::Interface(Some(idle.clone()))],
        )
        .unwrap();
        let before = rt.instance_count(); // root + 2 panes + idle
        call(&rt, &idle, IDLE_PUMP, vec![Value::I4(3)]).unwrap();
        // Each pump round makes each pane spawn one Tip.
        assert_eq!(rt.instance_count(), before + 6);
    }

    #[test]
    fn file_store_serves_pages_and_streams() {
        let rt = ComRuntime::single_machine();
        register_file_store(&rt, "TestStore", 5, 30_000, vec![("props", 10_000)]);
        let store = rt
            .create_instance(Clsid::from_name("TestStore"), Iid::from_name("IStore"))
            .unwrap();
        let page = call(&rt, &store, STORE_READ_PAGE, vec![Value::I4(2)]).unwrap();
        assert_eq!(blob_of(&page, 1), 30_000);
        let stream = call(
            &rt,
            &store,
            STORE_READ_STREAM,
            vec![Value::Str("props".into())],
        )
        .unwrap();
        assert_eq!(blob_of(&stream, 1), 10_000);
        let count = call(&rt, &store, STORE_PAGE_COUNT, vec![]).unwrap();
        assert_eq!(i4_of(&count, 0), 5);
        // Out-of-range and missing-stream errors.
        assert!(call(&rt, &store, STORE_READ_PAGE, vec![Value::I4(9)]).is_err());
        assert!(call(
            &rt,
            &store,
            STORE_READ_STREAM,
            vec![Value::Str("nope".into())]
        )
        .is_err());
    }
}
