//! The profiling-scenario catalog — the paper's Table 1.

use crate::{Benefits, Octarine, PhotoDraw};
use coign::application::Application;
use std::sync::Arc;

/// One entry of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario id, e.g. `"o_oldtb3"`.
    pub name: &'static str,
    /// Application the scenario drives.
    pub app: &'static str,
    /// The paper's description.
    pub description: &'static str,
}

/// Every scenario of Table 1, in the paper's order.
pub const TABLE1: [Scenario; 23] = [
    Scenario {
        name: "o_newdoc",
        app: "octarine",
        description: "Create text document.",
    },
    Scenario {
        name: "o_newmus",
        app: "octarine",
        description: "Create music document.",
    },
    Scenario {
        name: "o_newtbl",
        app: "octarine",
        description: "Create table document.",
    },
    Scenario {
        name: "o_oldtb0",
        app: "octarine",
        description: "View 5-page table.",
    },
    Scenario {
        name: "o_oldtb3",
        app: "octarine",
        description: "View 150-page table.",
    },
    Scenario {
        name: "o_oldwp0",
        app: "octarine",
        description: "View 5-page text document.",
    },
    Scenario {
        name: "o_oldwp3",
        app: "octarine",
        description: "View 13-page text document.",
    },
    Scenario {
        name: "o_oldwp7",
        app: "octarine",
        description: "View 208-page text document.",
    },
    Scenario {
        name: "o_oldbth",
        app: "octarine",
        description: "View 5-page text doc. with tables.",
    },
    Scenario {
        name: "o_offtb3",
        app: "octarine",
        description: "o_newdoc then o_oldtb3.",
    },
    Scenario {
        name: "o_offwp7",
        app: "octarine",
        description: "o_newdoc then o_oldwp7.",
    },
    Scenario {
        name: "o_bigone",
        app: "octarine",
        description: "All of the above in one scenario.",
    },
    Scenario {
        name: "p_newdoc",
        app: "photodraw",
        description: "Create new image.",
    },
    Scenario {
        name: "p_newmsr",
        app: "photodraw",
        description: "Create new composition.",
    },
    Scenario {
        name: "p_oldcur",
        app: "photodraw",
        description: "View line drawing.",
    },
    Scenario {
        name: "p_oldmsr",
        app: "photodraw",
        description: "View composition.",
    },
    Scenario {
        name: "p_offcur",
        app: "photodraw",
        description: "p_newdoc then p_oldcur.",
    },
    Scenario {
        name: "p_offmsr",
        app: "photodraw",
        description: "p_newdoc then p_oldmsr.",
    },
    Scenario {
        name: "p_bigone",
        app: "photodraw",
        description: "All of the above in one scenario.",
    },
    Scenario {
        name: "b_vueone",
        app: "benefits",
        description: "View records for an employee.",
    },
    Scenario {
        name: "b_addone",
        app: "benefits",
        description: "Add new employee.",
    },
    Scenario {
        name: "b_delone",
        app: "benefits",
        description: "Delete employee.",
    },
    Scenario {
        name: "b_bigone",
        app: "benefits",
        description: "All of the above in one scenario.",
    },
];

/// All scenarios of Table 1.
pub fn all_scenarios() -> &'static [Scenario] {
    &TABLE1
}

/// Instantiates an application by name.
pub fn app_by_name(name: &str) -> Option<Arc<dyn Application>> {
    match name {
        "octarine" => Some(Arc::new(Octarine)),
        "photodraw" => Some(Arc::new(PhotoDraw)),
        "benefits" => Some(Arc::new(Benefits::default())),
        _ => None,
    }
}

/// The non-`bigone` profiling scenarios of one application.
pub fn profiling_scenarios(app: &str) -> Vec<&'static str> {
    TABLE1
        .iter()
        .filter(|s| s.app == app && !s.name.ends_with("bigone"))
        .map(|s| s.name)
        .collect()
}

/// The `bigone` scenario of one application.
pub fn bigone(app: &str) -> Option<&'static str> {
    TABLE1
        .iter()
        .find(|s| s.app == app && s.name.ends_with("bigone"))
        .map(|s| s.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_23_scenarios() {
        assert_eq!(TABLE1.len(), 23);
        assert_eq!(TABLE1.iter().filter(|s| s.app == "octarine").count(), 12);
        assert_eq!(TABLE1.iter().filter(|s| s.app == "photodraw").count(), 7);
        assert_eq!(TABLE1.iter().filter(|s| s.app == "benefits").count(), 4);
    }

    #[test]
    fn every_scenario_is_supported_by_its_app() {
        for scenario in TABLE1 {
            let app = app_by_name(scenario.app).unwrap();
            assert!(
                app.scenarios().contains(&scenario.name),
                "{} missing from {}",
                scenario.name,
                scenario.app
            );
        }
    }

    #[test]
    fn profiling_scenarios_exclude_bigone() {
        let oct = profiling_scenarios("octarine");
        assert_eq!(oct.len(), 11);
        assert!(!oct.contains(&"o_bigone"));
        assert_eq!(bigone("octarine"), Some("o_bigone"));
        assert_eq!(bigone("photodraw"), Some("p_bigone"));
        assert_eq!(bigone("benefits"), Some("b_bigone"));
        assert_eq!(bigone("nothing"), None);
    }

    #[test]
    fn unknown_app_yields_none() {
        assert!(app_by_name("excel").is_none());
    }
}
