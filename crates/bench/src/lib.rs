//! The benchmark harness: reproduces every table and figure of the paper.
//!
//! Each `src/bin/tableN.rs` / `src/bin/figN.rs` binary regenerates one
//! table or figure (`repro_all` runs them all); `ablation` measures how the
//! classifier choice affects distribution quality, `netfit` sweeps the
//! network profiler's convergence, and `probe` prints quick one-line
//! summaries. This library holds the shared machinery: per-scenario
//! optimization runs ([`optimize_and_run`]), figure-style distribution
//! summaries ([`figure_for`]), and plain-text table rendering.
//!
//! The experimental environment mirrors the paper's §4: a two-machine
//! client/server topology of equal compute power joined by an isolated
//! 10BaseT Ethernet, with data files on the server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use coign::analysis::Distribution;
use coign::application::Application;
use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::predict::{predict_execution_us, PredictionRow};
use coign::profile::IccProfile;
use coign::runtime::{
    choose_distribution, profile_scenario, run_default, run_distributed, RunReport,
};
use coign_com::{ApiImports, ComResult, ComRuntime, MachineId};
use coign_dcom::{NetworkModel, NetworkProfile};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Samples per message size used when measuring the network profile.
pub const PROFILE_SAMPLES: usize = 40;

/// Deterministic seed stream for the harness.
pub const HARNESS_SEED: u64 = 0xC016_1999;

/// The experimental network: isolated 10BaseT Ethernet.
pub fn network() -> NetworkModel {
    NetworkModel::ethernet_10baset()
}

/// The measured network profile used by the analysis engine.
pub fn network_profile() -> NetworkProfile {
    NetworkProfile::measure(&network(), PROFILE_SAMPLES, HARNESS_SEED)
}

/// Everything measured for one scenario optimized for itself.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// The run under the application's default (as-shipped) distribution.
    pub default_report: RunReport,
    /// The run under the Coign-chosen distribution.
    pub coign_report: RunReport,
    /// The profile the distribution was derived from.
    pub profile: IccProfile,
    /// The chosen distribution.
    pub distribution: Distribution,
    /// Application compute observed while profiling, microseconds.
    pub profiled_compute_us: u64,
    /// Interface dispatches observed while profiling.
    pub profiled_calls: u64,
}

impl ScenarioOutcome {
    /// Table 4's savings column: relative reduction in communication time.
    pub fn savings(&self) -> f64 {
        let default = self.default_report.stats.comm_us as f64;
        let coign = self.coign_report.stats.comm_us as f64;
        if default <= 0.0 {
            return 0.0;
        }
        ((default - coign) / default).max(0.0)
    }

    /// Table 5's prediction row for this scenario.
    pub fn prediction(&self, net: &NetworkProfile) -> PredictionRow {
        let predicted = predict_execution_us(
            self.profiled_compute_us,
            self.profiled_calls,
            &self.profile,
            &self.distribution,
            net,
        );
        PredictionRow {
            predicted_us: predicted,
            measured_us: self.coign_report.clock_us as f64,
        }
    }
}

/// Profiles `scenario`, chooses a distribution optimized for it, and runs
/// both the default and the Coign distribution — the paper's §4.5/§4.6
/// procedure ("the application is optimized for the chosen scenario before
/// execution", data files on the server).
pub fn optimize_and_run(app: &dyn Application, scenario: &str) -> ComResult<ScenarioOutcome> {
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(app, scenario, &classifier)?;
    let net = network_profile();
    let distribution = choose_distribution(app, &run.profile, &net)?;
    // Both runs use the same transport seed: when Coign's distribution
    // coincides with the default, the measured times match exactly (the
    // paper's 0 % rows).
    let seed = HARNESS_SEED ^ seed_of(scenario);
    let default_report = run_default(app, scenario, network(), seed)?;
    let coign_report = run_distributed(app, scenario, &classifier, &distribution, network(), seed)?;
    Ok(ScenarioOutcome {
        scenario: scenario.to_string(),
        default_report,
        coign_report,
        profile: run.profile,
        distribution,
        profiled_compute_us: run.report.stats.compute_us,
        profiled_calls: run.report.stats.calls,
    })
}

fn seed_of(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

/// A figure-style summary of a chosen distribution.
#[derive(Debug, Clone)]
pub struct FigureSummary {
    /// Scenario the distribution was optimized for.
    pub scenario: String,
    /// Total live application instances at scenario end (excluding pinned
    /// storage — the paper's data files live on the server by assumption).
    pub total: usize,
    /// Application instances placed on the server, excluding pinned
    /// storage/database components.
    pub server: usize,
    /// Pinned storage/database instances on the server.
    pub pinned_storage: usize,
    /// Server-side class breakdown: class name → instance count.
    pub server_classes: BTreeMap<String, usize>,
    /// Number of classification pairs joined by non-remotable interfaces.
    pub non_remotable_pairs: usize,
    /// Communication times: (default, Coign), seconds.
    pub comm_secs: (f64, f64),
}

/// Runs the figure procedure for one scenario: optimize, distribute, count.
pub fn figure_for(app: &dyn Application, scenario: &str) -> ComResult<FigureSummary> {
    let outcome = optimize_and_run(app, scenario)?;
    // Resolve class names and import kinds.
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let mut server = 0usize;
    let mut pinned = 0usize;
    let mut server_classes: BTreeMap<String, usize> = BTreeMap::new();
    for (clsid, machine) in &outcome.coign_report.instance_placements {
        if *machine != MachineId::SERVER {
            continue;
        }
        let (name, imports) = rt
            .registry()
            .get(*clsid)
            .map(|d| (d.name.clone(), d.imports))
            .unwrap_or((format!("{clsid}"), ApiImports::NONE));
        if imports.uses_storage() {
            pinned += 1;
        } else {
            server += 1;
            *server_classes.entry(name).or_insert(0) += 1;
        }
    }
    Ok(FigureSummary {
        scenario: scenario.to_string(),
        total: outcome.coign_report.total_instances() - pinned,
        server,
        pinned_storage: pinned,
        server_classes,
        non_remotable_pairs: outcome.profile.non_remotable.len(),
        comm_secs: (
            outcome.default_report.comm_secs(),
            outcome.coign_report.comm_secs(),
        ),
    })
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().max(1) - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn seeds_differ_by_scenario() {
        assert_ne!(seed_of("o_newdoc"), seed_of("o_newmus"));
    }
}
