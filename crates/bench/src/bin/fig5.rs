//! Figure 5 — Octarine Distribution (text document).
//!
//! Octarine loads and displays the first page of a 35-page, text-only
//! document. The paper: Coign places only two of 458 components on the
//! server — one reads the document from storage, the other provides
//! information about the properties of the text. The non-distributable
//! interfaces connect components of the GUI.

use coign_apps::Octarine;
use coign_bench::figure_for;

fn main() {
    let fig = figure_for(&Octarine, "o_fig5").expect("figure run");
    println!("Figure 5. Octarine Distribution (35-page text document)\n");
    println!("Components in the application:        {}", fig.total);
    println!("Placed on the server by Coign:        {}", fig.server);
    println!(
        "(plus {} pinned storage component(s) — the document file)",
        fig.pinned_storage
    );
    println!(
        "Non-distributable interface pairs:    {}",
        fig.non_remotable_pairs
    );
    println!();
    println!("Server-side components:");
    for (class, n) in &fig.server_classes {
        println!("  {n:>3} x {class}");
    }
    println!();
    println!(
        "Communication time: default {:.3} s -> Coign {:.3} s",
        fig.comm_secs.0, fig.comm_secs.1
    );
    println!();
    println!("Paper: 2 of 458 components on the server (document reader + text properties).");
}
