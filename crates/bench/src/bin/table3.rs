//! Table 3 — Accuracy as a Function of Stack Depth.
//!
//! The internal-function called-by (IFCB) classifier evaluated at limited
//! stack-walk depths: both the number of classifications and the average
//! correlation should increase with depth and saturate.

use coign::classifier::ClassifierKind;
use coign::metrics::evaluate_classifier;
use coign_apps::scenarios::{bigone, profiling_scenarios};
use coign_apps::Octarine;
use coign_bench::{network_profile, render_table};

fn main() {
    let app = Octarine;
    let net = network_profile();
    let scenarios = profiling_scenarios("octarine");
    let big = bigone("octarine").expect("octarine has a bigone");
    println!("Table 3. IFCB Accuracy as a Function of Stack Depth (Octarine)\n");
    let depths: [(Option<usize>, &str); 7] = [
        (Some(1), "1"),
        (Some(2), "2"),
        (Some(3), "3"),
        (Some(4), "4"),
        (Some(8), "8"),
        (Some(16), "16"),
        (None, "Complete"),
    ];
    let mut rows = Vec::new();
    for (depth, label) in depths {
        let eval = evaluate_classifier(&app, ClassifierKind::Ifcb, depth, &scenarios, big, &net)
            .expect("evaluation");
        rows.push(vec![
            label.to_string(),
            eval.profiled_classifications.to_string(),
            format!("{:.1}", eval.avg_instances_per_classification),
            format!("{:.3}", eval.avg_correlation),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Stack-Walk Depth",
                "Profiled Classifications",
                "Instances/Class",
                "Avg Correlation",
            ],
            &rows,
        )
    );
}
