//! Network-profiler convergence: how the statistical sampling of DCOM
//! round trips (§2) converges on the true cost model as the sample budget
//! grows, and what that does to prediction error.

use coign_bench::render_table;
use coign_dcom::{NetworkModel, NetworkProfile};

fn main() {
    let network = NetworkModel::ethernet_10baset();
    let truth = NetworkProfile::exact(&network);
    println!("Network-profiler convergence (10BaseT Ethernet, ±5% jitter)\n");
    let mut rows = Vec::new();
    for samples in [1usize, 2, 5, 10, 40, 160, 640] {
        // Average absolute α/β error over independent measurement seeds.
        let trials = 32;
        let mut alpha_err = 0.0;
        let mut beta_err = 0.0;
        let mut predict_err = 0.0;
        for seed in 0..trials {
            let fit = NetworkProfile::measure(&network, samples, 1000 + seed);
            alpha_err += (fit.alpha_us - truth.alpha_us).abs() / truth.alpha_us;
            beta_err +=
                (fit.beta_us_per_byte - truth.beta_us_per_byte).abs() / truth.beta_us_per_byte;
            // Error predicting a representative 8 KB message.
            predict_err +=
                (fit.predict_us(8_192) - truth.predict_us(8_192)).abs() / truth.predict_us(8_192);
        }
        let n = trials as f64;
        rows.push(vec![
            samples.to_string(),
            format!("{:.2}%", alpha_err / n * 100.0),
            format!("{:.2}%", beta_err / n * 100.0),
            format!("{:.2}%", predict_err / n * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["samples/size", "α error", "β error", "8KB prediction error"],
            &rows,
        )
    );
    println!("With the harness default (40 samples per size), the fitted model is");
    println!("within a fraction of a percent of the true link — the headroom behind");
    println!("Table 5's small prediction errors.");
}
