//! Figure 6 — Corporate Benefits Distribution.
//!
//! The paper: of 196 components in the client and middle tier, Coign places
//! 135 on the middle tier where the programmer placed 187 — the caching
//! components (but not the business logic) move to the client, reducing
//! communication by 35 %.

use coign::application::Application;
use coign_apps::Benefits;
use coign_bench::{figure_for, optimize_and_run};
use coign_com::{ComRuntime, MachineId};

fn main() {
    let app = Benefits::default();
    let fig = figure_for(&app, "b_bigone").expect("figure run");
    let outcome = optimize_and_run(&app, "b_bigone").expect("outcome");

    // The programmer's distribution: count default placements.
    let rt = ComRuntime::single_machine();
    app.register(&rt);

    // Exclude the pinned database drivers so both counts cover the same
    // population (application components in client + middle tier).
    let programmer_middle = outcome
        .default_report
        .instance_placements
        .iter()
        .filter(|(clsid, m)| {
            *m == MachineId::SERVER
                && rt
                    .registry()
                    .get(*clsid)
                    .map(|d| !d.imports.uses_storage())
                    .unwrap_or(true)
        })
        .count();

    println!("Figure 6. Corporate Benefits Distribution (scenario b_bigone)\n");
    println!("Components in client + middle tier:   {}", fig.total);
    println!("Programmer placed on middle tier:     {programmer_middle}");
    println!("Coign places on middle tier:          {}", fig.server);
    println!(
        "(the ODBC boundary adds {} pinned database component(s))",
        fig.pinned_storage
    );
    println!();
    println!("Middle-tier components under Coign:");
    for (class, n) in &fig.server_classes {
        println!("  {n:>3} x {class}");
    }
    println!();
    println!(
        "Communication time: programmer {:.3} s -> Coign {:.3} s ({:.0}% reduction)",
        fig.comm_secs.0,
        fig.comm_secs.1,
        100.0 * (fig.comm_secs.0 - fig.comm_secs.1) / fig.comm_secs.0.max(1e-9)
    );
    println!();
    println!("Paper: Coign places 135 of 196 on the middle tier (programmer: 187),");
    println!("reducing communication by 35% — the result caches move to the client.");
}
