//! Table 1 — Profiling Scenarios.
//!
//! Prints the scenario suite and verifies every scenario actually runs,
//! reporting the number of component instances each one creates.

use coign_apps::scenarios::{all_scenarios, app_by_name};
use coign_bench::render_table;
use coign_com::ComRuntime;

fn main() {
    println!("Table 1. Profiling Scenarios\n");
    let mut rows = Vec::new();
    for scenario in all_scenarios() {
        let app = app_by_name(scenario.app).expect("known app");
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        app.run_scenario(&rt, scenario.name)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        rows.push(vec![
            scenario.name.to_string(),
            scenario.description.to_string(),
            rt.instance_count().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["Scenario", "Description", "Instances"], &rows)
    );
}
