//! The performance smoke suite: emits `BENCH_coign.json`.
//!
//! Measures the costs the performance layer attacks — scenario
//! profiling (sequential vs `--jobs`-style parallel workers), marshal-size
//! memoization (cache hit rate across the profiling runs), the network
//! sweep (cold per-point min-cut solves vs warm-started chains), and the
//! serving harness (wall-clock session throughput with per-link batching
//! on vs off) — and writes them as one JSON object so CI records the perf
//! trajectory.
//!
//! Correctness is asserted, not just measured: the parallel profile must
//! be byte-identical to the sequential one, and the warm sweep must
//! reproduce the cold sweep's cut values and placements exactly. Either
//! failure aborts the run (and CI) with a non-zero exit.
//!
//! Usage: `perfsuite [out.json]` (default `BENCH_coign.json`).

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::multiway::{
    analyze_multiway_with_replication, anchor_unpinned_machines, derive_tier_constraints,
    replicate_for_distribution, ReplicaRouter, ReplicationPlan,
};
use coign::recovery::RecoveryConfig;
use coign::runtime::{
    choose_distribution, profile_scenario, profile_scenarios, profile_scenarios_observed,
    profile_scenarios_parallel, run_distributed, run_distributed_recovering,
};
use coign::sweep::{sweep, SweepGrid, SweepMode};
use coign::Application;
use coign_apps::scenarios::app_by_name;
use coign_com::MachineId;
use coign_dcom::{CallPolicy, FaultPlan, NetworkModel, NetworkProfile, TimeWindow};
use coign_obs::metrics::quantile_from_buckets;
use coign_obs::Obs;
use std::sync::Arc;
use std::time::Instant;

/// Octarine scenarios replayed by every measurement.
const SCENARIOS: [&str; 3] = ["o_oldtb3", "o_newdoc", "o_oldwp7"];

/// Worker threads for the parallel profiling measurement.
const JOBS: usize = 4;

/// Timing repetitions; the minimum is reported to damp scheduler noise.
const REPS: usize = 3;

/// Off/on pairs timed for the serve telemetry overhead assertion. More
/// than [`REPS`]: the overhead compares two minima, so each side needs
/// enough samples to land at least one rep on the box's stable floor
/// between scheduler stalls.
const TELEMETRY_REPS: usize = 7;

/// Off/on pairs for the trace-emission overhead assertion. The profile
/// replay is an order of magnitude shorter than a serve run, so a single
/// millisecond-scale scheduler stall is a double-digit relative error —
/// and pairs are cheap enough to buy the minima more chances to land
/// clean.
const TRACE_REPS: usize = 15;

fn timed_min_ms<T>(mut body: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        result = Some(body());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (result.expect("REPS >= 1"), best)
}

/// Paired overhead estimate. Runs `off` and `on` back to back
/// [`TELEMETRY_REPS`] times, alternating which side goes first so slow
/// machine drift never systematically bills whichever side happens to
/// run second, and returns `(min_off_ms, min_on_ms, overhead)` with the
/// overhead taken between the two minima. The box's scheduler noise is
/// one-sided — occasional tens-of-ms stalls on top of a stable floor —
/// so per-side minima reject it, where a mean or a median of paired
/// deltas is dragged upward whenever stalls land on most pairs.
fn paired_overhead_ms(reps: usize, mut off: impl FnMut(), mut on: impl FnMut()) -> (f64, f64, f64) {
    let time = |body: &mut dyn FnMut()| {
        let start = Instant::now();
        body();
        start.elapsed().as_secs_f64() * 1e3
    };
    let mut off_min = f64::INFINITY;
    let mut on_min = f64::INFINITY;
    for rep in 0..reps {
        let (o, n) = if rep % 2 == 0 {
            let o = time(&mut off);
            let n = time(&mut on);
            (o, n)
        } else {
            let n = time(&mut on);
            let o = time(&mut off);
            (o, n)
        };
        off_min = off_min.min(o);
        on_min = on_min.min(n);
    }
    (off_min, on_min, (on_min - off_min) / off_min)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_coign.json".to_string());
    let app = app_by_name("octarine").expect("octarine is registered");

    // 1. Profile replay: sequential vs parallel workers, byte-identical.
    let (sequential, sequential_ms) = timed_min_ms(|| {
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        profile_scenarios(app.as_ref(), &SCENARIOS, &classifier).expect("sequential profile")
    });
    let (parallel, parallel_ms) = timed_min_ms(|| {
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        profile_scenarios_parallel(app.as_ref(), &SCENARIOS, &classifier, JOBS)
            .expect("parallel profile")
    });
    assert_eq!(
        sequential.encode(),
        parallel.encode(),
        "parallel profile is not byte-identical to the sequential profile"
    );

    // 2. Marshal-size memoization: hit rate across the profiling runs
    // (the deep-copy size walk the cache short-circuits happens while
    // scenarios are profiled).
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let mut profile = coign::IccProfile::new();
    let (mut hits, mut misses) = (0u64, 0u64);
    for scenario in SCENARIOS {
        let run = profile_scenario(app.as_ref(), scenario, &classifier).expect("profiling pass");
        hits += run.report.marshal_cache_hits;
        misses += run.report.marshal_cache_misses;
        profile.merge(&run.profile);
    }
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };

    // 3. Network sweep: cold per-point solves vs warm-started chains.
    let grid = SweepGrid::paper_networks();
    let (cold, cold_ms) =
        timed_min_ms(|| sweep(app.as_ref(), &profile, &grid, SweepMode::Cold).expect("cold sweep"));
    let (warm, warm_ms) =
        timed_min_ms(|| sweep(app.as_ref(), &profile, &grid, SweepMode::Warm).expect("warm sweep"));
    assert_eq!(cold.points.len(), warm.points.len());
    assert!(
        warm_ms < cold_ms,
        "warm-started sweep ({warm_ms:.3} ms) must beat cold per-point solves ({cold_ms:.3} ms)"
    );
    for (c, w) in cold.points.iter().zip(&warm.points) {
        assert_eq!(
            (c.cut_value, &c.client, &c.server),
            (w.cut_value, &w.client, &w.server),
            "warm sweep diverged from cold at latency {} us / bandwidth {} B/s",
            c.latency_us,
            c.bandwidth_bps
        );
    }

    // 4. Trace-emission overhead: the same sequential profile replay with
    // a live tracer attached — every intercepted call emits an `icc_call`
    // instant plus a marshal-cache instant — must stay within 10% of the
    // untraced run, or tracing is too expensive to leave on in CI. The
    // untraced baseline is re-timed here in back-to-back pairs (not taken
    // from section 1): scheduler drift between sections dwarfs the
    // tracer's cost on a shared box.
    let mut traced_events = 0usize;
    let (untraced_ms, traced_ms, trace_overhead) = paired_overhead_ms(
        TRACE_REPS,
        || {
            let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
            profile_scenarios(app.as_ref(), &SCENARIOS, &classifier).expect("untraced profile");
        },
        || {
            let obs = Obs::enabled();
            obs.tracer.set_host_time(false);
            let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
            profile_scenarios_observed(app.as_ref(), &SCENARIOS, &classifier, Some(&obs))
                .expect("traced profile");
            traced_events = obs.tracer.len();
        },
    );
    assert!(
        traced_events > 0,
        "traced profile replay recorded no events"
    );
    assert!(
        trace_overhead < 0.10,
        "trace emission overhead {:.1}% exceeds the 10% budget \
         ({traced_ms:.3} ms traced vs {untraced_ms:.3} ms untraced)",
        trace_overhead * 100.0
    );

    // 5. Self-healing recovery: a machine-death run must finish via a
    // warm-started re-solve — exactly one cold solve however the run
    // goes — with the exactly-once ledger clean and the final placement
    // valid with the dead machine excluded.
    let scenario = SCENARIOS[0];
    let net_profile = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
    let dist = choose_distribution(app.as_ref(), &profile, &net_profile).expect("analysis");
    let plain = run_distributed(
        app.as_ref(),
        scenario,
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        9,
    )
    .expect("plain distributed run");
    let plan = FaultPlan::none().with_machine_down(
        MachineId::SERVER,
        TimeWindow::new(plain.clock_us / 3, u64::MAX),
    );
    let (recovering, recovering_ms) = timed_min_ms(|| {
        run_distributed_recovering(
            app.as_ref(),
            scenario,
            &classifier,
            &dist,
            &profile,
            NetworkModel::ethernet_10baset(),
            9,
            plan.clone(),
            CallPolicy::default(),
            9,
            RecoveryConfig::default(),
        )
        .expect("recovering run")
    });
    recovering
        .outcome
        .as_ref()
        .expect("machine-death run must finish after recovery");
    let coord = &recovering.coordinator;
    let (recoveries, warm_solves, cold_solves) = (
        coord.recovery_count(),
        coord.warm_solves(),
        coord.cold_solves(),
    );
    let migrations = coord.migration_count();
    assert!(recoveries >= 1, "machine death must trigger a recovery");
    assert!(
        warm_solves >= 1,
        "recovery re-solves must warm-start from the previous flow"
    );
    assert_eq!(cold_solves, 1, "only the base solve may be cold");
    assert_eq!(coord.double_executions(), 0, "exactly-once ledger violated");
    coord
        .validate()
        .expect("post-recovery placement violates constraints");

    // 6. Multiway placement with replication: the 3-machine solve over the
    // accumulated profile, without and with the replication plan from the
    // stage-4/5 legality analysis. The home placement must be identical in
    // both solves (replicas are additional copies, never moves), and on
    // the annotated octarine image the plan must buy a strictly positive
    // traffic reduction.
    let machines = 3;
    let rt = coign_com::ComRuntime::single_machine();
    app.register(&rt);
    let registry = rt.registry();
    let mut constraints = derive_tier_constraints(
        &profile,
        registry,
        MachineId::CLIENT,
        MachineId((machines - 1) as u16),
    );
    let extra = anchor_unpinned_machines(&profile, &net_profile, &constraints, machines)
        .expect("anchor unpinned machines");
    constraints.extend(extra);
    let mut sink = coign::lint::DiagnosticSink::new();
    let report = coign::lint::analyze_replication(registry, &mut sink);
    let replication_plan = ReplicationPlan::from_report(&report, &profile, registry);
    let (plain, plain_place_ms) = timed_min_ms(|| {
        analyze_multiway_with_replication(
            &profile,
            &net_profile,
            &constraints,
            machines,
            &ReplicationPlan::empty(),
        )
        .expect("plain multiway placement")
    });
    let (replicated, replicated_place_ms) = timed_min_ms(|| {
        analyze_multiway_with_replication(
            &profile,
            &net_profile,
            &constraints,
            machines,
            &replication_plan,
        )
        .expect("replicated multiway placement")
    });
    assert!(
        plain.replicas.is_empty(),
        "empty plan must place no replicas"
    );
    assert_eq!(
        plain.distribution.placement, replicated.distribution.placement,
        "replication moved the home placement"
    );
    let (heuristic_cut_ms, refined_cut_ms) = (
        plain.heuristic_cut_us / 1e3,
        plain.distribution.predicted_comm_us / 1e3,
    );
    let replication_gain_ms = replicated.replication_gain_us() / 1e3;
    let replica_count = replicated.replicas.len();
    assert!(
        refined_cut_ms <= heuristic_cut_ms + 1e-9,
        "greedy refinement regressed the heuristic cut"
    );
    assert!(
        replica_count >= 1 && replication_gain_ms > 0.0,
        "annotated octarine must yield at least one strictly-profitable replica"
    );

    // 7. Schedule-space exploration throughput over a generated app: the
    // default grid (128·2 fault instants × 4 breaker thresholds = 1024
    // interleavings) must complete with zero invariant violations, and the
    // calibration fit of the generated traffic must sit inside the
    // documented envelope. Timed once — the schedule itself is the load.
    let explore_opts = coign_gen::explore::ExploreOptions {
        jobs: JOBS,
        ..Default::default()
    };
    let explore_start = Instant::now();
    let explored = coign_gen::explore::explore(
        coign_gen::GenSpec::new(7, coign_gen::GenSize::Small),
        "g_main",
        &explore_opts,
    )
    .expect("schedule-space exploration over gen:7");
    let explore_s = explore_start.elapsed().as_secs_f64();
    assert!(
        explored.interleavings >= 1000,
        "default schedule must cover at least 1000 interleavings"
    );
    assert_eq!(
        explored.violations, 0,
        "generated app violated a recovery invariant"
    );
    assert!(
        explored.calibration_fit <= coign_gen::calibration::KS_TOLERANCE,
        "generated traffic drifted out of the calibration envelope"
    );
    let interleavings = explored.interleavings;
    let interleavings_per_sec = interleavings as f64 / explore_s.max(1e-9);
    let calibration_fit = explored.calibration_fit;

    // 8. The serving harness: 100k sessions multiplexed over a generated
    // app's chosen distribution (gen:42, the documented `coign serve`
    // example — its profile carries a production-shaped mix of crossing
    // and co-located traffic), batching on vs off over identical
    // workloads. Batching must buy at least 1.5× wall-clock call
    // throughput — the PDES payoff of one network-arrival event per batch
    // instead of one per message.
    let gen_app =
        coign_gen::GeneratedApp::new(coign_gen::GenSpec::new(42, coign_gen::GenSize::Small));
    let gen_classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let gen_profile = profile_scenarios(&gen_app, &["g_main"], &gen_classifier)
        .expect("gen:42 profile for the serving harness");
    let gen_dist =
        choose_distribution(&gen_app, &gen_profile, &net_profile).expect("gen:42 analysis");
    let serve_opts = coign::ServeOptions {
        sessions: 100_000,
        jobs: JOBS,
        ..coign::ServeOptions::default()
    };
    let (served, serve_ms) = timed_min_ms(|| {
        coign::serve::serve(
            &gen_profile,
            &gen_dist,
            &NetworkModel::ethernet_10baset(),
            &serve_opts,
        )
        .expect("serving harness run")
    });
    let unbatched_opts = coign::ServeOptions {
        batching: false,
        ..serve_opts.clone()
    };
    let (unbatched, unbatched_ms) = timed_min_ms(|| {
        coign::serve::serve(
            &gen_profile,
            &gen_dist,
            &NetworkModel::ethernet_10baset(),
            &unbatched_opts,
        )
        .expect("unbatched serving run")
    });
    assert_eq!(
        served.sessions, serve_opts.sessions,
        "serve must drain every session"
    );
    assert_eq!(
        unbatched.calls, served.calls,
        "batching changed the scripted call count"
    );
    let serve_sessions_per_sec = served.sessions as f64 / (serve_ms / 1e3);
    let serve_calls_per_sec = served.calls as f64 / (serve_ms / 1e3);
    let unbatched_calls_per_sec = unbatched.calls as f64 / (unbatched_ms / 1e3);
    let batching_speedup = unbatched_ms / serve_ms;
    assert!(
        batching_speedup >= 1.5,
        "per-link batching must buy at least 1.5x wall-clock call throughput \
         (batched {serve_ms:.1} ms vs unbatched {unbatched_ms:.1} ms)"
    );
    let mean_batch = served.mean_batch_size();
    let (serve_p50, serve_p95, serve_p99) = (
        served.latency_quantile_us(0.50),
        served.latency_quantile_us(0.95),
        served.latency_quantile_us(0.99),
    );
    let (serve_sessions, serve_calls) = (served.sessions, served.calls);
    let (serve_pool_hits, serve_pool_misses) = (served.pool_hits, served.pool_misses);

    // 9. Serving telemetry: the same 100k-session run with the windowed
    // timeline recorder and sampled causal tracing on. Telemetry must be
    // observation-only — the simulated summary stays byte-identical to the
    // telemetry-off run of section 8 — and its wall-clock overhead is
    // recorded (always) and asserted under 10%.
    let telemetry_opts = coign::ServeOptions {
        // The CLI's default window: ~1.3k windows over this run's ~132s
        // simulated horizon, tens of completions per window.
        timeline_window_us: 100_000,
        trace_sample: 1_000,
        ..serve_opts.clone()
    };
    // Timed as back-to-back off/on pairs rather than against section 8's
    // number: on a shared CI box the scheduler drift between sections
    // dwarfs the recorder's cost, so the baseline is re-timed in the same
    // breath as the telemetry run and the overhead is the median paired
    // delta.
    let mut telemetry_result = None;
    let (telemetry_baseline_ms, telemetry_ms, telemetry_overhead) = paired_overhead_ms(
        TELEMETRY_REPS,
        || {
            coign::serve::serve(
                &gen_profile,
                &gen_dist,
                &NetworkModel::ethernet_10baset(),
                &serve_opts,
            )
            .expect("telemetry baseline run");
        },
        || {
            let tracer = coign_obs::trace::Tracer::enabled();
            tracer.set_host_time(false);
            let (report, timeline) = coign::serve::serve_traced(
                &gen_profile,
                &gen_dist,
                &NetworkModel::ethernet_10baset(),
                &telemetry_opts,
                Some(&tracer),
            )
            .expect("telemetry serving run");
            telemetry_result = Some((report, timeline, tracer.len()));
        },
    );
    let (telemetry_report, timeline, trace_spans) = telemetry_result.expect("TELEMETRY_REPS >= 1");
    assert_eq!(
        served.summary(false) + &served.summary(true),
        telemetry_report.summary(false) + &telemetry_report.summary(true),
        "serve telemetry perturbed the simulation: summary bytes changed"
    );
    let timeline = timeline.expect("timeline requested");
    let telemetry_windows = timeline.windows().len();
    let worst_window_p99 = timeline.slo(0).worst.map_or(0.0, |w| w.p99_us);
    assert!(trace_spans > 0, "sampled serve tracing recorded no spans");
    assert!(telemetry_windows > 0, "timeline recorded no windows");
    assert!(
        telemetry_overhead < 0.10,
        "serve telemetry overhead {:.1}% exceeds the 10% budget \
         ({telemetry_ms:.3} ms on vs {telemetry_baseline_ms:.3} ms off)",
        telemetry_overhead * 100.0
    );

    // 10. Degraded serving: a 100k-session run under a seeded fault plan
    // — a permanent machine death plus message loss and latency spikes —
    // with replica-aware failover installed. The image is gen:3 (the
    // degraded-serve CI smoke's image) rather than section 8's gen:42:
    // gen:3 is the small generated app whose replication-legality pass
    // yields profitable replicas, so a machine death exercises the O(1)
    // re-point path, not just degraded-mode shedding. The plan's horizon
    // comes from a fault-free probe run, the same idiom `coign serve
    // --fault-seed` uses. The windowed timeline splits the p99 into
    // before/during/after-recovery segments (split at the first and last
    // recovery epoch) so the degradation and the recovery are visible in
    // the record, not just the aggregate; availability must hold a 0.85
    // floor even while the machine is dead, and at least one call must be
    // served by a surviving replica.
    let deg_app =
        coign_gen::GeneratedApp::new(coign_gen::GenSpec::new(3, coign_gen::GenSize::Small));
    let deg_classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let deg_profile = profile_scenarios(&deg_app, &["g_main"], &deg_classifier)
        .expect("gen:3 profile for the degraded serving run");
    let deg_dist =
        choose_distribution(&deg_app, &deg_profile, &net_profile).expect("gen:3 analysis");
    let probe = coign::serve::serve(
        &deg_profile,
        &deg_dist,
        &NetworkModel::ethernet_10baset(),
        &serve_opts,
    )
    .expect("fault-free probe run");
    let mut victims: Vec<MachineId> = deg_dist
        .placement
        .values()
        .copied()
        .filter(|m| *m != MachineId::CLIENT)
        .collect();
    victims.sort();
    victims.dedup();
    let degraded_plan = FaultPlan::seeded(42, probe.horizon_us, &victims);
    assert!(
        !degraded_plan.is_empty(),
        "the seeded plan must schedule at least a machine death"
    );
    let degraded_replicas = {
        let deg_rt = coign_com::ComRuntime::single_machine();
        deg_app.register(&deg_rt);
        let deg_registry = deg_rt.registry();
        let mut deg_sink = coign::lint::DiagnosticSink::new();
        let deg_report = coign::lint::analyze_replication(deg_registry, &mut deg_sink);
        let deg_plan = ReplicationPlan::from_report(&deg_report, &deg_profile, deg_registry);
        let deg_machines = deg_dist
            .placement
            .values()
            .map(|m| m.0 as usize + 1)
            .max()
            .unwrap_or(2)
            .max(2);
        let replicas = replicate_for_distribution(
            &deg_profile,
            &net_profile,
            &deg_dist,
            deg_machines,
            &deg_plan,
            &[],
        );
        assert!(
            !replicas.is_empty(),
            "gen:3 must yield profitable replicas for the failover path"
        );
        Some(ReplicaRouter::new(&deg_dist, &replicas))
    };
    let degraded_opts = coign::ServeOptions {
        timeline_window_us: 100_000,
        faults: degraded_plan,
        replicas: degraded_replicas.clone(),
        ..serve_opts.clone()
    };
    let ((degraded, degraded_series), degraded_ms) = timed_min_ms(|| {
        coign::serve::serve_traced(
            &deg_profile,
            &deg_dist,
            &NetworkModel::ethernet_10baset(),
            &degraded_opts,
            None,
        )
        .expect("degraded serving run")
    });
    assert_eq!(
        degraded.sessions, serve_opts.sessions,
        "a faulted serve must still drain every session"
    );
    let dfaults = degraded
        .faults
        .as_ref()
        .expect("a non-empty plan must produce a fault report");
    let availability = dfaults.availability(degraded.calls);
    assert!(
        availability >= 0.85,
        "availability {availability:.4} fell through the 0.85 floor under \
         machine death with failover installed"
    );
    assert!(
        !dfaults.dead_machines.is_empty(),
        "the scheduled machine death was never declared"
    );
    let degraded_failovers = dfaults.failovers;
    let degraded_replica_served = dfaults.replica_served;
    assert!(
        degraded_failovers > 0,
        "the death must re-point at least one classification at a replica"
    );
    assert!(
        degraded_replica_served > 0,
        "no call was served by a surviving replica"
    );
    let recovery_epochs = dfaults.recovery_epochs.len();
    let first_epoch_us = *dfaults
        .recovery_epochs
        .first()
        .expect("machine death opens at least one recovery epoch");
    let last_epoch_us = *dfaults.recovery_epochs.last().expect("nonempty");
    let series = degraded_series.expect("timeline requested");
    let bounds = series.latency_bounds().to_vec();
    let windows = series.windows();
    let first_idx = (first_epoch_us / degraded_opts.timeline_window_us) as usize;
    let last_idx = (last_epoch_us / degraded_opts.timeline_window_us) as usize;
    let p99_over = |lo: usize, hi: usize| -> f64 {
        let mut merged = vec![0u64; bounds.len() + 1];
        for w in windows.get(lo..hi.min(windows.len())).unwrap_or(&[]) {
            for (m, c) in merged.iter_mut().zip(&w.latency_counts) {
                *m += *c;
            }
        }
        quantile_from_buckets(&bounds, &merged, 0.99).unwrap_or(0.0)
    };
    let p99_before_us = p99_over(0, first_idx);
    let p99_during_us = p99_over(first_idx, last_idx + 1);
    let p99_after_us = p99_over(last_idx + 1, windows.len());
    let degraded_dead = dfaults
        .dead_machines
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let degraded_replicated = degraded_replicas.is_some();

    // `profile.speedup` can sit below 1.0 on a single-core host — the
    // parallel path then only adds thread setup over the sequential replay
    // — so the field records the trajectory instead of asserting a floor.
    let profile_speedup = sequential_ms / parallel_ms;

    let json = format!(
        "{{\"profile\":{{\"scenarios\":{},\"sequential_ms\":{sequential_ms:.3},\
         \"parallel_jobs\":{JOBS},\"parallel_ms\":{parallel_ms:.3},\
         \"speedup\":{profile_speedup:.3},\
         \"byte_identical\":true}},\
         \"marshal_cache\":{{\"hits\":{hits},\"misses\":{misses},\"hit_rate\":{hit_rate:.4}}},\
         \"sweep\":{{\"grid_points\":{},\"cold_ms\":{cold_ms:.3},\"warm_ms\":{warm_ms:.3},\
         \"speedup\":{:.3},\"cut_values_identical\":true}},\
         \"trace\":{{\"events\":{traced_events},\"traced_ms\":{traced_ms:.3},\
         \"overhead_frac\":{trace_overhead:.4}}},\
         \"recovery\":{{\"recoveries\":{recoveries},\"warm_solves\":{warm_solves},\
         \"cold_solves\":{cold_solves},\"migrations\":{migrations},\
         \"double_executions\":0,\"recovering_ms\":{recovering_ms:.3}}},\
         \"multiway\":{{\"machines\":{machines},\"heuristic_cut_ms\":{heuristic_cut_ms:.3},\
         \"refined_cut_ms\":{refined_cut_ms:.3},\"replicas\":{replica_count},\
         \"replication_gain_ms\":{replication_gain_ms:.3},\
         \"plain_place_ms\":{plain_place_ms:.3},\
         \"replicated_place_ms\":{replicated_place_ms:.3}}},\
         \"explore\":{{\"interleavings\":{interleavings},\"violations\":0,\
         \"interleavings_per_sec\":{interleavings_per_sec:.1},\
         \"calibration_fit\":{calibration_fit:.4},\
         \"calibration_tolerance\":{:.3}}},\
         \"serve\":{{\"sessions\":{serve_sessions},\"shards\":{},\
         \"calls\":{serve_calls},\"mean_batch_size\":{mean_batch:.2},\
         \"pool_hits\":{serve_pool_hits},\"pool_misses\":{serve_pool_misses},\
         \"serve_ms\":{serve_ms:.3},\"sessions_per_sec\":{serve_sessions_per_sec:.1},\
         \"calls_per_sec\":{serve_calls_per_sec:.1},\
         \"unbatched_ms\":{unbatched_ms:.3},\
         \"unbatched_calls_per_sec\":{unbatched_calls_per_sec:.1},\
         \"batching_speedup\":{batching_speedup:.3},\
         \"latency_us\":{{\"p50\":{serve_p50:.1},\"p95\":{serve_p95:.1},\
         \"p99\":{serve_p99:.1}}}}},\
         \"telemetry\":{{\"windows\":{telemetry_windows},\
         \"worst_window_p99_us\":{worst_window_p99:.1},\
         \"trace_spans\":{trace_spans},\"telemetry_ms\":{telemetry_ms:.3},\
         \"overhead_frac\":{telemetry_overhead:.4},\"summary_identical\":true}},\
         \"degraded_serve\":{{\"sessions\":{},\"calls\":{},\
         \"availability\":{availability:.4},\
         \"failed_calls\":{},\"timeouts\":{},\"retries\":{},\"drops\":{},\
         \"replicated\":{degraded_replicated},\
         \"failovers\":{degraded_failovers},\
         \"replica_served\":{degraded_replica_served},\
         \"recovery_epochs\":{recovery_epochs},\
         \"first_epoch_us\":{first_epoch_us},\
         \"dead_machines\":[{degraded_dead}],\
         \"p99_us\":{{\"before\":{p99_before_us:.1},\"during\":{p99_during_us:.1},\
         \"after\":{p99_after_us:.1}}},\
         \"degraded_ms\":{degraded_ms:.3}}}}}",
        SCENARIOS.len(),
        cold.points.len(),
        cold_ms / warm_ms,
        coign_gen::calibration::KS_TOLERANCE,
        serve_opts.shards,
        degraded.sessions,
        degraded.calls,
        dfaults.stats.failed_calls,
        dfaults.stats.timeouts,
        dfaults.stats.retries,
        dfaults.stats.drops,
    );
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark output");
    println!("wrote {out}");
    println!(
        "profile {sequential_ms:.1} ms sequential / {parallel_ms:.1} ms with {JOBS} workers; \
         marshal cache hit rate {:.1}%; sweep {cold_ms:.1} ms cold / {warm_ms:.1} ms warm; \
         tracing {traced_events} events at {:.1}% overhead; \
         recovery {recoveries} recovery(ies), {warm_solves} warm / {cold_solves} cold solve(s), \
         {migrations} migration(s) in {recovering_ms:.1} ms; \
         multiway cut {heuristic_cut_ms:.1} ms heuristic / {refined_cut_ms:.1} ms refined, \
         {replica_count} replica(s) saving {replication_gain_ms:.1} ms; \
         explore {interleavings} interleaving(s) at {interleavings_per_sec:.0}/s, \
         0 violation(s), calibration K-S {calibration_fit:.3}; \
         serve {serve_sessions} session(s) in {serve_ms:.1} ms \
         ({serve_calls_per_sec:.0} calls/s wall, mean batch {mean_batch:.1}, \
         batching speedup {batching_speedup:.2}x); \
         telemetry {telemetry_windows} window(s), {trace_spans} span(s) at {:.1}% overhead; \
         degraded serve availability {availability:.4} through {recovery_epochs} recovery \
         epoch(s) ({degraded_failovers} failover(s), {degraded_replica_served} replica-served \
         call(s); p99 {p99_before_us:.0}/{p99_during_us:.0}/{p99_after_us:.0} us \
         before/during/after) in {degraded_ms:.1} ms",
        hit_rate * 100.0,
        trace_overhead * 100.0,
        telemetry_overhead * 100.0
    );
}
