//! Figure 7 — Octarine with Multi-page Table.
//!
//! With a document containing a single five-page table, Coign locates only
//! a single component (the document reader) on the server.

use coign_apps::Octarine;
use coign_bench::figure_for;

fn main() {
    let fig = figure_for(&Octarine, "o_oldtb0").expect("figure run");
    println!("Figure 7. Octarine with Multi-page Table (5-page table document)\n");
    println!("Components in the application:        {}", fig.total);
    println!("Placed on the server by Coign:        {}", fig.server);
    println!(
        "(plus {} pinned storage component(s) — the document file)",
        fig.pinned_storage
    );
    println!();
    println!("Server-side components:");
    for (class, n) in &fig.server_classes {
        println!("  {n:>3} x {class}");
    }
    println!();
    println!(
        "Communication time: default {:.3} s -> Coign {:.3} s",
        fig.comm_secs.0, fig.comm_secs.1
    );
    println!();
    println!("Paper: 1 of 476 components on the server.");
}
