//! Ablation: how the choice of instance classifier affects distribution
//! quality.
//!
//! The paper argues (§3.4) that automatic partitioning depends on instance
//! classifiers that preserve distribution granularity: the static-type
//! classifier "must assign all instances to the same machine — a
//! debilitating feature", and the incremental classifier "fails miserably
//! for dynamic, commercial applications".
//!
//! This experiment makes the failure measurable. One profile covering both
//! a small text document (optimal: stay whole) and a large table document
//! (optimal: move the reader and table model to the server) is analyzed
//! with different classifiers, and the resulting *single* distribution is
//! executed against both scenarios:
//!
//! * IFCB keeps the two documents' readers apart (different instantiation
//!   contexts) and serves both scenarios optimally.
//! * ST merges every `OctDocReader` into one classification and must pick
//!   one placement for both — whichever document loses, loses badly.
//! * The incremental classifier cannot re-recognize instances in the
//!   distributed run at all: placements fall back to the client and the
//!   big document's savings evaporate.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario, run_default, run_distributed};
use coign_apps::Octarine;
use coign_bench::{network, network_profile, render_table, HARNESS_SEED};
use coign_com::ComResult;
use std::sync::Arc;

const SCENARIOS: [&str; 2] = ["o_oldwp0", "o_oldtb3"];

fn savings_for(kind: ClassifierKind) -> ComResult<Vec<f64>> {
    let app = Octarine;
    let classifier = Arc::new(InstanceClassifier::new(kind));
    // One merged profile covering both usage patterns...
    let mut merged = coign::profile::IccProfile::new();
    for scenario in SCENARIOS {
        merged.merge(&profile_scenario(&app, scenario, &classifier)?.profile);
    }
    // ...one distribution...
    let dist = choose_distribution(&app, &merged, &network_profile())?;
    // ...executed against each scenario.
    let mut out = Vec::new();
    for scenario in SCENARIOS {
        let default = run_default(&app, scenario, network(), HARNESS_SEED)?;
        let coign = run_distributed(&app, scenario, &classifier, &dist, network(), HARNESS_SEED)?;
        let saving = (default.stats.comm_us as f64 - coign.stats.comm_us as f64)
            / default.stats.comm_us.max(1) as f64;
        out.push(saving);
    }
    Ok(out)
}

fn main() {
    println!("Ablation: classifier choice vs. distribution quality");
    println!("(one distribution optimized for the combined o_oldwp0 + o_oldtb3 profile)\n");
    let mut rows = Vec::new();
    for kind in [
        ClassifierKind::Ifcb,
        ClassifierKind::Stcb,
        ClassifierKind::Pcb,
        ClassifierKind::St,
        ClassifierKind::Incremental,
    ] {
        let savings = savings_for(kind).expect("ablation run");
        rows.push(vec![
            kind.name().to_string(),
            format!("{:+.0}%", savings[0] * 100.0),
            format!("{:+.0}%", savings[1] * 100.0),
            format!("{:+.0}%", (savings[0] + savings[1]) / 2.0 * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Classifier", "o_oldwp0 savings", "o_oldtb3 savings", "mean"],
            &rows,
        )
    );
    println!("Negative savings = the classifier's merged placements made that");
    println!("scenario *slower* than the non-distributed default.");
}
