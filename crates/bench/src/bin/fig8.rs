//! Figure 8 — Octarine with Tables and Text.
//!
//! With a five-page text document containing fewer than a dozen embedded
//! tables, the optimal distribution changes radically: the complex page
//! placement negotiations between the table components and the text
//! components move to the server (their output to the rest of the
//! application is minimal). Paper: 281 of 786 components on the server.

use coign_apps::Octarine;
use coign_bench::figure_for;

fn main() {
    let fig = figure_for(&Octarine, "o_oldbth").expect("figure run");
    println!("Figure 8. Octarine with Tables and Text (5 pages + 11 embedded tables)\n");
    println!("Components in the application:        {}", fig.total);
    println!("Placed on the server by Coign:        {}", fig.server);
    println!(
        "(plus {} pinned storage component(s) — the document file)",
        fig.pinned_storage
    );
    println!();
    println!("Server-side components (the page-placement negotiation cluster):");
    for (class, n) in &fig.server_classes {
        println!("  {n:>3} x {class}");
    }
    println!();
    println!(
        "Communication time: default {:.3} s -> Coign {:.3} s",
        fig.comm_secs.0, fig.comm_secs.1
    );
    println!();
    println!("Paper: 281 of 786 components on the server.");
    println!("Compare Figure 5 (text only: 2 on the server) — the same application,");
    println!("a different document mix, a radically different optimal distribution.");
}
