//! Table 5 — Accuracy of Prediction Models.
//!
//! Predicted application execution time (compute from profiling plus the
//! α/β network model applied to cross-machine traffic) versus measured
//! execution time of the distributed run, per scenario, with the signed
//! relative error. The application is optimized for the chosen scenario
//! before execution.

use coign_apps::scenarios::{all_scenarios, app_by_name};
use coign_bench::{network_profile, optimize_and_run, render_table};

fn main() {
    println!("Table 5. Accuracy of Prediction Models\n");
    let net = network_profile();
    let mut rows = Vec::new();
    let mut worst: i64 = 0;
    for scenario in all_scenarios() {
        let app = app_by_name(scenario.app).expect("known app");
        let outcome = optimize_and_run(app.as_ref(), scenario.name)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let row = outcome.prediction(&net);
        worst = worst.max(row.error_pct().abs());
        rows.push(vec![
            scenario.name.to_string(),
            format!("{:.3}", row.predicted_us / 1e6),
            format!("{:.3}", row.measured_us / 1e6),
            format!("{:+}%", row.error_pct()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Scenario", "Predicted (s)", "Measured (s)", "Error"],
            &rows,
        )
    );
    println!("Largest absolute error: {worst}%");
}
