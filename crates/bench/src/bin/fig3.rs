//! Figure 3 — Summary of Classifiers.
//!
//! Reconstructs the paper's worked example with real components:
//!
//! ```text
//! A::V() { ... a->W()  ... }   // internal call within instance a
//! A::W() { ... b1->X() ... }
//! B::X() { ... b2->Y() ... }
//! B::Y() { ... c->Z()  ... }
//! C::Z() { ... CoCreateInstance(D) }
//! ```
//!
//! and prints every classifier's descriptor for the instantiation of `D`.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::logger::NullLogger;
use coign::rte::CoignRte;
use coign_com::idl::InterfaceBuilder;
use coign_com::{
    ApiImports, CallCtx, Clsid, ComError, ComObject, ComResult, ComRuntime, Iid, Message, PType,
    Value,
};
use std::sync::Arc;

struct AImpl;
impl ComObject for AImpl {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        match method {
            // V: internal call to our own W, passing b1 through.
            0 => {
                let me = rt.make_ptr(ctx.self_id(), Iid::from_name("IA"))?;
                let mut fwd = Message::new(vec![msg.args[0].clone()]);
                me.call(rt, 1, &mut fwd)
            }
            // W: call b1.X().
            1 => {
                let b1 = msg.arg(0).and_then(Value::as_interface).cloned().unwrap();
                b1.call(rt, 0, &mut Message::empty())
            }
            other => Err(ComError::App(format!("IA has no method {other}"))),
        }
    }
}

struct BImpl;
impl ComObject for BImpl {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        _msg: &mut Message,
    ) -> ComResult<()> {
        let rt = ctx.rt();
        match method {
            // X: create the second B instance and call its Y.
            0 => {
                let b2 = ctx.create(Clsid::from_name("B"), Iid::from_name("IB"))?;
                b2.call(rt, 1, &mut Message::empty())
            }
            // Y: create c and call its Z.
            1 => {
                let c = ctx.create(Clsid::from_name("C"), Iid::from_name("IC"))?;
                c.call(rt, 0, &mut Message::empty())
            }
            other => Err(ComError::App(format!("IB has no method {other}"))),
        }
    }
}

struct CImpl;
impl ComObject for CImpl {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        _msg: &mut Message,
    ) -> ComResult<()> {
        // Z: CoCreateInstance(D).
        ctx.create(Clsid::from_name("D"), Iid::from_name("ID"))?;
        Ok(())
    }
}

struct DImpl;
impl ComObject for DImpl {
    fn invoke(
        &self,
        _ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        _msg: &mut Message,
    ) -> ComResult<()> {
        Ok(())
    }
}

fn register(rt: &ComRuntime) {
    let ia = InterfaceBuilder::new("IA")
        .method("V", |m| {
            m.input("b1", PType::Interface(Iid::from_name("IB")))
        })
        .method("W", |m| {
            m.input("b1", PType::Interface(Iid::from_name("IB")))
        })
        .build();
    let ib = InterfaceBuilder::new("IB")
        .method("X", |m| m)
        .method("Y", |m| m)
        .build();
    let ic = InterfaceBuilder::new("IC").method("Z", |m| m).build();
    let id = InterfaceBuilder::new("ID").method("Noop", |m| m).build();
    rt.registry()
        .register("A", vec![ia], ApiImports::NONE, |_, _| Arc::new(AImpl));
    rt.registry()
        .register("B", vec![ib], ApiImports::NONE, |_, _| Arc::new(BImpl));
    rt.registry()
        .register("C", vec![ic], ApiImports::NONE, |_, _| Arc::new(CImpl));
    rt.registry()
        .register("D", vec![id], ApiImports::NONE, |_, _| Arc::new(DImpl));
}

fn main() {
    println!("Figure 3. Summary of Classifiers\n");
    println!("Program control flow:");
    println!("  A::V() {{ a->W() }}  A::W() {{ b1->X() }}  B::X() {{ b2->Y() }}");
    println!("  B::Y() {{ c->Z() }}  C::Z() {{ CoCreateInstance(D) }}\n");
    for kind in ClassifierKind::ALL {
        let rt = ComRuntime::single_machine();
        register(&rt);
        let classifier = Arc::new(InstanceClassifier::new(kind));
        rt.add_hook(Arc::new(CoignRte::profiling(
            classifier.clone(),
            Arc::new(NullLogger),
        )));

        let a = rt
            .create_instance(Clsid::from_name("A"), Iid::from_name("IA"))
            .unwrap();
        let b1 = rt
            .create_instance(Clsid::from_name("B"), Iid::from_name("IB"))
            .unwrap();
        let mut v = Message::new(vec![Value::Interface(Some(b1))]);
        a.call(&rt, 0, &mut v).unwrap();

        let d_instance = rt
            .instances_snapshot()
            .into_iter()
            .find(|i| i.clsid == Clsid::from_name("D"))
            .expect("D was created");
        let class = classifier.classification_of(d_instance.id).unwrap();
        let descriptor = classifier.descriptor(class).unwrap();
        let names = |c: Clsid| {
            for n in ["A", "B", "C", "D"] {
                if Clsid::from_name(n) == c {
                    return n.to_string();
                }
            }
            "?".to_string()
        };
        println!(
            "{:<28} {}",
            format!("{}:", kind.name()),
            descriptor.render(&names)
        );
    }
    println!();
    println!("(m0/m1 are vtable slots: A::m0=V, A::m1=W, B::m0=X, B::m1=Y, C::m0=Z;");
    println!(" c:<n> names the classification previously assigned to the executing instance.)");
}
