//! Development probe: one-line distribution summaries for the scenarios
//! behind the paper's figures and headline rows — the quick feedback loop
//! used while tuning the synthetic applications. For the full formatted
//! reproductions use `repro_all` or the individual `figN`/`tableN`
//! binaries.

use coign_apps::{Benefits, Octarine, PhotoDraw};
use coign_bench::figure_for;

fn main() {
    let cases: Vec<(&str, Box<dyn coign::application::Application>)> = vec![
        ("o_fig5", Box::new(Octarine)),
        ("o_oldwp0", Box::new(Octarine)),
        ("o_oldwp3", Box::new(Octarine)),
        ("o_oldwp7", Box::new(Octarine)),
        ("o_oldtb0", Box::new(Octarine)),
        ("o_oldtb3", Box::new(Octarine)),
        ("o_oldbth", Box::new(Octarine)),
        ("p_oldmsr", Box::new(PhotoDraw)),
        ("b_vueone", Box::new(Benefits::default())),
        ("b_bigone", Box::new(Benefits::default())),
    ];
    for (scenario, app) in cases {
        match figure_for(app.as_ref(), scenario) {
            Ok(fig) => {
                println!(
                    "{:<10} total={:<5} server={:<4} pinned={} nonremot={} comm {:.3}s -> {:.3}s ({:.0}%)",
                    fig.scenario,
                    fig.total,
                    fig.server,
                    fig.pinned_storage,
                    fig.non_remotable_pairs,
                    fig.comm_secs.0,
                    fig.comm_secs.1,
                    100.0 * (fig.comm_secs.0 - fig.comm_secs.1) / fig.comm_secs.0.max(1e-9),
                );
                for (class, n) in &fig.server_classes {
                    println!("             server: {n:>4} x {class}");
                }
            }
            Err(e) => println!("{scenario}: ERROR {e}"),
        }
    }
}
