//! Runs the complete reproduction: every table and figure, in paper order.
//!
//! `cargo run -p coign-bench --release --bin repro_all` regenerates the
//! data behind `EXPERIMENTS.md` in one shot.

use std::process::Command;

fn main() {
    let bins = [
        "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "fig5", "fig6", "fig7",
        "fig8",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("{}", "=".repeat(78));
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("{}", "=".repeat(78));
    println!("All tables and figures reproduced.");
}
