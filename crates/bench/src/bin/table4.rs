//! Table 4 — Reduction in Communication Time.
//!
//! For every scenario of Table 1: communication time under the default
//! (as-shipped) distribution versus the Coign-chosen distribution, and the
//! relative savings. As in the paper, the application is optimized for the
//! scenario, data files live on the server, and the network is an isolated
//! 10BaseT Ethernet.

use coign_apps::scenarios::{all_scenarios, app_by_name};
use coign_bench::{optimize_and_run, render_table};

fn main() {
    println!("Table 4. Reduction in Communication Time\n");
    let mut rows = Vec::new();
    for scenario in all_scenarios() {
        let app = app_by_name(scenario.app).expect("known app");
        let outcome = optimize_and_run(app.as_ref(), scenario.name)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        rows.push(vec![
            scenario.name.to_string(),
            format!("{:.3}", outcome.default_report.comm_secs()),
            format!("{:.3}", outcome.coign_report.comm_secs()),
            format!("{:.0}%", outcome.savings() * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["Scenario", "Default (s)", "Coign (s)", "Savings"], &rows,)
    );
    println!("Communication time for the default distribution of the application");
    println!("(as shipped by the developer) and for the Coign-chosen distribution.");
}
