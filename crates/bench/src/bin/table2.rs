//! Table 2 — Classifier Accuracy.
//!
//! Runs all seven instance classifiers through every Octarine profiling
//! scenario (everything except `o_bigone`), then through `o_bigone`, and
//! reports: classifications identified while profiling, new classifications
//! first seen in `bigone`, average instances per classification in
//! `bigone`, and the average correlation between each `bigone` instance's
//! communication vector and its classification's profiled vector.

use coign::classifier::ClassifierKind;
use coign::metrics::evaluate_classifier;
use coign_apps::scenarios::{bigone, profiling_scenarios};
use coign_apps::Octarine;
use coign_bench::{network_profile, render_table};

fn main() {
    let app = Octarine;
    let net = network_profile();
    let scenarios = profiling_scenarios("octarine");
    let big = bigone("octarine").expect("octarine has a bigone");
    println!("Table 2. Classifier Accuracy (Octarine, bigone scenario)\n");
    let mut rows = Vec::new();
    for kind in ClassifierKind::ALL {
        let eval =
            evaluate_classifier(&app, kind, None, &scenarios, big, &net).expect("evaluation");
        rows.push(vec![
            kind.name().to_string(),
            eval.profiled_classifications.to_string(),
            eval.new_classifications.to_string(),
            format!("{:.1}", eval.avg_instances_per_classification),
            format!("{:.3}", eval.avg_correlation),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Instance Classifier",
                "Profiled Classifications",
                "New (bigone)",
                "Instances/Class",
                "Avg Correlation",
            ],
            &rows,
        )
    );
}
