//! Figure 4 — PhotoDraw Distribution.
//!
//! PhotoDraw loads a 3 MB composition, displays it, and exits. The paper:
//! of 295 components, Coign places eight on the server — the component
//! that reads the document file plus seven high-level property sets created
//! directly from data in the file. Almost 50 significant interfaces are
//! non-distributable (sprite caches sharing memory with the UI).

use coign_apps::PhotoDraw;
use coign_bench::figure_for;

fn main() {
    let fig = figure_for(&PhotoDraw, "p_oldmsr").expect("figure run");
    println!(
        "Figure 4. PhotoDraw Distribution (scenario {})\n",
        fig.scenario
    );
    println!("Components in the application:        {}", fig.total);
    println!("Placed on the server by Coign:        {}", fig.server);
    println!(
        "(plus {} pinned storage component(s) — the document file)",
        fig.pinned_storage
    );
    println!(
        "Non-distributable interface pairs:    {}",
        fig.non_remotable_pairs
    );
    println!();
    println!("Server-side components:");
    for (class, n) in &fig.server_classes {
        println!("  {n:>3} x {class}");
    }
    println!();
    println!(
        "Communication time: default {:.3} s -> Coign {:.3} s",
        fig.comm_secs.0, fig.comm_secs.1
    );
    println!();
    println!("Paper: 8 of 295 components on the server (reader + 7 property sets).");
}
