//! Benchmarks the three max-flow/min-cut algorithms on communication-shaped
//! graphs (sparse, with pinned terminals), across graph sizes.

use coign_flow::{min_cut, FlowNetwork, MaxFlowAlgorithm, INFINITE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a graph shaped like a concrete ICC graph: `n` classification
/// nodes, source/sink pins, sparse weighted edges.
fn icc_like_graph(n: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let source = n;
    let sink = n + 1;
    let mut g = FlowNetwork::new(n + 2);
    // Spanning chain plus random chords.
    for i in 1..n {
        g.add_undirected(i - 1, i, rng.gen_range(1..10_000));
    }
    for _ in 0..(n * 3) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_undirected(u, v, rng.gen_range(1..10_000));
        }
    }
    // Pin ~10 % of nodes to each side.
    for i in 0..n / 10 {
        g.add_undirected(source, i * 10, INFINITE);
        g.add_undirected(i * 10 + 5 % n, sink, INFINITE);
    }
    g
}

fn bench_mincut(c: &mut Criterion) {
    let mut group = c.benchmark_group("mincut");
    for &n in &[50usize, 200, 800] {
        for alg in MaxFlowAlgorithm::ALL {
            group.bench_with_input(BenchmarkId::new(format!("{alg:?}"), n), &n, |b, &n| {
                let template = icc_like_graph(n, 42);
                b.iter(|| {
                    let mut g = template.clone();
                    min_cut(&mut g, n, n + 1, alg).cut_value
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mincut);
criterion_main!(benches);
