//! Compares raw, profiling-instrumented, and distribution-instrumented
//! executions of an Octarine scenario — the §3.2 overhead claims (≤85 %
//! profiling, <3 % distribution) concern *simulated* time; this bench
//! additionally tracks the real cost of our instrumentation machinery.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{profile_scenario, run_raw};
use coign_apps::Octarine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("informer_overhead");
    group.sample_size(10);
    group.bench_function("raw_o_oldwp0", |b| {
        b.iter(|| run_raw(&Octarine, "o_oldwp0").unwrap().clock_us)
    });
    group.bench_function("profiling_o_oldwp0", |b| {
        b.iter(|| {
            let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
            profile_scenario(&Octarine, "o_oldwp0", &classifier)
                .unwrap()
                .report
                .clock_us
        })
    });
    group.finish();

    // Report the *simulated* overhead ratios once.
    let raw = run_raw(&Octarine, "o_oldwp0").unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let prof = profile_scenario(&Octarine, "o_oldwp0", &classifier).unwrap();
    let ratio = (prof.report.clock_us as f64 - raw.clock_us as f64) / raw.clock_us as f64;
    println!(
        "simulated profiling overhead: {:.1}% (paper: up to 85%, typically ~45%)",
        ratio * 100.0
    );
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
