//! Benchmarks DCOM deep-copy size measurement — the hot loop of the
//! profiling informer.

use coign_com::Value;
use coign_dcom::value_size;
use criterion::{criterion_group, criterion_main, Criterion};

fn deep_value(depth: usize, width: usize) -> Value {
    if depth == 0 {
        return Value::Struct(vec![
            Value::I4(1),
            Value::Str("leaf".into()),
            Value::Blob(512),
        ]);
    }
    Value::Array((0..width).map(|_| deep_value(depth - 1, width)).collect())
}

fn bench_marshal(c: &mut Criterion) {
    let shallow = deep_value(1, 8);
    let deep = deep_value(4, 4);
    c.bench_function("value_size_shallow", |b| {
        b.iter(|| value_size(std::hint::black_box(&shallow)).unwrap())
    });
    c.bench_function("value_size_deep", |b| {
        b.iter(|| value_size(std::hint::black_box(&deep)).unwrap())
    });
}

criterion_group!(benches, bench_marshal);
criterion_main!(benches);
