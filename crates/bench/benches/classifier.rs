//! Benchmarks instance-classifier descriptor construction and interning —
//! the per-instantiation cost Coign pays at runtime.

use coign::application::Application;
use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::logger::NullLogger;
use coign::rte::CoignRte;
use coign_apps::Octarine;
use coign_com::ComRuntime;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn bench_classify_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_o_newdoc");
    group.sample_size(10);
    for kind in ClassifierKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let app = Octarine;
                    let rt = ComRuntime::single_machine();
                    app.register(&rt);
                    let classifier = Arc::new(InstanceClassifier::new(kind));
                    rt.add_hook(Arc::new(CoignRte::profiling(
                        classifier.clone(),
                        Arc::new(NullLogger),
                    )));
                    app.run_scenario(&rt, "o_newdoc").unwrap();
                    classifier.classification_count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_classify_scenario);
criterion_main!(benches);
