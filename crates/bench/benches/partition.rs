//! Benchmarks the end-to-end analysis pipeline (profile → constraints →
//! concrete graph → lift-to-front cut) and the network-profile fit.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario};
use coign_apps::{Benefits, Octarine};
use coign_dcom::{NetworkModel, NetworkProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);

    // Pre-profile once; the analysis step is what we're measuring.
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(&Octarine, "o_oldbth", &classifier).unwrap();
    let net = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
    group.bench_function("analyze_octarine_bth", |b| {
        b.iter(|| {
            choose_distribution(&Octarine, &run.profile, &net)
                .unwrap()
                .predicted_comm_us
        })
    });

    let classifier2 = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run2 = profile_scenario(&Benefits::default(), "b_bigone", &classifier2).unwrap();
    group.bench_function("analyze_benefits_bigone", |b| {
        b.iter(|| {
            choose_distribution(&Benefits::default(), &run2.profile, &net)
                .unwrap()
                .predicted_comm_us
        })
    });

    group.bench_function("network_profile_fit", |b| {
        b.iter(|| NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 40, 7).alpha_us)
    });
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
