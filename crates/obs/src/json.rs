//! A minimal hand-rolled JSON reader and string escaper.
//!
//! The repo deliberately carries no serde; every emitter hand-rolls its
//! JSON strings. This module supplies the missing other half — a small
//! recursive-descent parser — so tests can validate emitted documents
//! (Chrome traces, metrics snapshots) and the profiling `EventLogger` can
//! re-import its line-delimited export.
//!
//! Numbers are kept as their raw source text and parsed on demand, which
//! preserves exact `u64` values that a round-trip through `f64` would
//! corrupt.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document, requiring that the whole input is consumed.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The number parsed as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse::<i64>().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|()| Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {} (found {other:?})",
                    *pos
                ))
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {} (found {other:?})",
                    *pos
                ))
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        // Surrogate pairs are not needed by any emitter in
                        // this workspace; reject them rather than mis-decode.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| format!("\\u escape {code:#x} is not a scalar"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(&b) => {
                // Consume one multi-byte UTF-8 scalar. Only the scalar's own
                // bytes are validated — re-checking the whole remaining
                // buffer per character would make parsing quadratic.
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(format!("invalid UTF-8 at byte {}", *pos)),
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| "truncated UTF-8 scalar".to_string())?;
                let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(format!("invalid number '{raw}' at byte {start}"));
    }
    Ok(Json::Num(raw.to_string()))
}

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, -2.5, "x\ny", true, null], "b": {"c": 18446744073709551615}}"#;
        let v = Json::parse(doc).expect("parse");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ny")
        );
        // Exact u64 round-trip that f64 would corrupt.
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let ugly = "quote\" slash\\ newline\n tab\t ctrl\u{0001} unicode\u{00e9}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(ugly));
        let v = Json::parse(&doc).expect("parse escaped");
        assert_eq!(v.get("k").unwrap().as_str(), Some(ugly));
    }
}
