//! Span-based structured tracer with a Chrome trace-event JSON export.
//!
//! Events accumulate in a thread-safe sink and export as the Chrome
//! trace-event format (`{"traceEvents": [...]}`) that `chrome://tracing`
//! and Perfetto load directly. Two tracks keep the clock domains honest:
//!
//! * tid [`TRACK_PIPELINE`] — phase spans (`B`/`E` pairs) and pipeline
//!   instants, timestamped by a logical sequence counter so exported bytes
//!   are identical run to run.
//! * tid [`TRACK_RUNTIME`] — instant events timestamped by the simulated
//!   clock's microseconds, deterministic under a fixed seed.
//!
//! Host-monotonic phase durations are measured for every span but only
//! exported (as a `host_us` argument on the `E` event) when host time is
//! explicitly opted in, because wall-clock values would break byte
//! identity between same-seed runs.

use crate::json::{escape, Json};
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Thread id of the pipeline (logical-sequence) track.
pub const TRACK_PIPELINE: u32 = 0;
/// Thread id of the runtime (simulated-clock) track.
pub const TRACK_RUNTIME: u32 = 1;

/// Process id stamped on every event (single-process simulation).
const PID: u32 = 1;

/// Environment variable that opts host-monotonic durations into the
/// exported trace (at the cost of run-to-run byte identity).
pub const HOST_TIME_ENV: &str = "COIGN_TRACE_HOST_TIME";

/// One typed event argument.
///
/// Arguments are stored in cheap machine form and rendered to JSON only at
/// export time, keeping the per-event recording cost low enough for the
/// hot cut-crossing path.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceArg {
    /// JSON `null` (e.g. "no caller instance").
    Null,
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed static string (no allocation at record time).
    Static(&'static str),
    /// Owned string.
    Str(String),
    /// A 128-bit GUID, rendered in registry format
    /// `{XXXXXXXX-XXXX-XXXX-XXXX-XXXXXXXXXXXX}` at export time.
    Guid(u128),
}

impl TraceArg {
    /// Renders this argument as a JSON value (also used by the profiling
    /// `EventLogger`'s line-delimited export, so both emitters agree).
    pub fn render_json(&self, out: &mut String) {
        match self {
            TraceArg::Null => out.push_str("null"),
            TraceArg::U64(v) => out.push_str(&v.to_string()),
            TraceArg::I64(v) => out.push_str(&v.to_string()),
            TraceArg::F64(v) => out.push_str(&format!("{v}")),
            TraceArg::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            TraceArg::Static(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            TraceArg::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            TraceArg::Guid(bits) => {
                let b = bits.to_be_bytes();
                out.push('"');
                out.push_str(&format!(
                    "{{{:02X}{:02X}{:02X}{:02X}-{:02X}{:02X}-{:02X}{:02X}-{:02X}{:02X}-{:02X}{:02X}{:02X}{:02X}{:02X}{:02X}}}",
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11],
                    b[12], b[13], b[14], b[15]
                ));
                out.push('"');
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
    Instant,
    /// A complete span (`ph: "X"`): one event carrying `ts` + `dur`, used
    /// for simulated-time spans whose extent is known at record time.
    Complete,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Complete => "X",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
struct TraceEvent {
    name: Cow<'static, str>,
    cat: &'static str,
    ph: Phase,
    ts: u64,
    /// Duration for complete (`X`) events; unused otherwise.
    dur: u64,
    tid: u32,
    args: Vec<(&'static str, TraceArg)>,
}

impl TraceEvent {
    fn render(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        out.push_str(&escape(&self.name));
        out.push_str("\",\"cat\":\"");
        out.push_str(self.cat);
        out.push_str("\",\"ph\":\"");
        out.push_str(self.ph.code());
        out.push_str("\",\"ts\":");
        out.push_str(&self.ts.to_string());
        if self.ph == Phase::Complete {
            out.push_str(&format!(",\"dur\":{}", self.dur));
        }
        out.push_str(&format!(",\"pid\":{PID},\"tid\":{}", self.tid));
        if self.ph == Phase::Instant {
            // Thread-scoped instant, required by the Chrome trace format.
            out.push_str(",\"s\":\"t\"");
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(key);
                out.push_str("\":");
                value.render_json(out);
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// The structured tracer: a thread-safe sink of spans and instant events.
pub struct Tracer {
    enabled: bool,
    host_time: AtomicBool,
    seq: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// Creates a recording tracer. Host-time export is off unless the
    /// [`HOST_TIME_ENV`] environment variable is set to `1`.
    pub fn enabled() -> Tracer {
        let host = std::env::var(HOST_TIME_ENV)
            .map(|v| v == "1")
            .unwrap_or(false);
        Tracer {
            enabled: true,
            host_time: AtomicBool::new(host),
            seq: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Creates a tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            host_time: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// True when this tracer is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opts host-monotonic durations into (or out of) the export. When on,
    /// every phase span's `E` event carries a `host_us` argument and
    /// exported traces are no longer byte-identical across runs.
    pub fn set_host_time(&self, on: bool) {
        self.host_time.store(on, Ordering::Relaxed);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Creates a child tracer sharing this tracer's enablement, for
    /// buffering events on a worker (e.g. one profiled scenario) so they
    /// can be [`merged`](Tracer::merge_from) back in a deterministic order
    /// regardless of worker interleaving.
    pub fn child(&self) -> Tracer {
        Tracer {
            enabled: self.enabled,
            host_time: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Appends all events recorded by `child` (in their recorded order),
    /// draining the child. Pipeline-track events are re-timestamped through
    /// this tracer's sequence counter so the merged track stays monotonic;
    /// runtime-track events keep their simulated-clock timestamps.
    pub fn merge_from(&self, child: &Tracer) {
        if !self.enabled {
            return;
        }
        let mut drained = std::mem::take(&mut *child.events.lock());
        for event in &mut drained {
            if event.tid == TRACK_PIPELINE {
                event.ts = self.tick();
            }
        }
        self.events.lock().append(&mut drained);
    }

    fn tick(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// Opens a pipeline phase span (`B` event now, `E` on guard drop).
    pub fn phase_span(&self, name: impl Into<Cow<'static, str>>) -> PhaseSpan<'_> {
        self.phase_span_with(name, Vec::new())
    }

    /// Opens a pipeline phase span carrying arguments on its `B` event.
    pub fn phase_span_with(
        &self,
        name: impl Into<Cow<'static, str>>,
        args: Vec<(&'static str, TraceArg)>,
    ) -> PhaseSpan<'_> {
        let name = name.into();
        if self.enabled {
            self.push(TraceEvent {
                name: name.clone(),
                cat: "pipeline",
                ph: Phase::Begin,
                ts: self.tick(),
                dur: 0,
                tid: TRACK_PIPELINE,
                args,
            });
        }
        PhaseSpan {
            tracer: self,
            name,
            started: Instant::now(),
        }
    }

    /// Records an instant event on the pipeline track (sequence-counter
    /// timestamp).
    pub fn instant(&self, name: &'static str, args: Vec<(&'static str, TraceArg)>) {
        if !self.enabled {
            return;
        }
        let ts = self.tick();
        self.push(TraceEvent {
            name: Cow::Borrowed(name),
            cat: "pipeline",
            ph: Phase::Instant,
            ts,
            dur: 0,
            tid: TRACK_PIPELINE,
            args,
        });
    }

    /// Records an instant event on the runtime track, timestamped with the
    /// simulated clock's microseconds.
    pub fn instant_at(&self, name: &'static str, at_us: u64, args: Vec<(&'static str, TraceArg)>) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            name: Cow::Borrowed(name),
            cat: "runtime",
            ph: Phase::Instant,
            ts: at_us,
            dur: 0,
            tid: TRACK_RUNTIME,
            args,
        });
    }

    /// Records a complete (`X`) span on the runtime track: a span whose
    /// begin and duration are both simulated-clock microseconds, known at
    /// record time. This is the shape session/call/batch spans take in the
    /// serving harness — the DES knows a span's full extent when the
    /// completing event fires, so no begin/end pairing is needed, and
    /// overlapping spans from concurrent sessions coexist on one track.
    pub fn complete_at(
        &self,
        name: impl Into<Cow<'static, str>>,
        at_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, TraceArg)>,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            name: name.into(),
            cat: "runtime",
            ph: Phase::Complete,
            ts: at_us,
            dur: dur_us,
            tid: TRACK_RUNTIME,
            args,
        });
    }

    /// Exports every recorded event as a Chrome trace-event JSON document.
    pub fn export_chrome_json(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            event.render(&mut out);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// RAII guard for a pipeline phase span; emits the `E` event on drop.
///
/// The guard always measures host-monotonic elapsed time; the measurement
/// reaches the exported bytes only when host time is opted in (see
/// [`Tracer::set_host_time`]).
pub struct PhaseSpan<'a> {
    tracer: &'a Tracer,
    name: Cow<'static, str>,
    started: Instant,
}

impl PhaseSpan<'_> {
    /// Host-monotonic time elapsed since the span opened, in microseconds.
    pub fn elapsed_host_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if !self.tracer.enabled {
            return;
        }
        let mut args = Vec::new();
        if self.tracer.host_time.load(Ordering::Relaxed) {
            args.push(("host_us", TraceArg::U64(self.elapsed_host_us())));
        }
        let ts = self.tracer.tick();
        self.tracer.push(TraceEvent {
            name: self.name.clone(),
            cat: "pipeline",
            ph: Phase::End,
            ts,
            dur: 0,
            tid: TRACK_PIPELINE,
            args,
        });
    }
}

/// Aggregate facts about a validated Chrome trace, for test assertions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total event count.
    pub events: usize,
    /// Names that appeared as complete (`B`…`E`) spans.
    pub span_names: BTreeSet<String>,
    /// Instant-event occurrence counts by name.
    pub instants: BTreeMap<String, usize>,
}

impl TraceSummary {
    /// True when a complete span with this name exists.
    pub fn has_span(&self, name: &str) -> bool {
        self.span_names.contains(name)
    }

    /// Number of instant events with this name.
    pub fn instant_count(&self, name: &str) -> usize {
        self.instants.get(name).copied().unwrap_or(0)
    }
}

/// Validates a Chrome trace-event JSON document against the subset of the
/// format this crate emits: a `traceEvents` array of objects with string
/// `name`/`cat`, `ph` of `B`/`E`/`i`/`X`, numeric `ts`/`pid`/`tid`,
/// thread-scoped instants carrying `"s"`, and `B`/`E` events properly
/// nested per thread. Returns a [`TraceSummary`] on success.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut summary = TraceSummary::default();
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for (index, event) in events.iter().enumerate() {
        let fail = |what: &str| format!("event {index}: {what}");
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string name"))?;
        event
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string cat"))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string ph"))?;
        event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| fail("missing numeric ts"))?;
        let pid = event
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing numeric pid"))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing numeric tid"))?;
        let track = pid << 32 | tid;
        match ph {
            "B" => stacks.entry(track).or_default().push(name.to_string()),
            "E" => {
                let open = stacks.entry(track).or_default().pop();
                match open {
                    Some(opened) if opened == name => {
                        summary.span_names.insert(opened);
                    }
                    Some(opened) => {
                        return Err(fail(&format!(
                            "E '{name}' does not match open B '{opened}'"
                        )))
                    }
                    None => return Err(fail(&format!("E '{name}' without open B"))),
                }
            }
            "i" => {
                event
                    .get("s")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("instant without scope 's'"))?;
                *summary.instants.entry(name.to_string()).or_insert(0) += 1;
            }
            "X" => {
                summary.span_names.insert(name.to_string());
            }
            other => return Err(fail(&format!("unsupported ph '{other}'"))),
        }
        summary.events += 1;
    }
    for (track, stack) in stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span '{open}' left open on track {track}"));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_export_and_validate() {
        let tracer = Tracer::enabled();
        {
            let _run = tracer.phase_span("run");
            tracer.instant_at(
                "icc_call",
                1500,
                vec![
                    ("iid", TraceArg::Guid(0xDEAD_BEEF)),
                    ("method", TraceArg::U64(3)),
                    ("from", TraceArg::U64(0)),
                    ("to", TraceArg::U64(1)),
                ],
            );
            tracer.instant(
                "classifier_fork",
                vec![("scenario", TraceArg::Static("s1"))],
            );
        }
        let json = tracer.export_chrome_json();
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.events, 4);
        assert!(summary.has_span("run"));
        assert_eq!(summary.instant_count("icc_call"), 1);
        assert_eq!(summary.instant_count("classifier_fork"), 1);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("{00000000-0000-0000-0000-0000DEADBEEF}"));
    }

    #[test]
    fn disabled_tracer_emits_empty_document() {
        let tracer = Tracer::disabled();
        {
            let _span = tracer.phase_span("profile");
            tracer.instant_at("icc_call", 9, vec![]);
        }
        assert!(tracer.is_empty());
        let summary = validate_chrome_trace(&tracer.export_chrome_json()).expect("valid");
        assert_eq!(summary.events, 0);
    }

    #[test]
    fn exported_bytes_are_deterministic_without_host_time() {
        let render = || {
            let tracer = Tracer::enabled();
            tracer.set_host_time(false);
            {
                let _outer = tracer.phase_span("analyze");
                let _inner = tracer.phase_span("mincut");
                tracer.instant_at("fault_retry", 42, vec![("retry", TraceArg::U64(1))]);
            }
            tracer.export_chrome_json()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn host_time_opt_in_adds_duration_argument() {
        let tracer = Tracer::enabled();
        tracer.set_host_time(true);
        {
            let _span = tracer.phase_span("sweep");
        }
        assert!(tracer.export_chrome_json().contains("host_us"));
    }

    #[test]
    fn complete_spans_carry_duration_and_validate() {
        let tracer = Tracer::enabled();
        tracer.complete_at("session:42", 1_000, 350, vec![("flow", TraceArg::U64(7))]);
        tracer.complete_at("batch_wait", 1_000, 150, vec![]);
        let json = tracer.export_chrome_json();
        assert!(json.contains("\"ph\":\"X\",\"ts\":1000,\"dur\":350"));
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert!(summary.has_span("session:42"));
        assert!(summary.has_span("batch_wait"));
    }

    #[test]
    fn merge_from_keeps_runtime_complete_span_timestamps() {
        let parent = Tracer::enabled();
        let child = parent.child();
        child.complete_at("link_transit", 900, 55, vec![]);
        parent.merge_from(&child);
        assert!(parent
            .export_chrome_json()
            .contains("\"ts\":900,\"dur\":55"));
    }

    #[test]
    fn merge_from_preserves_child_event_order() {
        let parent = Tracer::enabled();
        let child = parent.child();
        child.instant_at("icc_call", 1, vec![]);
        child.instant_at("icc_call", 2, vec![]);
        parent.merge_from(&child);
        assert_eq!(parent.len(), 2);
        assert!(child.is_empty());
    }

    #[test]
    fn validator_rejects_mismatched_spans() {
        let bad = r#"{"traceEvents":[
            {"name":"a","cat":"p","ph":"B","ts":0,"pid":1,"tid":0},
            {"name":"b","cat":"p","ph":"E","ts":1,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        let open = r#"{"traceEvents":[
            {"name":"a","cat":"p","ph":"B","ts":0,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(open).is_err());
    }
}
