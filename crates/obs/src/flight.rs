//! Flight recorder: a bounded ring buffer of recent runtime events.
//!
//! The distributed runtime records every cut-crossing call and fault event
//! here; when a run dies (timeout, partition, machine down) the recorder
//! is dumped so the tail of activity leading up to the failure survives
//! for post-mortem, without paying for an unbounded log on healthy runs.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// One recorded happening.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Simulated-clock microseconds at which the event happened.
    pub at_us: u64,
    /// Event kind (e.g. `icc_call`, `fault_drop`, `fault_retry`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

struct FlightInner {
    entries: VecDeque<FlightEntry>,
    /// Events evicted because the ring was full.
    evicted: u64,
    /// Number of times the recorder has been dumped.
    dumps: u64,
}

/// A bounded ring buffer retaining the most recent [`FlightEntry`] values.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// Default retention: the last 256 events.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates a recorder retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(FlightInner {
                entries: VecDeque::new(),
                evicted: 0,
                dumps: 0,
            }),
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&self, at_us: u64, kind: &'static str, detail: String) {
        let mut inner = self.inner.lock();
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
            inner.evicted += 1;
        }
        inner.entries.push_back(FlightEntry {
            at_us,
            kind,
            detail,
        });
    }

    /// The retained events, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.inner.lock().entries.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// Number of times [`FlightRecorder::dump`] has fired.
    pub fn dump_count(&self) -> u64 {
        self.inner.lock().dumps
    }

    /// Renders the retained events as a human-readable block.
    pub fn render(&self, reason: &str) -> String {
        let inner = self.inner.lock();
        let mut out = format!(
            "=== flight recorder dump ({reason}): last {} event(s), {} evicted ===\n",
            inner.entries.len(),
            inner.evicted
        );
        for entry in &inner.entries {
            out.push_str(&format!(
                "  t={}us {} {}\n",
                entry.at_us, entry.kind, entry.detail
            ));
        }
        out.push_str("=== end flight recorder dump ===\n");
        out
    }

    /// Dumps the retained events to stderr (and returns the rendered
    /// block). Only the first dump prints; later calls — e.g. the same
    /// error propagating through several layers — render silently so a
    /// dying run does not spam its post-mortem.
    pub fn dump(&self, reason: &str) -> String {
        let first = {
            let mut inner = self.inner.lock();
            inner.dumps += 1;
            inner.dumps == 1
        };
        let rendered = self.render(reason);
        if first {
            eprint!("{rendered}");
        }
        rendered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let recorder = FlightRecorder::new(3);
        for i in 0..5u64 {
            recorder.record(i * 10, "icc_call", format!("call {i}"));
        }
        let entries = recorder.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(recorder.evicted(), 2);
        assert_eq!(entries[0].detail, "call 2");
        assert_eq!(entries[2].detail, "call 4");
    }

    #[test]
    fn dump_prints_once_but_always_renders() {
        let recorder = FlightRecorder::new(8);
        recorder.record(7, "fault_timeout", "m0->m1 attempt 1".to_string());
        let first = recorder.dump("Timeout");
        let second = recorder.dump("Timeout");
        assert_eq!(recorder.dump_count(), 2);
        assert!(first.contains("flight recorder dump (Timeout)"));
        assert!(first.contains("t=7us fault_timeout m0->m1 attempt 1"));
        assert_eq!(first, second);
    }

    #[test]
    fn capacity_minimum_is_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record(1, "a", String::new());
        recorder.record(2, "b", String::new());
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.entries()[0].kind, "b");
    }
}
