//! Simulated-time windowed series for the fleet serving harness.
//!
//! The serving DES (`coign::serve`) runs 100k+ sessions and used to report
//! one end-of-run summary — no view of how link utilization, batch
//! occupancy, queue depth or tail latency *evolve* over simulated time.
//! This module is the windowed recorder behind `coign serve --timeline`:
//! simulated time is cut into fixed-width windows of `window_us`
//! microseconds, and every observation lands in the window containing its
//! simulated instant.
//!
//! # Determinism
//!
//! The recorder is deliberately plain (no atomics, no clocks of its own):
//! each DES shard owns a private `TimeSeries` fed from its single-threaded
//! event loop, and the per-shard series are folded with
//! [`TimeSeries::merge_from`] **in shard order** after the workers join.
//! Every per-window field merges by commutative addition (counters, busy
//! µs, latency buckets) or by `max` (within-window peaks), so the merged
//! series — and therefore the exported JSON/CSV bytes — are identical
//! across `--jobs`, the same discipline the serve summary pins.
//!
//! Window semantics worth knowing when reading a timeline:
//!
//! * **Busy µs are charged to the window containing the transfer's
//!   departure** (not spread across windows), so a long batch transfer can
//!   make one window's `busy_us` exceed `window_us`.
//! * **Peaks** (`queue_depth_peak`, `pool_live_peak`) are per-shard maxima
//!   summed across shards: an upper bound on the fleet-wide value, exact
//!   when shards peak in the same window.
//! * **Latency quantiles** are per-window histogram estimates
//!   ([`quantile_from_buckets`]); a window with no completions reports 0.

use crate::metrics::quantile_from_buckets;
use std::collections::BTreeMap;

/// A directed machine-to-machine link, by raw machine index. The recorder
/// lives below the COM layer, so it speaks raw `u16`s rather than
/// `MachineId`s.
pub type RawLink = (u16, u16);

/// One fixed-width window of the series. All fields are totals *within*
/// the window, not cumulative.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Window {
    /// Sessions that arrived in this window.
    pub arrivals: u64,
    /// Sessions that completed in this window.
    pub completions: u64,
    /// Scripted calls issued (local + crossing).
    pub calls: u64,
    /// Calls that stayed co-located.
    pub local_calls: u64,
    /// Cut-crossing request messages sent.
    pub remote_messages: u64,
    /// Batches flushed (datagrams sent in unbatched mode).
    pub batches: u64,
    /// Messages across those batches (mean occupancy = members / batches).
    pub batch_members: u64,
    /// Peak event-queue depth observed in the window.
    pub queue_depth_peak: u64,
    /// Peak live (slot-holding) session count observed in the window.
    pub pool_live_peak: u64,
    /// Sessions that missed the pool and paid full instantiation.
    pub pool_misses: u64,
    /// Recovery epochs opened in this window (machines declared dead).
    /// Zero unless the run carried a fault plan.
    pub recoveries: u64,
    /// Calls that failed or were refused (served degraded). Zero unless
    /// the run carried a fault plan.
    pub degraded: u64,
    /// Calls failed over to a surviving replica. Zero unless the run
    /// carried a fault plan.
    pub replica_served: u64,
    /// Link transmit busy-µs, by link, charged at departure time.
    pub link_busy_us: BTreeMap<RawLink, u64>,
    /// Server compute busy-µs by component classification, charged at
    /// compute start.
    pub class_busy_us: BTreeMap<u32, u64>,
    /// Per-window session-latency bucket counts (`bounds.len() + 1`
    /// entries, last = overflow). Empty until the first completion.
    pub latency_counts: Vec<u64>,
}

impl Window {
    /// Mean messages per batch flushed in this window.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_members as f64 / self.batches as f64
        }
    }

    /// Total link busy-µs across every link.
    pub fn busy_us(&self) -> u64 {
        self.link_busy_us.values().sum()
    }

    /// Completions observed (sum of the latency buckets).
    pub fn latency_count(&self) -> u64 {
        self.latency_counts.iter().sum()
    }

    /// The link that dominated busy time, with its µs (ties break on the
    /// smaller link key, deterministically).
    pub fn dominant_link(&self) -> Option<(RawLink, u64)> {
        self.link_busy_us
            .iter()
            .max_by(|(ka, va), (kb, vb)| va.cmp(vb).then(kb.cmp(ka)))
            .map(|(k, v)| (*k, *v))
    }

    /// The classification that dominated server compute, with its µs.
    pub fn dominant_class(&self) -> Option<(u32, u64)> {
        self.class_busy_us
            .iter()
            .max_by(|(ka, va), (kb, vb)| va.cmp(vb).then(kb.cmp(ka)))
            .map(|(k, v)| (*k, *v))
    }
}

/// The SLO verdict computed from a recorded series: how many windows blew
/// the p99 target, and what dominated the worst one.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// The `--slo-p99-us` target.
    pub target_p99_us: u64,
    /// Windows carrying at least one completion (only they have a p99).
    pub measured_windows: usize,
    /// Measured windows whose p99 exceeded the target.
    pub violations: usize,
    /// The measured window with the highest p99 (earliest wins ties).
    pub worst: Option<WorstWindow>,
    /// Width of the series' windows, for rendering extents.
    window_us: u64,
}

/// Attribution for the worst window of an [`SloReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorstWindow {
    /// Window index.
    pub index: usize,
    /// Window start, simulated µs.
    pub start_us: u64,
    /// The window's p99 session latency, µs.
    pub p99_us: f64,
    /// Link that dominated transmit busy time, if any link was busy.
    pub link: Option<(RawLink, u64)>,
    /// Classification that dominated server compute, if any ran.
    pub class: Option<(u32, u64)>,
}

impl SloReport {
    /// Human block appended to the serve summary.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "slo: target p99<={}us: {}/{} window(s) in violation\n",
            self.target_p99_us, self.violations, self.measured_windows
        );
        if let Some(w) = &self.worst {
            out.push_str(&format!(
                "  worst window {} [{}..{}us): p99={:.1}us",
                w.index,
                w.start_us,
                w.start_us + self.window_us,
                w.p99_us
            ));
            if let Some(((from, to), us)) = w.link {
                out.push_str(&format!(", link {from}->{to} busy {us}us"));
            }
            if let Some((class, us)) = w.class {
                out.push_str(&format!(", class {class} compute {us}us"));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable form for the JSON serve record.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"target_p99_us\":{},\"measured_windows\":{},\"violations\":{}",
            self.target_p99_us, self.measured_windows, self.violations
        );
        if let Some(w) = &self.worst {
            out.push_str(&format!(
                ",\"worst\":{{\"window\":{},\"start_us\":{},\"p99_us\":{:.1}",
                w.index, w.start_us, w.p99_us
            ));
            if let Some(((from, to), us)) = w.link {
                out.push_str(&format!(",\"link\":\"{from}->{to}\",\"link_busy_us\":{us}"));
            }
            if let Some((class, us)) = w.class {
                out.push_str(&format!(",\"class\":{class},\"class_busy_us\":{us}"));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Width of the series' windows, µs.
    pub fn window_width_us(&self) -> u64 {
        self.window_us
    }
}

/// Staged counters for one window, bulk-folded via
/// [`TimeSeries::add_counts`]. Counters add; `*_peak` fields take `max`.
#[derive(Clone, Debug, Default)]
pub struct WindowCounts {
    /// Sessions that arrived.
    pub arrivals: u64,
    /// Sessions that missed the pool.
    pub pool_misses: u64,
    /// Peak live session count observed.
    pub pool_live_peak: u64,
    /// Scripted calls issued.
    pub calls: u64,
    /// Calls that stayed co-located.
    pub local_calls: u64,
    /// Cut-crossing request messages sent.
    pub remote_messages: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Messages across those batches.
    pub batch_members: u64,
    /// Peak event-queue depth observed.
    pub queue_depth_peak: u64,
    /// Recovery epochs opened (machines declared dead).
    pub recoveries: u64,
    /// Calls that failed or were refused (served degraded).
    pub degraded: u64,
    /// Calls failed over to a surviving replica.
    pub replica_served: u64,
}

/// Per-window scalar counters, stored columnar (one flat vec of these) so
/// a 100k-session run allocates a handful of arrays, not one heap object
/// per window. `u32` per window: counts within one window are bounded by
/// the event rate times the window width and stay far below 4 billion at
/// any realistic scale; additions saturate rather than wrap so a
/// pathological configuration degrades to a pinned counter, not garbage.
#[derive(Clone, Debug, Default)]
struct Scalars {
    arrivals: u32,
    completions: u32,
    calls: u32,
    local_calls: u32,
    remote_messages: u32,
    batches: u32,
    batch_members: u32,
    queue_depth_peak: u32,
    pool_live_peak: u32,
    pool_misses: u32,
    recoveries: u32,
    degraded: u32,
    replica_served: u32,
}

/// Saturate a staged `u64` count into a per-window `u32` cell.
#[inline]
fn sat32(v: u64) -> u32 {
    v.min(u32::MAX as u64) as u32
}

/// The windowed recorder: fixed-width simulated-time windows over one
/// shard (or, after [`merge_from`](TimeSeries::merge_from), the fleet).
///
/// Storage is columnar and sparse — per-window scalars in one vec,
/// completions as a sorted `(window, bucket)` log (one word per
/// completion, not one dense histogram per window), link/class busy-µs
/// as one row per *key* indexed by window. Recording never allocates per
/// window, the memory footprint scales with observations rather than
/// `windows x buckets`, and merging shards is a handful of flat sweeps.
/// The per-window [`Window`] values handed out by
/// [`windows`](Self::windows) are materialized views, built only at
/// render/inspection time.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    window_us: u64,
    latency_bounds: Vec<u64>,
    scalars: Vec<Scalars>,
    /// One entry per completion, encoded `window << 16 | bucket`, kept
    /// sorted. A dense `windows x buckets` array would be ~97% zeros at
    /// serving loads; the page faults of zeroing it dwarf the recorder's
    /// arithmetic.
    latency_log: Vec<u64>,
    /// Busy-µs per link: one row per link, indexed by window (rows may be
    /// shorter than `scalars` — missing tail entries are zero).
    link_busy: BTreeMap<RawLink, Vec<u64>>,
    /// Busy-µs per classification, same layout as `link_busy`.
    class_busy: BTreeMap<u32, Vec<u64>>,
    /// True when the recorded run carried an active fault layer. The
    /// fault columns (`recoveries`, `degraded`, `replica_served`) render
    /// only when set, so a fault-free run's exported bytes stay identical
    /// to a recorder without the columns at all.
    faulted: bool,
    // Caches of the window the last observation landed in, one per time
    // stream. Event-time hooks run at the simulation clock while busy-µs
    // hooks charge at departure/compute instants slightly in the future;
    // each stream is near-monotone on its own, but they interleave, so a
    // single shared cache would ping-pong between windows and take the
    // recompute path on nearly every call. One cursor per stream keeps
    // every hook at two compares instead of a 64-bit division.
    cursors: [WindowCursor; 3],
}

/// One stream's cached window: `start <= at < end` maps to `idx`.
/// `end == 0` marks an unprimed cursor.
#[derive(Clone, Copy, Debug, Default)]
struct WindowCursor {
    idx: usize,
    start: u64,
    end: u64,
}

/// Cursor stream for hooks charging at the simulation clock.
const STREAM_EVENT: usize = 0;
/// Cursor stream for link busy-µs charged at departure instants.
const STREAM_LINK: usize = 1;
/// Cursor stream for class busy-µs charged at compute instants.
const STREAM_CLASS: usize = 2;

impl TimeSeries {
    /// Creates an empty series with the given window width (clamped to at
    /// least 1 µs) and latency-histogram bucket bounds.
    pub fn new(window_us: u64, latency_bounds: Vec<u64>) -> TimeSeries {
        TimeSeries {
            window_us: window_us.max(1),
            latency_bounds,
            scalars: Vec::new(),
            latency_log: Vec::new(),
            link_busy: BTreeMap::new(),
            class_busy: BTreeMap::new(),
            faulted: false,
            cursors: [WindowCursor::default(); 3],
        }
    }

    /// The window width in simulated µs.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Marks the series as carrying fault-layer activity: the fault
    /// columns become part of every rendered window from here on.
    pub fn mark_faulted(&mut self) {
        self.faulted = true;
    }

    /// True when the series carries fault-layer columns.
    pub fn faulted(&self) -> bool {
        self.faulted
    }

    /// Number of recorded windows (windows with no activity are counted
    /// up to the latest instant observed).
    pub fn len(&self) -> usize {
        self.scalars.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.scalars.is_empty()
    }

    /// The recorded windows, earliest first, materialized as per-window
    /// views. Intended for render/inspection paths, not hot loops.
    pub fn windows(&self) -> Vec<Window> {
        (0..self.scalars.len()).map(|i| self.window(i)).collect()
    }

    /// Materializes one window's view (zero busy-µs entries are elided).
    pub fn window(&self, idx: usize) -> Window {
        let s = &self.scalars[idx];
        Window {
            arrivals: u64::from(s.arrivals),
            completions: u64::from(s.completions),
            calls: u64::from(s.calls),
            local_calls: u64::from(s.local_calls),
            remote_messages: u64::from(s.remote_messages),
            batches: u64::from(s.batches),
            batch_members: u64::from(s.batch_members),
            queue_depth_peak: u64::from(s.queue_depth_peak),
            pool_live_peak: u64::from(s.pool_live_peak),
            pool_misses: u64::from(s.pool_misses),
            recoveries: u64::from(s.recoveries),
            degraded: u64::from(s.degraded),
            replica_served: u64::from(s.replica_served),
            link_busy_us: self
                .link_busy
                .iter()
                .filter_map(|(k, row)| {
                    row.get(idx)
                        .copied()
                        .filter(|us| *us > 0)
                        .map(|us| (*k, us))
                })
                .collect(),
            class_busy_us: self
                .class_busy
                .iter()
                .filter_map(|(k, row)| {
                    row.get(idx)
                        .copied()
                        .filter(|us| *us > 0)
                        .map(|us| (*k, us))
                })
                .collect(),
            latency_counts: self.latency_counts_for(idx),
        }
    }

    /// The latency bucket bounds shared by every window.
    pub fn latency_bounds(&self) -> &[u64] {
        &self.latency_bounds
    }

    fn bucket_count(&self) -> usize {
        self.latency_bounds.len() + 1
    }

    /// The sorted log's entry range for one window.
    fn latency_range(&self, idx: usize) -> (usize, usize) {
        let w = idx as u64;
        let lo = self.latency_log.partition_point(|e| e >> 16 < w);
        let hi = self.latency_log.partition_point(|e| e >> 16 <= w);
        (lo, hi)
    }

    /// Materializes one window's latency bucket counts (empty when the
    /// window saw no completion, matching the lazy dense representation).
    fn latency_counts_for(&self, idx: usize) -> Vec<u64> {
        let (lo, hi) = self.latency_range(idx);
        if lo == hi {
            return Vec::new();
        }
        let mut counts = vec![0u64; self.bucket_count()];
        for e in &self.latency_log[lo..hi] {
            counts[(e & 0xffff) as usize] += 1;
        }
        counts
    }

    #[inline]
    fn index_for(&mut self, stream: usize, at_us: u64) -> usize {
        let c = self.cursors[stream];
        if at_us >= c.start && at_us < c.end {
            return c.idx;
        }
        self.index_for_slow(stream, at_us)
    }

    #[cold]
    fn index_for_slow(&mut self, stream: usize, at_us: u64) -> usize {
        let idx = (at_us / self.window_us) as usize;
        if self.scalars.len() <= idx {
            self.scalars.resize(idx + 1, Scalars::default());
        }
        let start = idx as u64 * self.window_us;
        self.cursors[stream] = WindowCursor {
            idx,
            start,
            end: start + self.window_us,
        };
        idx
    }

    /// A session arrived at `at_us`; `pool_miss` when it paid full
    /// instantiation, and `pool_live` is the live session count right
    /// after the arrival (folded into the window peak).
    #[inline]
    pub fn on_arrival(&mut self, at_us: u64, pool_miss: bool, pool_live: u64) {
        let i = self.index_for(STREAM_EVENT, at_us);
        let s = &mut self.scalars[i];
        s.arrivals = s.arrivals.saturating_add(1);
        s.pool_misses = s.pool_misses.saturating_add(u32::from(pool_miss));
        s.pool_live_peak = s.pool_live_peak.max(sat32(pool_live));
    }

    /// A session completed at `at_us` with the given end-to-end latency.
    #[inline]
    pub fn on_completion(&mut self, at_us: u64, latency_us: u64) {
        let bucket = self
            .latency_bounds
            .partition_point(|bound| latency_us > *bound);
        debug_assert!(bucket < 1 << 16, "latency bucket must fit the log encoding");
        let i = self.index_for(STREAM_EVENT, at_us);
        self.scalars[i].completions = self.scalars[i].completions.saturating_add(1);
        let entry = (i as u64) << 16 | bucket as u64;
        // Serving time is near-monotone, so the push almost always lands
        // in order; out-of-order observations (allowed by the API) take a
        // binary-search insert instead.
        match self.latency_log.last() {
            Some(&last) if last > entry => {
                let at = self.latency_log.partition_point(|e| *e <= entry);
                self.latency_log.insert(at, entry);
            }
            _ => self.latency_log.push(entry),
        }
    }

    /// A scripted call was issued at `at_us` (`local` = co-located).
    #[inline]
    pub fn on_call(&mut self, at_us: u64, local: bool) {
        let i = self.index_for(STREAM_EVENT, at_us);
        let s = &mut self.scalars[i];
        s.calls = s.calls.saturating_add(1);
        if local {
            s.local_calls = s.local_calls.saturating_add(1);
        } else {
            s.remote_messages = s.remote_messages.saturating_add(1);
        }
    }

    /// A run of `calls` scripted calls (`local_calls` of them co-located)
    /// charged in one shot at `at_us` — the hot-path form of [`on_call`]
    /// for the serve loop's inline local-call runs, which would otherwise
    /// pay one recorder hook per call. A run spans well under one window
    /// at the default widths, so charging it at its start instant keeps
    /// per-window counts faithful.
    #[inline]
    pub fn on_calls(&mut self, at_us: u64, calls: u64, local_calls: u64) {
        let i = self.index_for(STREAM_EVENT, at_us);
        let s = &mut self.scalars[i];
        s.calls = s.calls.saturating_add(sat32(calls));
        s.local_calls = s.local_calls.saturating_add(sat32(local_calls));
        s.remote_messages = s.remote_messages.saturating_add(sat32(calls - local_calls));
    }

    /// A batch of `members` messages flushed at `at_us` (unbatched
    /// datagrams count as batches of 1).
    #[inline]
    pub fn on_batch_flush(&mut self, at_us: u64, members: u64) {
        let i = self.index_for(STREAM_EVENT, at_us);
        let s = &mut self.scalars[i];
        s.batches = s.batches.saturating_add(1);
        s.batch_members = s.batch_members.saturating_add(sat32(members));
    }

    /// A link transfer departing at `at_us` occupied `link` for `busy_us`.
    #[inline]
    pub fn on_link_busy(&mut self, at_us: u64, link: RawLink, busy_us: u64) {
        let i = self.index_for(STREAM_LINK, at_us);
        let row = self.link_busy.entry(link).or_default();
        if row.len() <= i {
            row.resize(i + 1, 0);
        }
        row[i] += busy_us;
    }

    /// Server compute starting at `at_us` charged `busy_us` to `class`.
    #[inline]
    pub fn on_class_busy(&mut self, at_us: u64, class: u32, busy_us: u64) {
        let i = self.index_for(STREAM_CLASS, at_us);
        let row = self.class_busy.entry(class).or_default();
        if row.len() <= i {
            row.resize(i + 1, 0);
        }
        row[i] += busy_us;
    }

    /// Samples the event-queue depth at `at_us` (folded into the window
    /// peak).
    #[inline]
    pub fn sample_queue_depth(&mut self, at_us: u64, depth: u64) {
        let i = self.index_for(STREAM_EVENT, at_us);
        let s = &mut self.scalars[i];
        s.queue_depth_peak = s.queue_depth_peak.max(sat32(depth));
    }

    /// Folds a whole window's worth of staged counters in one call. The
    /// serve loop's event time is monotone, so it stages these counts in
    /// shard-local registers and charges each window exactly once at a
    /// crossing instead of paying one recorder hook per observation.
    pub fn add_counts(&mut self, at_us: u64, c: &WindowCounts) {
        let i = self.index_for(STREAM_EVENT, at_us);
        let s = &mut self.scalars[i];
        s.arrivals = s.arrivals.saturating_add(sat32(c.arrivals));
        s.pool_misses = s.pool_misses.saturating_add(sat32(c.pool_misses));
        s.pool_live_peak = s.pool_live_peak.max(sat32(c.pool_live_peak));
        s.calls = s.calls.saturating_add(sat32(c.calls));
        s.local_calls = s.local_calls.saturating_add(sat32(c.local_calls));
        s.remote_messages = s.remote_messages.saturating_add(sat32(c.remote_messages));
        s.batches = s.batches.saturating_add(sat32(c.batches));
        s.batch_members = s.batch_members.saturating_add(sat32(c.batch_members));
        s.queue_depth_peak = s.queue_depth_peak.max(sat32(c.queue_depth_peak));
        s.recoveries = s.recoveries.saturating_add(sat32(c.recoveries));
        s.degraded = s.degraded.saturating_add(sat32(c.degraded));
        s.replica_served = s.replica_served.saturating_add(sat32(c.replica_served));
    }

    /// Folds another shard's series into this one: counters and busy-µs
    /// add, peaks take `max` per window, latency buckets add. Addition and
    /// `max` are commutative and associative per window, but callers merge
    /// in shard order anyway so the discipline matches the summary's.
    /// Columnar storage makes this a handful of flat element-wise sweeps.
    ///
    /// Both series must share the window width and latency bounds.
    pub fn merge_from(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.window_us, other.window_us,
            "cannot merge series with different window widths"
        );
        assert_eq!(
            self.latency_bounds, other.latency_bounds,
            "cannot merge series with different latency bounds"
        );
        if self.scalars.len() < other.scalars.len() {
            self.scalars.resize(other.scalars.len(), Scalars::default());
        }
        for (mine, theirs) in self.scalars.iter_mut().zip(&other.scalars) {
            mine.arrivals = mine.arrivals.saturating_add(theirs.arrivals);
            mine.completions = mine.completions.saturating_add(theirs.completions);
            mine.calls = mine.calls.saturating_add(theirs.calls);
            mine.local_calls = mine.local_calls.saturating_add(theirs.local_calls);
            mine.remote_messages = mine.remote_messages.saturating_add(theirs.remote_messages);
            mine.batches = mine.batches.saturating_add(theirs.batches);
            mine.batch_members = mine.batch_members.saturating_add(theirs.batch_members);
            // Peaks are per-shard maxima at different instants; summing
            // them reports the fleet-wide upper bound.
            mine.queue_depth_peak = mine
                .queue_depth_peak
                .saturating_add(theirs.queue_depth_peak);
            mine.pool_live_peak = mine.pool_live_peak.saturating_add(theirs.pool_live_peak);
            mine.pool_misses = mine.pool_misses.saturating_add(theirs.pool_misses);
            mine.recoveries = mine.recoveries.saturating_add(theirs.recoveries);
            mine.degraded = mine.degraded.saturating_add(theirs.degraded);
            mine.replica_served = mine.replica_served.saturating_add(theirs.replica_served);
        }
        self.faulted |= other.faulted;
        // Two sorted logs merge into one sorted log; entries are counted,
        // not positional, so the merge commutes.
        let mut merged = Vec::with_capacity(self.latency_log.len() + other.latency_log.len());
        let (mut a, mut b) = (self.latency_log.iter().peekable(), other.latency_log.iter());
        let mut next_b = b.next();
        while let Some(&&ea) = a.peek() {
            match next_b {
                Some(&eb) if eb < ea => {
                    merged.push(eb);
                    next_b = b.next();
                }
                _ => {
                    merged.push(ea);
                    a.next();
                }
            }
        }
        while let Some(&eb) = next_b {
            merged.push(eb);
            next_b = b.next();
        }
        self.latency_log = merged;
        for (link, row) in &other.link_busy {
            let mine = self.link_busy.entry(*link).or_default();
            if mine.len() < row.len() {
                mine.resize(row.len(), 0);
            }
            for (m, t) in mine.iter_mut().zip(row) {
                *m += t;
            }
        }
        for (class, row) in &other.class_busy {
            let mine = self.class_busy.entry(*class).or_default();
            if mine.len() < row.len() {
                mine.resize(row.len(), 0);
            }
            for (m, t) in mine.iter_mut().zip(row) {
                *m += t;
            }
        }
    }

    /// A window's latency quantile estimate (0 when it saw no completion).
    pub fn window_quantile_us(&self, index: usize, q: f64) -> f64 {
        if index >= self.scalars.len() {
            return 0.0;
        }
        let counts = self.latency_counts_for(index);
        if counts.is_empty() {
            return 0.0;
        }
        quantile_from_buckets(&self.latency_bounds, &counts, q).unwrap_or(0.0)
    }

    /// Evaluates a p99 SLO target over the series.
    pub fn slo(&self, target_p99_us: u64) -> SloReport {
        let mut measured = 0usize;
        let mut violations = 0usize;
        let mut worst: Option<(usize, f64)> = None;
        for idx in 0..self.scalars.len() {
            let (lo, hi) = self.latency_range(idx);
            if lo == hi {
                continue;
            }
            measured += 1;
            let p99 = self.window_quantile_us(idx, 0.99);
            if p99 > target_p99_us as f64 {
                violations += 1;
            }
            // Strict `>` keeps the earliest window on ties.
            if worst.is_none_or(|(_, best)| p99 > best) {
                worst = Some((idx, p99));
            }
        }
        SloReport {
            target_p99_us,
            measured_windows: measured,
            violations,
            worst: worst.map(|(idx, p99)| {
                let w = self.window(idx);
                WorstWindow {
                    index: idx,
                    start_us: idx as u64 * self.window_us,
                    p99_us: p99,
                    link: w.dominant_link(),
                    class: w.dominant_class(),
                }
            }),
            window_us: self.window_us,
        }
    }

    /// Renders the series as one deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"window_us\":{},\"windows\":[", self.window_us);
        for idx in 0..self.scalars.len() {
            let w = self.window(idx);
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"w\":{idx},\"start_us\":{},\"arrivals\":{},\"completions\":{},\
                 \"calls\":{},\"local_calls\":{},\"remote_messages\":{},\
                 \"batches\":{},\"mean_batch\":{:.2},\"queue_depth_peak\":{},\
                 \"pool_live_peak\":{},\"pool_misses\":{},\"busy_us\":{}",
                idx as u64 * self.window_us,
                w.arrivals,
                w.completions,
                w.calls,
                w.local_calls,
                w.remote_messages,
                w.batches,
                w.mean_batch(),
                w.queue_depth_peak,
                w.pool_live_peak,
                w.pool_misses,
                w.busy_us(),
            ));
            if self.faulted {
                out.push_str(&format!(
                    ",\"recoveries\":{},\"degraded\":{},\"replica_served\":{}",
                    w.recoveries, w.degraded, w.replica_served,
                ));
            }
            out.push_str(",\"links\":[");
            for (i, ((from, to), us)) in w.link_busy_us.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"link\":\"{from}->{to}\",\"busy_us\":{us}}}"));
            }
            out.push_str("],\"classes\":[");
            for (i, (class, us)) in w.class_busy_us.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"class\":{class},\"busy_us\":{us}}}"));
            }
            out.push_str(&format!(
                "],\"latency_us\":{{\"count\":{},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}}}}",
                w.latency_count(),
                self.window_quantile_us(idx, 0.50),
                self.window_quantile_us(idx, 0.95),
                self.window_quantile_us(idx, 0.99),
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders the series as CSV: one row per window, links collapsed to
    /// the dominant one.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "window,start_us,arrivals,completions,calls,local_calls,remote_messages,\
             batches,mean_batch,queue_depth_peak,pool_live_peak,pool_misses,busy_us,\
             top_link,top_link_busy_us,lat_count,p50_us,p95_us,p99_us",
        );
        if self.faulted {
            out.push_str(",recoveries,degraded,replica_served");
        }
        out.push('\n');
        for idx in 0..self.scalars.len() {
            let w = self.window(idx);
            let (top_link, top_us) = w
                .dominant_link()
                .map_or((String::new(), 0), |((f, t), us)| (format!("{f}->{t}"), us));
            out.push_str(&format!(
                "{idx},{},{},{},{},{},{},{},{:.2},{},{},{},{},{top_link},{top_us},{},{:.1},{:.1},{:.1}",
                idx as u64 * self.window_us,
                w.arrivals,
                w.completions,
                w.calls,
                w.local_calls,
                w.remote_messages,
                w.batches,
                w.mean_batch(),
                w.queue_depth_peak,
                w.pool_live_peak,
                w.pool_misses,
                w.busy_us(),
                w.latency_count(),
                self.window_quantile_us(idx, 0.50),
                self.window_quantile_us(idx, 0.95),
                self.window_quantile_us(idx, 0.99),
            ));
            if self.faulted {
                out.push_str(&format!(
                    ",{},{},{}",
                    w.recoveries, w.degraded, w.replica_served
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Renders a textual sparkline dashboard (`--timeline -`): one row per
    /// signal, windows left to right, each glyph scaled to the row's peak.
    /// Series longer than 64 windows are downsampled by per-group maxima.
    pub fn dashboard(&self) -> String {
        let span_ms = self.scalars.len() as u64 * self.window_us;
        let mut out = format!(
            "timeline: {} window(s) x {}us ({:.1} ms simulated)\n",
            self.scalars.len(),
            self.window_us,
            span_ms as f64 / 1000.0,
        );
        let views: Vec<Window> = self.windows();
        type Row<'a> = (&'a str, Box<dyn Fn(usize, &Window) -> u64 + 'a>);
        let mut rows: Vec<Row<'_>> = vec![
            ("arrivals", Box::new(|_, w| w.arrivals)),
            ("completions", Box::new(|_, w| w.completions)),
            ("remote_msgs", Box::new(|_, w| w.remote_messages)),
            ("queue_peak", Box::new(|_, w| w.queue_depth_peak)),
            ("busy_us", Box::new(|_, w| w.busy_us())),
            (
                "p99_us",
                Box::new(|idx, _| self.window_quantile_us(idx, 0.99) as u64),
            ),
        ];
        if self.faulted {
            rows.push(("degraded", Box::new(|_, w| w.degraded)));
            rows.push(("replica_srv", Box::new(|_, w| w.replica_served)));
        }
        for (name, value) in rows {
            let values: Vec<u64> = views
                .iter()
                .enumerate()
                .map(|(idx, w)| value(idx, w))
                .collect();
            let peak = values.iter().copied().max().unwrap_or(0);
            out.push_str(&format!(
                "  {name:<12} {} peak {peak}\n",
                spark(&values, 64)
            ));
        }
        out
    }
}

/// Renders values as a sparkline of at most `max_glyphs` glyphs,
/// downsampling by group maxima; all-zero rows render as low bars.
fn spark(values: &[u64], max_glyphs: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let group = values.len().div_ceil(max_glyphs).max(1);
    let grouped: Vec<u64> = values
        .chunks(group)
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .collect();
    let peak = grouped.iter().copied().max().unwrap_or(0).max(1);
    grouped
        .iter()
        .map(|&v| GLYPHS[((v * (GLYPHS.len() as u64 - 1)) / peak) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(window_us: u64) -> TimeSeries {
        TimeSeries::new(window_us, vec![100, 200, 400, 800])
    }

    #[test]
    fn observations_land_in_their_windows() {
        let mut ts = series(100);
        ts.on_arrival(0, true, 1);
        ts.on_arrival(99, false, 2);
        ts.on_arrival(100, false, 3);
        ts.on_call(250, true);
        ts.on_call(250, false);
        ts.on_completion(310, 310);
        assert_eq!(ts.windows().len(), 4);
        assert_eq!(ts.windows()[0].arrivals, 2);
        assert_eq!(ts.windows()[0].pool_misses, 1);
        assert_eq!(ts.windows()[0].pool_live_peak, 2);
        assert_eq!(ts.windows()[1].arrivals, 1);
        assert_eq!(ts.windows()[2].calls, 2);
        assert_eq!(ts.windows()[2].local_calls, 1);
        assert_eq!(ts.windows()[2].remote_messages, 1);
        assert_eq!(ts.windows()[3].completions, 1);
        assert_eq!(ts.windows()[3].latency_count(), 1);
        // 310 lands in the (200, 400] bucket: p99 interpolates inside it.
        let p99 = ts.window_quantile_us(3, 0.99);
        assert!(p99 > 200.0 && p99 <= 400.0, "p99={p99}");
    }

    #[test]
    fn merge_is_positionwise_and_order_insensitive() {
        let build = |offsets: &[u64]| {
            let mut ts = series(50);
            for &at in offsets {
                ts.on_arrival(at, false, 1);
                ts.on_link_busy(at, (0, 1), 10);
                ts.sample_queue_depth(at, at + 1);
                ts.on_completion(at, 150);
            }
            ts
        };
        let a = build(&[0, 60, 170]);
        let b = build(&[60, 200]);
        let mut ab = series(50);
        ab.merge_from(&a);
        ab.merge_from(&b);
        let mut ba = series(50);
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.windows(), ba.windows());
        assert_eq!(ab.windows().len(), 5, "merge extends to the longer series");
        assert_eq!(ab.windows()[1].arrivals, 2);
        assert_eq!(ab.windows()[1].link_busy_us[&(0, 1)], 20);
        // Peaks sum across shards (fleet-wide upper bound).
        assert_eq!(ab.windows()[1].queue_depth_peak, 61 + 61);
        assert_eq!(ab.windows()[1].latency_count(), 2);
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn merge_rejects_mismatched_windows() {
        let mut a = series(50);
        a.merge_from(&series(100));
    }

    #[test]
    fn slo_counts_violations_and_attributes_worst_window() {
        let mut ts = series(100);
        // Window 0: fast completions. Window 2: slow ones plus busy link
        // and class compute to attribute.
        for _ in 0..10 {
            ts.on_completion(10, 50);
        }
        ts.on_completion(250, 700);
        ts.on_completion(260, 700);
        ts.on_link_busy(250, (0, 2), 90);
        ts.on_link_busy(250, (0, 1), 30);
        ts.on_class_busy(250, 7, 40);
        let slo = ts.slo(400);
        assert_eq!(slo.measured_windows, 2);
        assert_eq!(slo.violations, 1);
        let worst = slo.worst.clone().expect("worst window");
        assert_eq!(worst.index, 2);
        assert_eq!(worst.start_us, 200);
        assert_eq!(worst.link, Some(((0, 2), 90)));
        assert_eq!(worst.class, Some((7, 40)));
        assert!(slo.render_human().contains("1/2 window(s) in violation"));
        assert!(slo.render_json().contains("\"link\":\"0->2\""));
        // A generous target has zero violations but still attributes.
        assert_eq!(ts.slo(10_000).violations, 0);
    }

    #[test]
    fn renders_are_deterministic_and_cover_every_window() {
        let build = || {
            let mut ts = series(100);
            ts.on_arrival(5, true, 1);
            ts.on_batch_flush(120, 3);
            ts.on_link_busy(120, (0, 1), 55);
            ts.on_completion(390, 210);
            ts
        };
        let a = build();
        assert_eq!(a.to_json(), build().to_json());
        assert_eq!(a.to_csv(), build().to_csv());
        assert_eq!(a.dashboard(), build().dashboard());
        assert_eq!(a.to_csv().lines().count(), 1 + a.windows().len());
        assert!(a.to_json().contains("\"mean_batch\":3.00"));
        assert!(a.dashboard().contains("p99_us"));
        // Untouched window 2 still renders (fixed-width windows).
        assert!(a.to_json().contains("\"w\":2"));
    }

    #[test]
    fn fault_columns_render_only_when_marked() {
        let mut plain = series(100);
        plain.on_arrival(5, false, 1);
        plain.on_completion(150, 120);
        let baseline_json = plain.to_json();
        let baseline_csv = plain.to_csv();
        assert!(!baseline_json.contains("recoveries"));
        assert!(!baseline_csv.contains("degraded"));
        assert!(!plain.dashboard().contains("replica_srv"));

        let mut faulted = plain.clone();
        faulted.mark_faulted();
        assert!(faulted.to_json().contains("\"recoveries\":0"));
        let header = faulted.to_csv().lines().next().unwrap().to_string();
        assert!(header.ends_with("recoveries,degraded,replica_served"));
        assert!(faulted.dashboard().contains("degraded"));
        let counts = WindowCounts {
            recoveries: 1,
            degraded: 2,
            replica_served: 3,
            ..WindowCounts::default()
        };
        faulted.add_counts(10, &counts);
        assert!(faulted
            .to_json()
            .contains("\"recoveries\":1,\"degraded\":2,\"replica_served\":3"));

        // The flag survives merging in either position; merging only
        // unfaulted series leaves the baseline bytes untouched.
        let mut merged = series(100);
        merged.merge_from(&plain);
        assert!(!merged.faulted());
        assert_eq!(merged.to_json(), baseline_json);
        merged.merge_from(&faulted);
        assert!(merged.faulted());
        assert_eq!(
            merged.window(0).degraded,
            2,
            "fault counters fold through merges"
        );
    }

    #[test]
    fn sparkline_downsamples_long_series() {
        let values: Vec<u64> = (0..1000).collect();
        let line = spark(&values, 64);
        assert!(line.chars().count() <= 64);
        assert!(line.ends_with('█'), "final group holds the peak");
        assert_eq!(spark(&[0, 0, 0], 64), "▁▁▁", "all-zero rows stay low");
    }
}
