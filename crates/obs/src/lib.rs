//! Observability layer for the Coign reproduction.
//!
//! The paper's profiling instrumentation (§3.3) is itself an observability
//! system: loggers that watch every instantiation and interface call. This
//! crate generalises that idea for the reproduction's own benefit. It
//! provides three cooperating facilities:
//!
//! 1. [`Tracer`] — a span-based structured tracer with a thread-safe sink.
//!    Pipeline phases (`profile`, `analyze`, `mincut`, `rewrite`, `run`,
//!    `sweep`) become begin/end spans; runtime happenings (cut-crossing
//!    ICC calls, classifier forks/absorbs, fault injections, retries,
//!    fallbacks, marshal-cache misses) become instant events. Traces export
//!    as Chrome trace-event JSON loadable in `chrome://tracing` or
//!    Perfetto.
//! 2. [`Registry`] — a metrics registry of counters, gauges and
//!    exponential-bucket histograms (mirroring the paper's ICC size
//!    buckets) with a Prometheus-style text exposition and a JSON
//!    snapshot.
//! 3. [`FlightRecorder`] — a bounded ring buffer retaining the last N
//!    cut-crossing calls and fault events, dumped automatically when a
//!    distributed run dies so the tail of activity survives the crash.
//!
//! # Clock domains
//!
//! Determinism is the repo's testing currency, so the tracer never lets
//! wall-clock time leak into exported bytes by default. Two timestamp
//! domains exist:
//!
//! * **Pipeline track (tid 0)** — phase spans and pipeline instants are
//!   timestamped by a logical sequence counter (one tick per event), not
//!   host time. Host-monotonic durations are still measured and can be
//!   opted into the export via [`Tracer::set_host_time`] (or the
//!   `COIGN_TRACE_HOST_TIME=1` environment variable) when a human wants
//!   real wall-clock spans at the cost of run-to-run byte identity.
//! * **Runtime track (tid 1)** — instant events carry the simulated
//!   clock's microseconds (`crates/com/src/clock.rs`), which are fully
//!   deterministic under a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod timeseries;
pub mod trace;

pub use flight::{FlightEntry, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use timeseries::{SloReport, TimeSeries};
pub use trace::{validate_chrome_trace, PhaseSpan, TraceArg, TraceSummary, Tracer};

use std::sync::{Arc, OnceLock};

/// The bundle of observability facilities threaded through the pipeline.
///
/// Cloning is cheap (three `Arc` bumps); every layer that wants to emit
/// events holds a clone. A disabled bundle keeps the registry and flight
/// recorder live (they are nearly free) but silences the tracer.
#[derive(Clone)]
pub struct Obs {
    /// The span/event tracer.
    pub tracer: Arc<Tracer>,
    /// The metrics registry.
    pub registry: Arc<Registry>,
    /// The flight recorder ring buffer.
    pub recorder: Arc<FlightRecorder>,
}

impl Obs {
    /// Creates a bundle with an enabled tracer.
    pub fn enabled() -> Obs {
        Obs {
            tracer: Arc::new(Tracer::enabled()),
            registry: Arc::new(Registry::new()),
            recorder: Arc::new(FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY)),
        }
    }

    /// Creates a bundle whose tracer records nothing.
    pub fn disabled() -> Obs {
        Obs {
            tracer: Arc::new(Tracer::disabled()),
            registry: Arc::new(Registry::new()),
            recorder: Arc::new(FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY)),
        }
    }

    /// True when the tracer is recording.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// Installs the process-global observability bundle.
///
/// The first installation wins; returns `false` if a bundle was already
/// installed. The CLI installs one per process when `--trace` or
/// `--metrics` is passed; library code should prefer explicitly threaded
/// [`Obs`] handles so tests stay isolated.
pub fn install_global(obs: Obs) -> bool {
    GLOBAL.set(obs).is_ok()
}

/// The process-global bundle, if one was installed.
pub fn global() -> Option<&'static Obs> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_records_no_events() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.tracer.instant_at("icc_call", 10, vec![]);
        {
            let _span = obs.tracer.phase_span("profile");
        }
        assert!(obs.tracer.is_empty());
        // Registry and recorder stay live even when tracing is off.
        obs.registry.counter("coign_calls_total").add(3);
        obs.recorder.record(5, "fault_drop", "m0->m1".to_string());
        assert_eq!(obs.registry.counter_value("coign_calls_total"), Some(3));
        assert_eq!(obs.recorder.len(), 1);
    }

    #[test]
    fn enabled_bundle_is_enabled() {
        let obs = Obs::enabled();
        assert!(obs.is_enabled());
        obs.tracer.instant_at("icc_call", 10, vec![]);
        assert_eq!(obs.tracer.len(), 1);
    }
}
