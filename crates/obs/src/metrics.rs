//! Metrics registry: counters, gauges, and exponential-bucket histograms.
//!
//! The registry absorbs the workspace's previously ad-hoc counters
//! (`FaultStats`, marshal-cache hits/misses, drift-monitor fires,
//! warm/cold sweep solve counts) behind one namespace. Handles returned by
//! [`Registry::counter`]/[`Registry::gauge`]/[`Registry::histogram`] are
//! cheap `Arc`-backed clones whose updates are lock-free atomics, so hot
//! paths pay one atomic add per observation.
//!
//! Two expositions are provided: a Prometheus-style text format
//! ([`Registry::render_prometheus`]) and a JSON snapshot
//! ([`Registry::snapshot_json`]). Both render metrics in sorted name
//! order, so output is deterministic.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle holding one `f64` value.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistCore {
    /// Upper bounds of the finite buckets, strictly increasing. One extra
    /// overflow (`+Inf`) bucket follows implicitly.
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts; `bounds.len() + 1`
    /// entries, the last being the overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.bounds())
            .field("counts", &self.bucket_counts())
            .field("sum", &self.sum())
            .field("count", &self.count())
            .finish()
    }
}

impl Histogram {
    /// Creates a free-standing histogram with the given finite bucket
    /// bounds (strictly increasing). Registry-owned histograms come from
    /// [`Registry::histogram`]; this constructor serves callers that
    /// aggregate off-registry — e.g. per-shard latency histograms merged
    /// with [`Histogram::merge_from`] before publication.
    pub fn with_bounds(bounds: Vec<u64>) -> Histogram {
        Histogram::new(bounds)
    }

    fn new(bounds: Vec<u64>) -> Histogram {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistCore {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let core = &self.0;
        let idx = core
            .bounds
            .partition_point(|bound| value > *bound)
            .min(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Per-bucket (non-cumulative) counts; the final entry is the overflow
    /// bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear interpolation
    /// within the bucket containing the target rank.
    ///
    /// Bucket `k` covers `(bounds[k-1], bounds[k]]` (bucket 0 covers
    /// `[0, bounds[0]]`), so the estimate interpolates between those edges
    /// under a uniform-within-bucket assumption — the usual
    /// Prometheus-style `histogram_quantile` estimator. With exponential
    /// bounds the worst-case relative error is the bucket width; callers
    /// who need tighter tails should register finer bounds.
    ///
    /// Observations in the overflow bucket clamp to the largest finite
    /// bound. An empty histogram reports 0; `q` outside `[0, 1]` (including
    /// NaN) is clamped rather than extrapolated. Use
    /// [`try_quantile`](Histogram::try_quantile) to distinguish "empty"
    /// from "p-whatever is 0".
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// [`quantile`](Histogram::quantile) that reports `None` on an empty
    /// histogram instead of a fabricated 0.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(self.bounds(), &self.bucket_counts(), q)
    }

    /// Folds another histogram's observations into this one by summing
    /// per-bucket counts. Bucket addition is commutative and associative,
    /// so merging per-shard histograms in any order yields identical
    /// counts — the property the serving harness's determinism rests on.
    ///
    /// Both histograms must have identical bounds.
    pub fn merge_from(&self, other: &Histogram) {
        assert_eq!(
            self.bounds(),
            other.bounds(),
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
    }
}

/// Quantile estimation over raw bucket counts, shared by [`Histogram`]
/// and the windowed snapshots in [`crate::timeseries`] (whose per-window
/// deltas are plain count vectors, not atomic histograms).
///
/// `counts` holds `bounds.len() + 1` non-cumulative entries, the last
/// being the overflow bucket. Returns `None` when every bucket is empty;
/// `q` is clamped into `[0, 1]` (NaN clamps to 0) before interpolating.
pub fn quantile_from_buckets(bounds: &[u64], counts: &[u64], q: f64) -> Option<f64> {
    let count: u64 = counts.iter().sum();
    if count == 0 {
        return None;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let target = q * count as f64;
    let mut cumulative = 0u64;
    for (idx, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let next = cumulative + n;
        if (next as f64) >= target {
            if idx >= bounds.len() {
                // Overflow bucket: no finite upper edge to interpolate
                // toward — clamp.
                return Some(bounds.last().copied().unwrap_or(0) as f64);
            }
            let lower = if idx == 0 { 0 } else { bounds[idx - 1] } as f64;
            let upper = bounds[idx] as f64;
            let fraction = (target - cumulative as f64) / n as f64;
            return Some(lower + fraction.clamp(0.0, 1.0) * (upper - lower));
        }
        cumulative = next;
    }
    Some(bounds.last().copied().unwrap_or(0) as f64)
}

/// Exponential bucket bounds mirroring the paper's ICC message-size
/// buckets: `base`, `2·base`, `4·base`, … for `count` bounds (saturating).
pub fn exponential_bounds(base: u64, count: u32) -> Vec<u64> {
    let mut bounds = Vec::with_capacity(count as usize);
    let mut bound = base;
    for _ in 0..count {
        bounds.push(bound);
        bound = bound.saturating_mul(2);
    }
    bounds
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metrics registry: a namespace of counters, gauges, and histograms.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter with this name, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge with this name, creating it at zero if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram with this name, creating it with the given
    /// finite bucket bounds if absent. Bounds of an existing histogram are
    /// not altered.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .clone()
    }

    /// Current value of a counter, if it exists.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner.lock().counters.get(name).map(Counter::value)
    }

    /// Current value of a gauge, if it exists.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.lock().gauges.get(name).map(Gauge::value)
    }

    /// Names of all registered counters, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        self.inner.lock().counters.keys().cloned().collect()
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, counter) in &inner.counters {
            out.push_str(&format!(
                "# TYPE {name} counter\n{name} {}\n",
                counter.value()
            ));
        }
        for (name, gauge) in &inner.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", gauge.value()));
        }
        for (name, hist) in &inner.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let counts = hist.bucket_counts();
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds().iter().zip(&counts) {
                cumulative += count;
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                hist.count(),
                hist.sum(),
                hist.count()
            ));
        }
        out
    }

    /// Renders every metric as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`. Histograms
    /// carry their finite bounds, per-bucket counts (last entry =
    /// overflow), sum, and count.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::from("{\"counters\":{");
        for (i, (name, counter)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n\"{name}\":{}", counter.value()));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, gauge)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n\"{name}\":{}", gauge.value()));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bounds: Vec<String> = hist.bounds().iter().map(u64::to_string).collect();
            let counts: Vec<String> = hist.bucket_counts().iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n\"{name}\":{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
                bounds.join(","),
                counts.join(","),
                hist.sum(),
                hist.count()
            ));
        }
        out.push_str("}}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counters_and_gauges_register_and_update() {
        let registry = Registry::new();
        let calls = registry.counter("coign_calls_total");
        calls.inc();
        calls.add(4);
        // Fetching the same name yields the same underlying cell.
        registry.counter("coign_calls_total").inc();
        assert_eq!(registry.counter_value("coign_calls_total"), Some(6));
        registry.gauge("coign_drift_tv").set(0.25);
        assert_eq!(registry.gauge_value("coign_drift_tv"), Some(0.25));
        assert_eq!(registry.counter_value("missing"), None);
    }

    #[test]
    fn exponential_histogram_mirrors_paper_buckets() {
        let bounds = exponential_bounds(64, 32);
        assert_eq!(bounds[0], 64);
        assert_eq!(bounds[1], 128);
        assert_eq!(bounds[31], 64u64 << 31);
        let registry = Registry::new();
        let hist = registry.histogram("coign_icc_message_bytes", &bounds);
        hist.observe(1); // first bucket (<= 64)
        hist.observe(64); // still first bucket (bucket k is (base·2^(k-1), base·2^k])
        hist.observe(65); // second bucket
        hist.observe(u64::MAX); // overflow bucket
        let counts = hist.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[32], 1);
        assert_eq!(hist.count(), 4);
    }

    #[test]
    fn prometheus_exposition_is_sorted_and_cumulative() {
        let registry = Registry::new();
        registry.counter("b_total").add(2);
        registry.counter("a_total").add(1);
        let hist = registry.histogram("h_bytes", &[10, 100]);
        hist.observe(5);
        hist.observe(50);
        hist.observe(500);
        let text = registry.render_prometheus();
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "metrics must render in sorted order");
        assert!(text.contains("h_bytes_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("h_bytes_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("h_bytes_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("h_bytes_sum 555\n"));
        assert!(text.contains("h_bytes_count 3\n"));
    }

    #[test]
    fn json_snapshot_parses_and_round_trips_values() {
        let registry = Registry::new();
        registry.counter("coign_messages_total").add(464);
        registry.gauge("g").set(1.5);
        registry.histogram("h", &[64]).observe(70);
        let snap = registry.snapshot_json();
        let doc = Json::parse(&snap).expect("snapshot parses");
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("coign_messages_total")
                .unwrap()
                .as_u64(),
            Some(464)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(1.5)
        );
        let hist = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("counts").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn quantiles_of_a_uniform_distribution_interpolate() {
        // 0..1000 uniformly into linear buckets: every estimate should land
        // within one bucket width of the exact quantile.
        let hist = Histogram::new((1..=10).map(|k| k * 100).collect());
        for v in 0..1000u64 {
            hist.observe(v);
        }
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = hist.quantile(q);
            assert!(
                (est - exact).abs() <= 100.0 + 1.0,
                "uniform q={q}: estimate {est} too far from {exact}"
            );
        }
        // Within a single bucket the estimator is exact up to the uniform
        // assumption, which holds here: p50 of 0..1000 is 500.
        assert!((hist.quantile(0.5) - 500.0).abs() < 2.0);
    }

    #[test]
    fn quantiles_of_exponential_buckets_bound_relative_error() {
        // A deterministic geometric-ish distribution over exponential
        // buckets: exact quantiles computed from the raw sample must be
        // bracketed by the containing bucket's edges.
        let bounds = exponential_bounds(64, 16);
        let hist = Histogram::new(bounds.clone());
        let mut samples = Vec::new();
        let mut x = 1u64;
        for i in 0..4096u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1 + (x >> 33) % (64 << (i % 8)); // spread across 8 octaves
            samples.push(v);
            hist.observe(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let exact = samples[((q * samples.len() as f64) as usize).min(samples.len() - 1)];
            let est = hist.quantile(q);
            // The containing bucket spans [lower, 2·lower], so the estimate
            // can be off by at most one octave either way.
            assert!(
                est >= exact as f64 / 2.0 && est <= exact as f64 * 2.0,
                "q={q}: estimate {est} outside octave of exact {exact}"
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let hist = Histogram::new(exponential_bounds(64, 4));
        assert_eq!(hist.quantile(0.5), 0.0, "empty histogram reports 0");
        hist.observe(u64::MAX); // overflow bucket only
        assert_eq!(hist.quantile(0.99), (64u64 << 3) as f64, "overflow clamps");
        // Single finite observation: every quantile lands in its bucket.
        let one = Histogram::new(vec![10, 20, 30]);
        one.observe(15);
        let p50 = one.quantile(0.5);
        assert!(p50 > 10.0 && p50 <= 20.0);
        assert!(one.quantile(1.0) <= 20.0);
    }

    #[test]
    fn try_quantile_distinguishes_empty_from_zero() {
        let hist = Histogram::new(vec![10, 20]);
        assert_eq!(hist.try_quantile(0.5), None, "empty histogram is None");
        hist.observe(0);
        let p = hist.try_quantile(0.5).expect("one observation");
        assert!((0.0..=10.0).contains(&p));
    }

    #[test]
    fn quantile_clamps_q_outside_unit_interval() {
        let hist = Histogram::new(vec![10, 20, 30]);
        for v in [5, 15, 25] {
            hist.observe(v);
        }
        // Out-of-range q clamps to the endpoints instead of extrapolating.
        assert_eq!(hist.quantile(-3.0), hist.quantile(0.0));
        assert_eq!(hist.quantile(7.5), hist.quantile(1.0));
        assert!(hist.quantile(1.0) <= 30.0);
        // NaN is not a probability: it clamps to the low endpoint, never
        // poisons the estimate.
        assert_eq!(hist.quantile(f64::NAN), hist.quantile(0.0));
        assert!(hist.quantile(f64::NAN).is_finite());
    }

    #[test]
    fn merge_from_sums_counts_and_is_order_independent() {
        let bounds = exponential_bounds(64, 8);
        let build = |values: &[u64]| {
            let h = Histogram::new(bounds.clone());
            for &v in values {
                h.observe(v);
            }
            h
        };
        let a = build(&[1, 100, 5000]);
        let b = build(&[64, 64, 900_000]);
        let ab = build(&[]);
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = build(&[]);
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.bucket_counts(), ba.bucket_counts());
        assert_eq!(ab.sum(), a.sum() + b.sum());
        assert_eq!(ab.count(), 6);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let build = || {
            let registry = Registry::new();
            registry.counter("z").add(1);
            registry.counter("a").add(2);
            registry
                .histogram("h", &exponential_bounds(64, 8))
                .observe(100);
            registry.snapshot_json()
        };
        assert_eq!(build(), build());
    }
}
