//! Message-size calibration against the paper's 64·2^k bucket envelope.
//!
//! Coign summarizes ICC message sizes online into exponential buckets:
//! bucket *k* covers `(64·2^(k-1), 64·2^k]` bytes (bucket 0 covers
//! `1..=64`). The paper's Figure 5 shows the measured distribution across
//! the three test applications: the overwhelming majority of messages are
//! small control traffic (interface pointers, HRESULTs, window handles),
//! with a long tail of content pages and pixel buffers reaching ~128 KiB.
//!
//! Calibration works with *two* distributions:
//!
//! * [`PAYLOAD_BUCKET_PROBS`] is what [`sample_size`] draws deliberate
//!   payload sizes from (document fetches, ledger commits). It is
//!   heavy-tailed: payloads are the minority of messages but carry the
//!   envelope's tail.
//! * [`TARGET_BUCKET_PROBS`] is the *end-to-end* envelope the whole
//!   generated profile must fit — payload traffic **plus** the structural
//!   traffic every component application emits: request-header messages
//!   (the other half of each call), GUI site notifications, idle ticks,
//!   interface-pointer hand-offs. Those all land in buckets 0–1, which is
//!   exactly the shape the paper measures: the overwhelming majority of
//!   ICC messages are small control traffic.
//!
//! [`ks_distance`] measures the fit as a Kolmogorov–Smirnov-style sup-norm
//! between the observed bucket CDF and the target CDF.
//!
//! ## Tolerances
//!
//! The calibration test asserts `ks_distance ≤` [`KS_TOLERANCE`] (0.15).
//! The slack is deliberate and documented here:
//!
//! * The payload/structural mix shifts with seed and size: small apps are
//!   scaffolding-dominated (bucket-1 mass up to ~0.40), large apps pump
//!   more idle traffic. Measured sup-norms across seeds/sizes sit at
//!   0.03–0.06; the envelope bounds the *shape*, not one seed's mix.
//! * DCOM marshaling adds per-value headers (~tens of bytes), which can
//!   push a payload sampled near a bucket boundary into the next bucket
//!   (the tests allow exactly one bucket of spill past the envelope).
//! * 0.15 keeps the assertion meaningful — a uniform, inverted, or
//!   tail-less distribution fails by a wide margin — without being brittle
//!   to call-mix drift as the generator grows.

use coign::profile::{IccProfile, BUCKET_COUNT};

/// [`BUCKET_COUNT`] as a usize array length.
pub const NBUCKETS: usize = BUCKET_COUNT as usize;
use rand::rngs::StdRng;
use rand::Rng;

/// Probability that a deliberately generated *payload* (fetch reply,
/// commit body) lands in bucket k. Heavy-tailed on purpose: structural
/// traffic supplies the envelope's head, payloads supply its tail. Sums
/// to 1.
pub const PAYLOAD_BUCKET_PROBS: [f64; 12] = [
    0.465, 0.14, 0.09, 0.07, 0.055, 0.045, 0.04, 0.035, 0.03, 0.015, 0.01, 0.005,
];

/// Target probability that any message of a profiled generated app lands
/// in bucket k — the paper's envelope: a dominant small-message head
/// (control traffic, headers, notifications) and a long content tail out
/// to 128 KiB. Sums to 1.
pub const TARGET_BUCKET_PROBS: [f64; 12] = [
    0.533, 0.33, 0.04, 0.02, 0.015, 0.012, 0.012, 0.013, 0.007, 0.005, 0.008, 0.005,
];

/// Maximum allowed K-S sup-norm between an observed profile's bucket CDF
/// and the target CDF (see the module docs for why 0.15).
pub const KS_TOLERANCE: f64 = 0.15;

/// Draws one payload size from [`PAYLOAD_BUCKET_PROBS`]: pick a bucket by
/// its probability, then a size uniformly within the bucket.
pub fn sample_size(rng: &mut StdRng) -> u64 {
    let roll = rng.gen_range(0.0..1.0);
    let mut cumulative = 0.0;
    let mut bucket = 0usize;
    for (k, p) in PAYLOAD_BUCKET_PROBS.iter().enumerate() {
        cumulative += p;
        if roll < cumulative {
            bucket = k;
            break;
        }
        bucket = k;
    }
    if bucket == 0 {
        rng.gen_range(1..=64u64)
    } else {
        let lo = 64 * (1u64 << (bucket - 1)) + 1;
        let hi = 64 * (1u64 << bucket);
        rng.gen_range(lo..=hi)
    }
}

/// Histogram of message counts per 64·2^k bucket over every edge of a
/// profile.
pub fn bucket_histogram(profile: &IccProfile) -> [u64; NBUCKETS] {
    let mut hist = [0u64; NBUCKETS];
    for (key, stats) in &profile.edges {
        hist[key.bucket as usize] += stats.messages;
    }
    hist
}

/// K-S-style sup-norm between a histogram's empirical bucket CDF and the
/// target CDF. 0 = perfect fit, 1 = completely disjoint.
pub fn ks_distance(hist: &[u64; NBUCKETS]) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mut observed = 0.0f64;
    let mut target = 0.0f64;
    let mut sup = 0.0f64;
    for (k, &count) in hist.iter().enumerate() {
        observed += count as f64 / total as f64;
        target += TARGET_BUCKET_PROBS.get(k).copied().unwrap_or(0.0);
        let gap = (observed - target).abs();
        if gap > sup {
            sup = gap;
        }
    }
    sup
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign::profile::size_bucket;
    use rand::SeedableRng;

    #[test]
    fn both_distributions_sum_to_one() {
        let payload: f64 = PAYLOAD_BUCKET_PROBS.iter().sum();
        assert!((payload - 1.0).abs() < 1e-9, "payload sums to {payload}");
        let target: f64 = TARGET_BUCKET_PROBS.iter().sum();
        assert!((target - 1.0).abs() < 1e-9, "target sums to {target}");
    }

    #[test]
    fn sampled_sizes_land_in_their_buckets() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut hist = [0u64; NBUCKETS];
        for _ in 0..20_000 {
            let size = sample_size(&mut rng);
            assert!(size >= 1);
            let bucket = size_bucket(size);
            assert!((bucket as usize) < PAYLOAD_BUCKET_PROBS.len());
            hist[bucket as usize] += 1;
        }
        // The sampler must fit its own payload distribution tightly.
        let total: u64 = hist.iter().sum();
        let mut observed = 0.0f64;
        let mut expected = 0.0f64;
        let mut sup = 0.0f64;
        for k in 0..PAYLOAD_BUCKET_PROBS.len() {
            observed += hist[k] as f64 / total as f64;
            expected += PAYLOAD_BUCKET_PROBS[k];
            sup = sup.max((observed - expected).abs());
        }
        assert!(sup < 0.02, "sampler self-fit {sup}");
    }

    #[test]
    fn ks_distance_rejects_degenerate_histograms() {
        let mut all_big = [0u64; NBUCKETS];
        all_big[11] = 1000;
        assert!(ks_distance(&all_big) > 0.9);
        assert_eq!(ks_distance(&[0u64; NBUCKETS]), 1.0);
    }
}
