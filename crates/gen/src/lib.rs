//! Seeded synthetic application generator + schedule-space exploration.
//!
//! Coign's evaluation rests on three hand-built applications; every
//! analysis, placement, and recovery path in this repository is therefore
//! exercised against the same three ICC topologies. This crate turns that
//! test surface into *hundreds* of topologies: [`GeneratedApp`] builds a
//! complete simCOM application — component classes, interfaces, scenario
//! drivers, a modeled binary image, explicit constraints — entirely from a
//! `(seed, size)` pair, calibrated to the statistics the paper measures:
//!
//! * **Component counts** scale with [`GenSize`] (small ≈ a dozen classes
//!   for exhaustive schedule exploration, large ≈ the paper's 60–80 class
//!   applications).
//! * **ICC message sizes** are drawn from the 64·2^k bucket envelope of the
//!   paper's Figure 5 ([`calibration`]).
//! * **Non-remotable fraction**: window-site and raw-handle interfaces
//!   (opaque `HWND` parameters) mirror the GUI/shared-memory hazards of
//!   Octarine and PhotoDraw.
//! * **Constraint density**: STORAGE/GUI API imports plus a small number of
//!   explicit absolute/pairwise constraints in the style of Benefits.
//! * **Instance sharing / state effects**: a shared theme service allocates
//!   transients for every widget (the classifier-stressing pattern), file
//!   stores are read-only, and a ledger component carries honest
//!   `mutates_state` annotations so replication legality has teeth.
//!
//! Everything is a pure function of the seed: two [`GeneratedApp`]s built
//! from the same [`GenSpec`] register identical classes, emit identical
//! images, and drive identical scenarios. [`explore`] builds on that
//! determinism to enumerate fault-schedule interleavings and check recovery
//! invariants after each one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod explore;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use coign::application::Application;
use coign::constraints::NamedConstraint;
use coign_apps::common::{
    call, fingerprint_of, register_file_store, register_gui_class, register_idle_loop,
    register_theme_engine, work, GuiSpec, IDLE_PUMP, STORE_PAGE_COUNT, STORE_READ_PAGE,
    STORE_READ_STREAM, WIDGET_BUILD, WIDGET_PAINT, WIDGET_REGISTER_IDLE,
};
use coign_com::idl::InterfaceBuilder;
use coign_com::{
    ApiImports, AppImage, CallCtx, Clsid, ComError, ComObject, ComResult, ComRuntime, Iid,
    InterfaceDesc, InterfacePtr, MachineId, Message, PType, Value,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interns a string, returning a `&'static str` (the GUI building blocks in
/// `coign_apps::common` take static class names). The pool is global and
/// deduplicated, so repeated generation of the same blueprint never grows
/// memory.
fn intern(s: String) -> &'static str {
    static POOL: std::sync::OnceLock<Mutex<HashMap<String, &'static str>>> =
        std::sync::OnceLock::new();
    let mut pool = POOL.get_or_init(|| Mutex::new(HashMap::new())).lock();
    if let Some(&v) = pool.get(&s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
    pool.insert(s, leaked);
    leaked
}

/// Generated-application size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenSize {
    /// ~a dozen classes; tractable for exhaustive schedule exploration.
    Small,
    /// ~25–35 classes; the default sweep/chaos subject.
    Medium,
    /// ~55–75 classes; the scale of the paper's real applications.
    Large,
}

impl GenSize {
    /// Parses `"small" | "medium" | "large"`.
    pub fn parse(text: &str) -> Option<GenSize> {
        match text {
            "small" => Some(GenSize::Small),
            "medium" => Some(GenSize::Medium),
            "large" => Some(GenSize::Large),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            GenSize::Small => "small",
            GenSize::Medium => "medium",
            GenSize::Large => "large",
        }
    }
}

/// A generated application is fully identified by seed and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenSpec {
    /// Generator seed; every structural choice derives from it.
    pub seed: u64,
    /// Size class.
    pub size: GenSize,
}

impl GenSpec {
    /// Creates a spec.
    pub fn new(seed: u64, size: GenSize) -> Self {
        GenSpec { seed, size }
    }

    /// Application name stem, e.g. `"gen-42-small"`.
    pub fn stem(&self) -> String {
        format!("gen-{}-{}", self.seed, self.size.name())
    }

    /// Modeled binary name, e.g. `"gen-42-small.exe"`.
    pub fn image_name(&self) -> String {
        format!("{}.exe", self.stem())
    }
}

/// Parses the `gen:` image-address payload: `"<seed>"` or `"<seed>:<size>"`
/// (size defaults to `small`, the explore-friendly class).
pub fn parse_gen_spec(text: &str) -> Option<GenSpec> {
    let (seed_text, size_text) = match text.split_once(':') {
        Some((s, z)) => (s, z),
        None => (text, "small"),
    };
    let seed = seed_text.parse::<u64>().ok()?;
    let size = GenSize::parse(size_text)?;
    Some(GenSpec::new(seed, size))
}

/// Resolves a generated-application *name* (`"gen-42-small"`, with or
/// without a trailing `.exe`) back to the application it denotes. This is
/// how `coign profile`/`run`/`chaos` recognize a generated image: the name
/// is the seed.
pub fn app_for_name(name: &str) -> Option<Arc<dyn Application>> {
    let stem = name.strip_suffix(".exe").unwrap_or(name);
    let rest = stem.strip_prefix("gen-")?;
    let (seed_text, size_text) = rest.rsplit_once('-')?;
    let seed = seed_text.parse::<u64>().ok()?;
    let size = GenSize::parse(size_text)?;
    Some(Arc::new(GeneratedApp::new(GenSpec::new(seed, size))))
}

// ---------------------------------------------------------------------------
// Blueprint
// ---------------------------------------------------------------------------

/// One generated leaf-widget class.
#[derive(Debug, Clone)]
pub struct LeafGen {
    /// Class name.
    pub name: &'static str,
    /// `Notify` calls to the parent window site during `Build`.
    pub notify: u32,
    /// Compute charged by `Build` (pre-`WORK_SCALE` units).
    pub build: u64,
    /// Compute charged by `Paint`.
    pub paint: u64,
    /// Transient class spawned from idle refreshes, if any.
    pub spawn: Option<&'static str>,
}

/// One generated container-widget class.
#[derive(Debug, Clone)]
pub struct BarGen {
    /// Class name.
    pub name: &'static str,
    /// Child leaf classes instantiated during `Build`: `(class, count)`.
    pub children: Vec<(&'static str, usize)>,
    /// `Notify` calls to the frame's window site.
    pub notify: u32,
}

/// One generated file-store class (STORAGE import — pinned to the server).
#[derive(Debug, Clone)]
pub struct StoreGen {
    /// Class name.
    pub name: &'static str,
    /// Content page count.
    pub pages: i32,
    /// Bytes per page (drawn from the large ICC buckets).
    pub page_size: u64,
    /// Named auxiliary streams.
    pub streams: Vec<(&'static str, u64)>,
}

/// One generated document class (unpinned; the interesting min-cut nodes).
#[derive(Debug, Clone)]
pub struct DocGen {
    /// Class name.
    pub name: &'static str,
    /// Backing store class.
    pub store: &'static str,
    /// Pages read during `Load`.
    pub load_pages: i32,
    /// `Fetch` reply sizes driven by the `g_doc` scenario (calibrated).
    pub fetch_sizes: Vec<u64>,
}

/// The complete deterministic plan for one generated application.
#[derive(Debug, Clone)]
pub struct Blueprint {
    /// The identifying spec.
    pub spec: GenSpec,
    /// Root frame widget class.
    pub frame: &'static str,
    /// Container widgets under the frame.
    pub bars: Vec<BarGen>,
    /// Leaf widget classes.
    pub leaves: Vec<LeafGen>,
    /// Transient classes allocated through the theme service.
    pub tips: Vec<&'static str>,
    /// Shared theme/resource service class.
    pub theme: &'static str,
    /// Idle-loop class.
    pub idle: &'static str,
    /// File stores.
    pub stores: Vec<StoreGen>,
    /// Document classes.
    pub docs: Vec<DocGen>,
    /// Native-handle canvas classes (non-remotable interface).
    pub canvases: Vec<&'static str>,
    /// The commit ledger class (server-pinned, honest `mutates_state`).
    pub ledger: &'static str,
    /// Ledger commit payload sizes driven by `g_main` (calibrated).
    pub commit_sizes: Vec<u64>,
    /// Document fetch sizes interleaved with the commits in `g_main`.
    pub main_fetches: Vec<u64>,
    /// Idle rounds pumped by `g_main`.
    pub idle_rounds_main: i32,
    /// Idle rounds pumped by `g_idle`.
    pub idle_rounds_idle: i32,
    /// Explicit programmer constraints (Benefits style).
    pub constraints: Vec<NamedConstraint>,
}

struct SizeParams {
    bars: (u64, u64),
    leaf_kinds: (u64, u64),
    leaves_per_bar: (u64, u64),
    tips: (u64, u64),
    stores: (u64, u64),
    docs: (u64, u64),
    canvases: (u64, u64),
    fetches_per_doc: (u64, u64),
    commits: (u64, u64),
    idle_rounds: (i32, i32),
}

impl SizeParams {
    fn of(size: GenSize) -> SizeParams {
        match size {
            GenSize::Small => SizeParams {
                bars: (1, 2),
                leaf_kinds: (2, 3),
                leaves_per_bar: (1, 2),
                tips: (1, 1),
                stores: (1, 1),
                docs: (1, 1),
                canvases: (0, 1),
                fetches_per_doc: (18, 26),
                commits: (8, 12),
                idle_rounds: (1, 2),
            },
            GenSize::Medium => SizeParams {
                bars: (3, 5),
                leaf_kinds: (6, 9),
                leaves_per_bar: (1, 3),
                tips: (2, 2),
                stores: (2, 3),
                docs: (3, 5),
                canvases: (2, 3),
                fetches_per_doc: (80, 120),
                commits: (20, 30),
                idle_rounds: (2, 3),
            },
            GenSize::Large => SizeParams {
                bars: (8, 12),
                leaf_kinds: (18, 26),
                leaves_per_bar: (2, 4),
                tips: (3, 4),
                stores: (4, 6),
                docs: (8, 12),
                canvases: (4, 7),
                fetches_per_doc: (100, 140),
                commits: (40, 60),
                idle_rounds: (2, 4),
            },
        }
    }
}

fn pick(rng: &mut StdRng, range: (u64, u64)) -> u64 {
    rng.gen_range(range.0..=range.1)
}

impl Blueprint {
    /// Generates the blueprint for `spec`. Pure: identical specs yield
    /// identical blueprints (the seed is mixed with the size class so
    /// `gen-7-small` and `gen-7-large` differ structurally, not just in
    /// scale).
    pub fn generate(spec: GenSpec) -> Blueprint {
        let size_salt = match spec.size {
            GenSize::Small => 0x5347u64,
            GenSize::Medium => 0x4D45u64,
            GenSize::Large => 0x4C41u64,
        };
        let mut rng =
            StdRng::seed_from_u64(spec.seed ^ size_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let p = SizeParams::of(spec.size);

        let tips: Vec<&'static str> = (0..pick(&mut rng, p.tips))
            .map(|i| intern(format!("GenTip{i}")))
            .collect();

        const LEAF_STEMS: [&str; 8] = [
            "GenLabel",
            "GenRuler",
            "GenPane",
            "GenTree",
            "GenListRow",
            "GenBadge",
            "GenChip",
            "GenMeter",
        ];
        let leaves: Vec<LeafGen> = (0..pick(&mut rng, p.leaf_kinds))
            .map(|i| {
                let stem = LEAF_STEMS[rng.gen_range(0..LEAF_STEMS.len() as u64) as usize];
                let spawn = if rng.gen_bool(0.5) && !tips.is_empty() {
                    Some(tips[rng.gen_range(0..tips.len() as u64) as usize])
                } else {
                    None
                };
                LeafGen {
                    name: intern(format!("{stem}{i}")),
                    notify: rng.gen_range(1..=3u64) as u32,
                    build: pick(&mut rng, (4, 14)),
                    paint: pick(&mut rng, (2, 8)),
                    spawn,
                }
            })
            .collect();

        let bars: Vec<BarGen> = (0..pick(&mut rng, p.bars))
            .map(|i| {
                let kinds = pick(&mut rng, p.leaves_per_bar).min(leaves.len() as u64);
                let children = (0..kinds)
                    .map(|_| {
                        let leaf = &leaves[rng.gen_range(0..leaves.len() as u64) as usize];
                        (leaf.name, rng.gen_range(1..=2u64) as usize)
                    })
                    .collect();
                BarGen {
                    name: intern(format!("GenBar{i}")),
                    children,
                    notify: rng.gen_range(1..=2u64) as u32,
                }
            })
            .collect();

        let stores: Vec<StoreGen> = (0..pick(&mut rng, p.stores))
            .map(|i| {
                // Page sizes live in the heavy tail of the paper's message
                // distribution: 8 KiB – 128 KiB (buckets k = 7..=11).
                let k = rng.gen_range(7..=11u64) as u32;
                let page_size = rng.gen_range(64 * (1u64 << (k - 1)) + 1..=64 * (1u64 << k));
                let streams = (0..rng.gen_range(1..=2u64))
                    .map(|s| {
                        (
                            intern(format!("gstream{i}_{s}")),
                            rng.gen_range(256..=4096u64),
                        )
                    })
                    .collect();
                StoreGen {
                    name: intern(format!("GenStore{i}")),
                    pages: rng.gen_range(3..=10u64) as i32,
                    page_size,
                    streams,
                }
            })
            .collect();

        let docs: Vec<DocGen> = (0..pick(&mut rng, p.docs))
            .map(|i| {
                let store = &stores[rng.gen_range(0..stores.len() as u64) as usize];
                let fetch_sizes = (0..pick(&mut rng, p.fetches_per_doc))
                    .map(|_| calibration::sample_size(&mut rng))
                    .collect();
                DocGen {
                    name: intern(format!("GenDoc{i}")),
                    store: store.name,
                    load_pages: rng.gen_range(1..=store.pages as u64).max(1) as i32,
                    fetch_sizes,
                }
            })
            .collect();

        let canvases: Vec<&'static str> = (0..pick(&mut rng, p.canvases))
            .map(|i| intern(format!("GenCanvas{i}")))
            .collect();

        let commit_sizes: Vec<u64> = (0..pick(&mut rng, p.commits))
            .map(|_| calibration::sample_size(&mut rng))
            .collect();
        let main_fetches: Vec<u64> = (0..commit_sizes.len())
            .map(|_| calibration::sample_size(&mut rng))
            .collect();

        let ledger = intern(format!("GenLedger{}", spec.seed % 10));

        // Explicit constraints in the Benefits style: the ledger is always
        // pinned to the server (data security), and some documents are
        // colocated with their store (integrity). Density 1–3 per app,
        // matching how rarely the paper's applications constrain placement.
        let mut constraints = vec![NamedConstraint::Absolute(
            ledger.to_string(),
            MachineId::SERVER,
        )];
        for doc in &docs {
            if constraints.len() < 3 && rng.gen_bool(0.35) {
                constraints.push(NamedConstraint::Pairwise(
                    doc.name.to_string(),
                    doc.store.to_string(),
                ));
            }
        }

        Blueprint {
            spec,
            frame: intern(format!("GenFrame{}", spec.seed % 10)),
            bars,
            leaves,
            tips,
            theme: intern("GenTheme".to_string()),
            idle: intern("GenIdle".to_string()),
            stores,
            docs,
            canvases,
            ledger,
            commit_sizes,
            main_fetches,
            idle_rounds_main: pick(&mut rng, (p.idle_rounds.0 as u64, p.idle_rounds.1 as u64))
                as i32,
            idle_rounds_idle: pick(&mut rng, (p.idle_rounds.0 as u64, p.idle_rounds.1 as u64))
                as i32
                + 1,
            constraints,
        }
    }

    /// Every class name, in registration order.
    pub fn class_names(&self) -> Vec<&'static str> {
        let mut names = vec![self.frame];
        names.extend(self.bars.iter().map(|b| b.name));
        names.extend(self.leaves.iter().map(|l| l.name));
        names.extend(self.tips.iter().copied());
        names.push(self.idle);
        names.push(self.theme);
        names.extend(self.stores.iter().map(|s| s.name));
        names.extend(self.docs.iter().map(|d| d.name));
        names.extend(self.canvases.iter().copied());
        names.push(self.ledger);
        names
    }

    /// Number of component classes.
    pub fn class_count(&self) -> usize {
        self.class_names().len()
    }

    /// Distinct interfaces registered by this app.
    pub fn interface_count(&self) -> usize {
        // IWidget, IWindowSite, IIdleLoop, ITheme, IStore, IGenDoc,
        // IGenLedger (+ IGenNative when canvases exist).
        7 + usize::from(!self.canvases.is_empty())
    }

    /// Non-remotable interfaces among [`Self::interface_count`].
    pub fn non_remotable_count(&self) -> usize {
        // IWindowSite always; IGenNative when canvases exist.
        1 + usize::from(!self.canvases.is_empty())
    }

    /// Total `Fetch` calls across all scenarios.
    pub fn fetch_calls(&self) -> usize {
        self.docs.iter().map(|d| d.fetch_sizes.len()).sum::<usize>() + self.main_fetches.len()
    }
}

// ---------------------------------------------------------------------------
// Generated component classes
// ---------------------------------------------------------------------------

/// Method index of `IGenDoc::Fetch`.
pub const DOC_FETCH: u32 = 0;
/// Method index of `IGenDoc::Load`.
pub const DOC_LOAD: u32 = 1;
/// Method index of `IGenDoc::Stat`.
pub const DOC_STAT: u32 = 2;
/// Method index of `IGenLedger::Commit`.
pub const LEDGER_COMMIT: u32 = 0;
/// Method index of `IGenNative::Blit`.
pub const NATIVE_BLIT: u32 = 0;

/// The generated document interface — fully annotated so the state-effect
/// and replication analyses have real metadata to chew on.
pub fn igen_doc() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IGenDoc")
        .method("Fetch", |m| {
            m.input("bytes", PType::I4)
                .output("data", PType::Blob)
                .reads_state()
        })
        .method("Load", |m| m.input("pages", PType::I4).mutates_state())
        .method("Stat", |m| m.output("pages", PType::I4).reads_state())
        .build()
}

/// The commit ledger interface (honest `mutates_state`).
pub fn igen_ledger() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IGenLedger")
        .method("Commit", |m| {
            m.input("payload", PType::Blob)
                .output("seq", PType::I4)
                .mutates_state()
        })
        .build()
}

/// The native canvas interface: an opaque window handle crosses it, so it
/// is non-remotable (PhotoDraw's shared-memory hazard).
pub fn igen_native() -> Arc<InterfaceDesc> {
    InterfaceBuilder::new("IGenNative")
        .method("Blit", |m| {
            m.input("hwnd", PType::Opaque).input("rows", PType::I4)
        })
        .build()
}

/// A generated document: loads pages from its backing store, then serves
/// calibrated `Fetch` replies.
struct GenDoc {
    store_class: &'static str,
    store: Mutex<Option<InterfacePtr>>,
    pages_loaded: Mutex<i32>,
}

impl ComObject for GenDoc {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            DOC_FETCH => {
                work(ctx, 2);
                let bytes = msg.arg(0).and_then(Value::as_i4).unwrap_or(0).max(0) as u64;
                msg.set(1, Value::Blob(bytes));
                Ok(())
            }
            DOC_LOAD => {
                work(ctx, 5);
                let want = msg.arg(0).and_then(Value::as_i4).unwrap_or(0).max(0);
                let store = {
                    let cached = self.store.lock().clone();
                    match cached {
                        Some(s) => s,
                        None => {
                            let s = ctx.create(
                                Clsid::from_name(self.store_class),
                                Iid::from_name("IStore"),
                            )?;
                            *self.store.lock() = Some(s.clone());
                            s
                        }
                    }
                };
                let mut count = Message::outputs(1);
                store.call(ctx.rt(), STORE_PAGE_COUNT, &mut count)?;
                let pages = count.arg(0).and_then(Value::as_i4).unwrap_or(0).min(want);
                for page in 0..pages {
                    let mut read = Message::new(vec![Value::I4(page), Value::Null]);
                    store.call(ctx.rt(), STORE_READ_PAGE, &mut read)?;
                }
                *self.pages_loaded.lock() += pages;
                Ok(())
            }
            DOC_STAT => {
                work(ctx, 1);
                msg.set(0, Value::I4(*self.pages_loaded.lock()));
                Ok(())
            }
            _ => Err(ComError::App(format!("IGenDoc has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&(*self.pages_loaded.lock(), self.store.lock().is_some()))
    }
}

/// The commit ledger: the exactly-once witness. Every `Commit` bumps a
/// counter shared with the [`GeneratedApp`] that registered the class, so
/// a test can compare observed commits against the scenario's script.
struct GenLedger {
    counter: Arc<AtomicU64>,
}

impl ComObject for GenLedger {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            LEDGER_COMMIT => {
                work(ctx, 4);
                let seq = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
                msg.set(1, Value::I4(seq as i32));
                Ok(())
            }
            _ => Err(ComError::App(format!("IGenLedger has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&self.counter.load(Ordering::SeqCst))
    }
}

/// A native canvas: cheap compute behind a non-remotable interface.
struct GenCanvas;

impl ComObject for GenCanvas {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            NATIVE_BLIT => {
                let rows = msg.arg(1).and_then(Value::as_i4).unwrap_or(1).max(1) as u64;
                work(ctx, rows);
                Ok(())
            }
            _ => Err(ComError::App(format!("IGenNative has no method {method}"))),
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        fingerprint_of(&0u64)
    }
}

// ---------------------------------------------------------------------------
// The application
// ---------------------------------------------------------------------------

/// A fully synthetic Coign application generated from a [`GenSpec`].
pub struct GeneratedApp {
    blueprint: Blueprint,
    name: String,
    ledger_commits: Arc<AtomicU64>,
}

impl GeneratedApp {
    /// Builds the application for `spec` (deterministic).
    pub fn new(spec: GenSpec) -> GeneratedApp {
        GeneratedApp {
            blueprint: Blueprint::generate(spec),
            name: spec.stem(),
            ledger_commits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The generation plan.
    pub fn blueprint(&self) -> &Blueprint {
        &self.blueprint
    }

    /// Ledger commits observed so far (across every run of this instance).
    pub fn ledger_commits(&self) -> u64 {
        self.ledger_commits.load(Ordering::SeqCst)
    }

    /// Ledger commits a *completed* run of `scenario` performs.
    pub fn expected_commits(&self, scenario: &str) -> u64 {
        match scenario {
            "g_main" => self.blueprint.commit_sizes.len() as u64,
            _ => 0,
        }
    }

    fn run_g_main(&self, rt: &ComRuntime) -> ComResult<()> {
        let bp = &self.blueprint;
        let frame = rt.create_instance(Clsid::from_name(bp.frame), Iid::from_name("IWidget"))?;
        call(rt, &frame, WIDGET_BUILD, vec![Value::Interface(None)])?;
        let idle = rt.create_instance(Clsid::from_name(bp.idle), Iid::from_name("IIdleLoop"))?;
        call(
            rt,
            &frame,
            WIDGET_REGISTER_IDLE,
            vec![Value::Interface(Some(idle.clone()))],
        )?;
        call(rt, &idle, IDLE_PUMP, vec![Value::I4(bp.idle_rounds_main)])?;
        call(rt, &frame, WIDGET_PAINT, vec![])?;
        for canvas in &bp.canvases {
            let c = rt.create_instance(Clsid::from_name(canvas), Iid::from_name("IGenNative"))?;
            call(rt, &c, NATIVE_BLIT, vec![Value::Opaque(1), Value::I4(4)])?;
        }
        let ledger =
            rt.create_instance(Clsid::from_name(bp.ledger), Iid::from_name("IGenLedger"))?;
        let doc = &bp.docs[0];
        let d = rt.create_instance(Clsid::from_name(doc.name), Iid::from_name("IGenDoc"))?;
        call(rt, &d, DOC_LOAD, vec![Value::I4(doc.load_pages.min(2))])?;
        for (i, payload) in bp.commit_sizes.iter().enumerate() {
            call(rt, &ledger, LEDGER_COMMIT, vec![Value::Blob(*payload)])?;
            call(
                rt,
                &d,
                DOC_FETCH,
                vec![Value::I4(bp.main_fetches[i] as i32)],
            )?;
        }
        Ok(())
    }

    fn run_g_doc(&self, rt: &ComRuntime) -> ComResult<()> {
        let bp = &self.blueprint;
        for doc in &bp.docs {
            let d = rt.create_instance(Clsid::from_name(doc.name), Iid::from_name("IGenDoc"))?;
            call(rt, &d, DOC_LOAD, vec![Value::I4(doc.load_pages)])?;
            call(rt, &d, DOC_STAT, vec![])?;
            for size in &doc.fetch_sizes {
                call(rt, &d, DOC_FETCH, vec![Value::I4(*size as i32)])?;
            }
        }
        // Touch the auxiliary streams directly, the way a property sheet
        // would.
        for store in &bp.stores {
            let s = rt.create_instance(Clsid::from_name(store.name), Iid::from_name("IStore"))?;
            for (stream, _) in &store.streams {
                call(
                    rt,
                    &s,
                    STORE_READ_STREAM,
                    vec![Value::Str(stream.to_string())],
                )?;
            }
        }
        Ok(())
    }

    fn run_g_idle(&self, rt: &ComRuntime) -> ComResult<()> {
        let bp = &self.blueprint;
        let frame = rt.create_instance(Clsid::from_name(bp.frame), Iid::from_name("IWidget"))?;
        call(rt, &frame, WIDGET_BUILD, vec![Value::Interface(None)])?;
        let idle = rt.create_instance(Clsid::from_name(bp.idle), Iid::from_name("IIdleLoop"))?;
        call(
            rt,
            &frame,
            WIDGET_REGISTER_IDLE,
            vec![Value::Interface(Some(idle.clone()))],
        )?;
        call(rt, &idle, IDLE_PUMP, vec![Value::I4(bp.idle_rounds_idle)])?;
        call(rt, &frame, WIDGET_PAINT, vec![])?;
        Ok(())
    }

    /// Renders the topology summary (`coign gen`): one stable line per
    /// statistic in human mode, a flat object in JSON mode.
    pub fn summary(&self, json: bool) -> String {
        let bp = &self.blueprint;
        let scenarios = self.scenarios();
        if json {
            let list = scenarios
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                concat!(
                    "{{\n",
                    "  \"app\": \"{}\",\n",
                    "  \"seed\": {},\n",
                    "  \"size\": \"{}\",\n",
                    "  \"classes\": {},\n",
                    "  \"gui_classes\": {},\n",
                    "  \"stores\": {},\n",
                    "  \"documents\": {},\n",
                    "  \"canvases\": {},\n",
                    "  \"interfaces\": {},\n",
                    "  \"non_remotable_interfaces\": {},\n",
                    "  \"explicit_constraints\": {},\n",
                    "  \"ledger_commits_per_g_main\": {},\n",
                    "  \"fetch_calls\": {},\n",
                    "  \"scenarios\": [{}]\n",
                    "}}"
                ),
                self.name,
                bp.spec.seed,
                bp.spec.size.name(),
                bp.class_count(),
                1 + bp.bars.len() + bp.leaves.len() + bp.tips.len(),
                bp.stores.len(),
                bp.docs.len(),
                bp.canvases.len(),
                bp.interface_count(),
                bp.non_remotable_count(),
                bp.constraints.len(),
                bp.commit_sizes.len(),
                bp.fetch_calls(),
                list,
            )
        } else {
            format!(
                concat!(
                    "app {} (seed {}, size {})\n",
                    "  classes: {} ({} gui, {} store, {} doc, {} canvas, 1 ledger)\n",
                    "  interfaces: {} ({} non-remotable)\n",
                    "  explicit constraints: {}\n",
                    "  ledger commits per g_main: {}\n",
                    "  calibrated fetch calls: {}\n",
                    "  scenarios: {}\n"
                ),
                self.name,
                bp.spec.seed,
                bp.spec.size.name(),
                bp.class_count(),
                1 + bp.bars.len() + bp.leaves.len() + bp.tips.len(),
                bp.stores.len(),
                bp.docs.len(),
                bp.canvases.len(),
                bp.interface_count(),
                bp.non_remotable_count(),
                bp.constraints.len(),
                bp.commit_sizes.len(),
                bp.fetch_calls(),
                scenarios.join(" "),
            )
        }
    }
}

impl Application for GeneratedApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn register(&self, rt: &ComRuntime) {
        let bp = &self.blueprint;
        register_gui_class(
            rt,
            bp.frame,
            GuiSpec {
                children: bp.bars.iter().map(|b| (b.name, 1)).collect(),
                notify_parent: 1,
                build_cost_us: 8,
                paint_cost_us: 4,
                idle_spawn: None,
            },
        );
        for bar in &bp.bars {
            register_gui_class(
                rt,
                bar.name,
                GuiSpec {
                    children: bar.children.clone(),
                    notify_parent: bar.notify,
                    build_cost_us: 5,
                    paint_cost_us: 3,
                    idle_spawn: None,
                },
            );
        }
        for leaf in &bp.leaves {
            register_gui_class(
                rt,
                leaf.name,
                GuiSpec {
                    children: Vec::new(),
                    notify_parent: leaf.notify,
                    build_cost_us: leaf.build,
                    paint_cost_us: leaf.paint,
                    idle_spawn: leaf.spawn,
                },
            );
        }
        for tip in &bp.tips {
            register_gui_class(rt, tip, GuiSpec::default());
        }
        register_idle_loop(rt, bp.idle, Some(bp.theme));
        register_theme_engine(rt, bp.theme);
        for store in &bp.stores {
            register_file_store(
                rt,
                store.name,
                store.pages,
                store.page_size,
                store.streams.clone(),
            );
        }
        for doc in &bp.docs {
            let store_class = doc.store;
            rt.registry()
                .register(doc.name, vec![igen_doc()], ApiImports::NONE, move |_, _| {
                    Arc::new(GenDoc {
                        store_class,
                        store: Mutex::new(None),
                        pages_loaded: Mutex::new(0),
                    })
                });
        }
        for canvas in &bp.canvases {
            rt.registry()
                .register(canvas, vec![igen_native()], ApiImports::GUI, |_, _| {
                    Arc::new(GenCanvas)
                });
        }
        let counter = self.ledger_commits.clone();
        rt.registry().register(
            bp.ledger,
            vec![igen_ledger()],
            ApiImports::STORAGE,
            move |_, _| {
                Arc::new(GenLedger {
                    counter: counter.clone(),
                })
            },
        );
    }

    fn scenarios(&self) -> Vec<&'static str> {
        vec!["g_main", "g_doc", "g_idle"]
    }

    fn run_scenario(&self, rt: &ComRuntime, scenario: &str) -> ComResult<()> {
        match scenario {
            "g_main" => self.run_g_main(rt),
            "g_doc" => self.run_g_doc(rt),
            "g_idle" => self.run_g_idle(rt),
            other => Err(ComError::App(format!(
                "{} has no scenario {other:?}",
                self.name
            ))),
        }
    }

    fn image(&self) -> AppImage {
        AppImage::builder(&self.blueprint.spec.image_name())
            .classes(
                self.blueprint
                    .class_names()
                    .into_iter()
                    .map(Clsid::from_name),
            )
            .import("gdi32.dll")
            .import("storage.dll")
            .build()
    }

    fn default_placement(&self, class_name: &str) -> MachineId {
        // Desktop default: everything on the client except the data files
        // and the ledger, which live on the server.
        if self.blueprint.stores.iter().any(|s| s.name == class_name)
            || class_name == self.blueprint.ledger
        {
            MachineId::SERVER
        } else {
            MachineId::CLIENT
        }
    }

    fn explicit_constraints(&self) -> Vec<NamedConstraint> {
        self.blueprint.constraints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blueprints_are_deterministic() {
        let a = Blueprint::generate(GenSpec::new(7, GenSize::Medium));
        let b = Blueprint::generate(GenSpec::new(7, GenSize::Medium));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = Blueprint::generate(GenSpec::new(8, GenSize::Medium));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn sizes_scale_class_counts() {
        let small = Blueprint::generate(GenSpec::new(3, GenSize::Small)).class_count();
        let medium = Blueprint::generate(GenSpec::new(3, GenSize::Medium)).class_count();
        let large = Blueprint::generate(GenSpec::new(3, GenSize::Large)).class_count();
        assert!(small < medium && medium < large, "{small} {medium} {large}");
        assert!((6..=16).contains(&small), "small app had {small} classes");
        assert!(large >= 40, "large app had only {large} classes");
    }

    #[test]
    fn class_names_are_unique() {
        for seed in [0u64, 1, 42, 99] {
            let bp = Blueprint::generate(GenSpec::new(seed, GenSize::Large));
            let names = bp.class_names();
            let mut dedup = names.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), names.len(), "duplicate class in seed {seed}");
        }
    }

    #[test]
    fn spec_addressing_round_trips() {
        let spec = GenSpec::new(42, GenSize::Small);
        assert_eq!(spec.stem(), "gen-42-small");
        assert_eq!(parse_gen_spec("42"), Some(spec));
        assert_eq!(parse_gen_spec("42:small"), Some(spec));
        assert_eq!(
            parse_gen_spec("42:large"),
            Some(GenSpec::new(42, GenSize::Large))
        );
        assert!(parse_gen_spec("x").is_none());
        assert!(parse_gen_spec("42:gigantic").is_none());
        let app = app_for_name("gen-42-small.exe").expect("resolved");
        assert_eq!(app.name(), "gen-42-small");
        assert!(app_for_name("octarine.exe").is_none());
        assert!(app_for_name("gen-x-small").is_none());
    }

    #[test]
    fn default_run_completes_every_scenario() {
        let app = GeneratedApp::new(GenSpec::new(5, GenSize::Small));
        for scenario in app.scenarios() {
            coign::run_default(
                &app,
                scenario,
                coign_dcom::NetworkModel::ethernet_10baset(),
                0x000C_0161,
            )
            .unwrap_or_else(|e| {
                panic!("scenario {scenario} failed: {e}");
            });
        }
        assert_eq!(app.ledger_commits(), app.expected_commits("g_main"));
    }

    #[test]
    fn image_lists_every_registered_class() {
        let app = GeneratedApp::new(GenSpec::new(11, GenSize::Medium));
        let image = app.image();
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        for name in app.blueprint().class_names() {
            assert!(
                image.classes.contains(&Clsid::from_name(name)),
                "{name} missing from image"
            );
        }
        assert_eq!(image.classes.len(), app.blueprint().class_count());
    }
}
