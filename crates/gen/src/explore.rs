//! Schedule-space exploration over generated applications.
//!
//! Chaos testing (`coign chaos`) samples random fault plans; exploration
//! walks the schedule space *systematically*, CoInDiVinE-style. For a small
//! generated application the space of recovery-relevant interleavings is
//! spanned by three axes on the simulated clock:
//!
//! * **Fault instant** — when the server machine dies. Instants are either
//!   given explicitly (`--faults-at`) or enumerated on an even grid across
//!   the fault-free horizon (`--enumerate-depth D` ⇒ 128·D instants).
//! * **Breaker threshold** — how many failures the health monitor needs to
//!   declare the machine dead, which shifts the recovery epoch relative to
//!   the failing call (threshold 1 recovers on the first failure, 5 lets
//!   retries and fast-fails interleave first).
//! * **Drift arming** — optionally arms the drift monitor, so a drift fire
//!   and a breaker declaration can land on the same tick (the ordering the
//!   `RecoveryCoordinator` pins: deaths drain before the drift re-solve).
//!
//! Every interleaving runs the scenario to completion under the
//! self-healing runtime and then checks the full invariant battery:
//! typed outcomes only, zero double executions, exactly-once on the
//! generated app's commit ledger (the observed commit count can never
//! exceed the script, and equals it on completed runs), a
//! constraint-satisfying post-recovery placement ([`RecoveryCoordinator::validate`]
//! = `validate_placement` with dead machines excluded), no instance left on
//! a dead machine after a completed run, warm-started re-solves, and
//! (statically, once) replication legality — no class is both replicable
//! and mutable-shared.
//!
//! A violating interleaving is *minimized* before reporting: drift is
//! dropped if the violation survives without it, the breaker threshold is
//! lowered to the smallest still-violating value, and the fault instant is
//! bisected toward the earliest violating tick — then emitted as a
//! replayable `coign explore … --faults-at T --thresholds F` command line.
//!
//! Everything is deterministic per `(spec, scenario, options)`: the
//! schedule grid is derived from the fault-free horizon, per-run seeds are
//! index-derived, and worker threads write into index-ordered slots, so the
//! summary is byte-identical across runs and `--jobs`.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use coign::analysis::Distribution;
use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::lint::{analyze_replication, DiagnosticSink};
use coign::multiway::{replicate_for_distribution, ReplicaRouter, ReplicationPlan};
use coign::recovery::RecoveryConfig;
use coign::runtime::{choose_distribution, profile_scenarios, run_distributed_recovering};
use coign::{Application, IccProfile};
use coign_com::{ComError, ComResult, ComRuntime, MachineId};
use coign_dcom::{
    BreakerPolicy, CallPolicy, Fault, FaultPlan, NetworkModel, NetworkProfile, TimeWindow,
};

use crate::calibration;
use crate::{GenSpec, GeneratedApp};

/// Transport seed used for every run (matches the CLI's pipeline seed so
/// explore runs are comparable with `coign run`/`chaos` output).
pub const SEED: u64 = 0x000C_0161;

/// Drift threshold used by the `--drift` interleaving axis.
const DRIFT_THRESHOLD: f64 = 0.5;

/// Exploration options (CLI flags map 1:1).
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Network model the distribution is chosen for and run over.
    pub network: NetworkModel,
    /// Display name of the network.
    pub network_name: String,
    /// Explicit fault instants (µs); overrides enumeration when set.
    pub faults_at: Option<Vec<u64>>,
    /// Enumeration depth: 128·depth instants on the fault-free horizon.
    pub depth: u32,
    /// Breaker failure thresholds to permute.
    pub thresholds: Vec<u32>,
    /// Add a drift-armed variant of every interleaving.
    pub with_drift: bool,
    /// Worker threads.
    pub jobs: usize,
    /// Master seed mixed into per-interleaving fault seeds.
    pub seed: u64,
    /// Install the lint-derived replica routing table before every run, so
    /// replica-covered machine deaths must recover by pure failover — and
    /// the invariant battery additionally enforces that no solve (warm or
    /// cold beyond the base) runs on that path.
    pub with_replicas: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            network: NetworkModel::ethernet_10baset(),
            network_name: "ethernet".to_string(),
            faults_at: None,
            depth: 2,
            thresholds: vec![1, 2, 3, 5],
            with_drift: false,
            jobs: 1,
            seed: 0,
            with_replicas: false,
        }
    }
}

/// Aggregated result of one exploration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Rendered summary (stable per seed).
    pub summary: String,
    /// Distinct interleavings checked.
    pub interleavings: usize,
    /// Invariant violations found (0 on a healthy build).
    pub violations: usize,
    /// K-S fit of the generated profile against the calibration target.
    pub calibration_fit: f64,
}

/// One point in the schedule grid.
#[derive(Debug, Clone, Copy)]
struct SchedulePoint {
    instant_us: u64,
    threshold: u32,
    drift: bool,
}

/// Per-interleaving statistics.
struct RunStats {
    outcome: &'static str,
    recoveries: u64,
    migrations: u64,
    redelivered: u64,
    replayed: u64,
    doubles: u64,
    failovers: u64,
    via_replicas: u64,
    violations: Vec<String>,
}

struct Harness {
    spec: GenSpec,
    scenario: String,
    classifier: Arc<InstanceClassifier>,
    distribution: Distribution,
    profile: IccProfile,
    network: NetworkModel,
    master_seed: u64,
    replicas: Option<ReplicaRouter>,
}

impl Harness {
    /// Runs one interleaving and evaluates every dynamic invariant.
    fn run(&self, point: SchedulePoint, index: usize) -> ComResult<RunStats> {
        // A fresh application instance isolates the commit ledger per run.
        let app = GeneratedApp::new(self.spec);
        let fork = Arc::new(self.classifier.fork());
        let mut plan = FaultPlan::none();
        plan.push(Fault::MachineDown {
            machine: MachineId::SERVER,
            window: TimeWindow::new(point.instant_us, u64::MAX),
        });
        let config = RecoveryConfig {
            breaker: BreakerPolicy {
                failure_threshold: point.threshold,
                ..BreakerPolicy::default()
            },
            drift_threshold: point.drift.then_some(DRIFT_THRESHOLD),
            replicas: self.replicas.clone(),
        };
        let fault_seed = self.master_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let run = run_distributed_recovering(
            &app,
            &self.scenario,
            &fork,
            &self.distribution,
            &self.profile,
            self.network.clone(),
            SEED,
            plan,
            CallPolicy::default(),
            fault_seed,
            config,
        )?;
        let coord = &run.coordinator;
        let mut violations = Vec::new();
        let outcome = match &run.outcome {
            Ok(()) if coord.recovery_count() > 0 => "recovered",
            Ok(()) => "ok",
            Err(ComError::Timeout { .. })
            | Err(ComError::Partitioned { .. })
            | Err(ComError::MachineDown(_)) => "failed",
            Err(other) => {
                violations.push(format!("untyped failure: {other}"));
                "failed"
            }
        };
        if coord.double_executions() != 0 {
            violations.push(format!(
                "{} double-executed call(s)",
                coord.double_executions()
            ));
        }
        if let Err(detail) = coord.validate() {
            violations.push(format!("placement: {detail}"));
        }
        let events = coord.events();
        let via_replicas = events.iter().filter(|e| e.via_replicas).count() as u64;
        if coord.recovery_count() > 0 {
            let solver_recoveries = events.len() as u64 - via_replicas;
            if solver_recoveries > 0 && coord.warm_solves() == 0 {
                violations.push("recovery re-solve was not warm-started".to_string());
            }
            if solver_recoveries == 0 && coord.warm_solves() != 0 {
                violations.push(format!(
                    "{} warm solve(s) despite replica-covered failover",
                    coord.warm_solves()
                ));
            }
            if coord.cold_solves() != 1 {
                violations.push(format!(
                    "{} cold solve(s), expected exactly the base solve",
                    coord.cold_solves()
                ));
            }
        }
        // A no-solve failover re-points calls; it never moves state.
        for event in events.iter().filter(|e| e.via_replicas) {
            if event.migrations != 0 {
                violations.push(format!(
                    "replica failover migrated {} instance(s)",
                    event.migrations
                ));
            }
            if event.failovers == 0 {
                violations.push("via_replicas recovery re-pointed nothing".to_string());
            }
        }
        // Exactly-once at the application level: the ledger can never see
        // more commits than the scenario scripts, and a completed run sees
        // exactly that many.
        let expected = app.expected_commits(&self.scenario);
        let observed = app.ledger_commits();
        if observed > expected {
            violations.push(format!(
                "ledger over-commit: observed {observed} > scripted {expected}"
            ));
        }
        if run.outcome.is_ok() && observed != expected {
            violations.push(format!(
                "completed run lost commits: observed {observed} != scripted {expected}"
            ));
        }
        // A completed run leaves no instance on a machine declared dead.
        if run.outcome.is_ok() {
            for machine in coord.dead_machines() {
                let stranded = run
                    .report
                    .instance_placements
                    .iter()
                    .filter(|(_, m)| *m == machine)
                    .count();
                if stranded > 0 {
                    violations.push(format!(
                        "{stranded} instance(s) left on dead machine {machine}"
                    ));
                }
            }
        }
        Ok(RunStats {
            outcome,
            recoveries: coord.recovery_count(),
            migrations: coord.migration_count(),
            redelivered: coord.redelivered_calls(),
            replayed: coord.replayed_completions(),
            doubles: coord.double_executions(),
            failovers: coord.replica_failovers(),
            via_replicas,
            violations,
        })
    }

    /// True when the point still violates some invariant (used by the
    /// minimizer; a transport-level error counts as non-violating — the
    /// run itself is the subject, not the harness).
    fn violates(&self, point: SchedulePoint) -> bool {
        self.run(point, usize::MAX / 2)
            .map(|stats| !stats.violations.is_empty())
            .unwrap_or(false)
    }

    /// Shrinks a violating point: drop drift, lower the threshold, then
    /// bisect the instant toward the earliest violating tick.
    fn minimize(&self, mut point: SchedulePoint, thresholds: &[u32]) -> SchedulePoint {
        if point.drift {
            let without = SchedulePoint {
                drift: false,
                ..point
            };
            if self.violates(without) {
                point = without;
            }
        }
        let mut sorted = thresholds.to_vec();
        sorted.sort_unstable();
        for &threshold in &sorted {
            if threshold >= point.threshold {
                break;
            }
            let lowered = SchedulePoint { threshold, ..point };
            if self.violates(lowered) {
                point = lowered;
                break;
            }
        }
        let (mut lo, mut hi) = (0u64, point.instant_us);
        for _ in 0..10 {
            if hi <= lo + 1 {
                break;
            }
            let mid = lo + (hi - lo) / 2;
            if self.violates(SchedulePoint {
                instant_us: mid,
                ..point
            }) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        point.instant_us = hi;
        point
    }
}

/// Builds the instant grid: explicit instants, or 128·depth points spread
/// evenly across the middle three quarters of the fault-free horizon
/// (faults before any remote call or after the last one are uninteresting).
fn instant_grid(faults_at: &Option<Vec<u64>>, depth: u32, horizon_us: u64) -> Vec<u64> {
    let set: BTreeSet<u64> = match faults_at {
        Some(list) => list.iter().copied().collect(),
        None => {
            let count = 128u64 * depth.max(1) as u64;
            let lo = horizon_us / 8;
            let hi = horizon_us.saturating_sub(horizon_us / 8).max(lo + 1);
            (0..count)
                .map(|i| lo + (hi - lo).saturating_mul(i) / count.max(1))
                .collect()
        }
    };
    set.into_iter().collect()
}

/// Explores the schedule space of one scenario of a generated application.
///
/// Returns `Err(ComError::App(summary))` when any interleaving violates an
/// invariant (the summary then carries minimized, replayable schedules).
pub fn explore(spec: GenSpec, scenario: &str, opts: &ExploreOptions) -> ComResult<ExploreReport> {
    let app = GeneratedApp::new(spec);
    if !app.scenarios().contains(&scenario) {
        return Err(ComError::App(format!(
            "{} has no scenario {scenario:?} (has: {})",
            app.name(),
            app.scenarios().join(" ")
        )));
    }
    // Profile every scenario once: the accumulated profile both drives the
    // placement and measures calibration fit.
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let scenario_names = app.scenarios();
    let profile = profile_scenarios(&app, &scenario_names, &classifier)?;
    let fit = calibration::ks_distance(&calibration::bucket_histogram(&profile));
    let net_profile = NetworkProfile::exact(&opts.network);
    let distribution = choose_distribution(&app, &profile, &net_profile)?;

    // Static invariant: replication legality. A class the sharing analysis
    // proves replicable must never also be mutable-shared.
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let mut sink = DiagnosticSink::new();
    let replication = analyze_replication(rt.registry(), &mut sink);
    let illegal: Vec<&String> = replication
        .replicable
        .iter()
        .filter(|class| replication.mutable_shared.contains(class))
        .collect();

    // The replica routing table every interleaving runs under (empty
    // unless asked for, or when no legal copy pays for itself).
    let replicas = if opts.with_replicas {
        let machines = distribution
            .placement
            .values()
            .map(|m| m.0 as usize + 1)
            .max()
            .unwrap_or(2)
            .max(2);
        let plan = ReplicationPlan::from_report(&replication, &profile, rt.registry());
        let chosen =
            replicate_for_distribution(&profile, &net_profile, &distribution, machines, &plan, &[]);
        (!chosen.is_empty()).then(|| ReplicaRouter::new(&distribution, &chosen))
    } else {
        None
    };

    let harness = Harness {
        spec,
        scenario: scenario.to_string(),
        classifier,
        distribution,
        profile,
        network: opts.network.clone(),
        master_seed: opts.seed,
        replicas,
    };

    // Fault-free probe fixes the horizon and proves the scenario healthy.
    let probe = harness.run(
        SchedulePoint {
            instant_us: u64::MAX,
            threshold: 3,
            drift: false,
        },
        usize::MAX / 2,
    )?;
    if probe.outcome != "ok" || !probe.violations.is_empty() {
        return Err(ComError::App(format!(
            "fault-free probe unhealthy: outcome={} violations={:?}",
            probe.outcome, probe.violations
        )));
    }
    let probe_app = GeneratedApp::new(spec);
    let probe_run = run_distributed_recovering(
        &probe_app,
        scenario,
        &Arc::new(harness.classifier.fork()),
        &harness.distribution,
        &harness.profile,
        harness.network.clone(),
        SEED,
        FaultPlan::none(),
        CallPolicy::default(),
        0,
        RecoveryConfig::default(),
    )?;
    probe_run.outcome?;
    let horizon_us = probe_run.report.clock_us.max(1);

    let instants = instant_grid(&opts.faults_at, opts.depth, horizon_us);
    let mut thresholds = opts.thresholds.clone();
    if thresholds.is_empty() {
        thresholds.push(3);
    }
    let drift_modes: &[bool] = if opts.with_drift {
        &[false, true]
    } else {
        &[false]
    };
    let mut schedule = Vec::new();
    for &instant_us in &instants {
        for &threshold in &thresholds {
            for &drift in drift_modes {
                schedule.push(SchedulePoint {
                    instant_us,
                    threshold,
                    drift,
                });
            }
        }
    }

    // Index-ordered slots keep the summary byte-identical across --jobs.
    let jobs = opts.jobs.max(1).min(schedule.len().max(1));
    let slots: Vec<std::sync::Mutex<Option<ComResult<RunStats>>>> = (0..schedule.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= schedule.len() {
                    break;
                }
                let stats = harness.run(schedule[i], i);
                *slots[i].lock().expect("explore slot") = Some(stats);
            });
        }
    });

    let (mut ok, mut recovered, mut failed) = (0usize, 0usize, 0usize);
    let (mut recoveries, mut migrations) = (0u64, 0u64);
    let (mut redelivered, mut replayed, mut doubles) = (0u64, 0u64, 0u64);
    let (mut failovers, mut via_replicas) = (0u64, 0u64);
    let mut violating: Vec<(SchedulePoint, Vec<String>)> = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let stats = slot
            .into_inner()
            .expect("explore slot lock")
            .expect("explore worker exited without reporting")?;
        match stats.outcome {
            "ok" => ok += 1,
            "recovered" => recovered += 1,
            _ => failed += 1,
        }
        recoveries += stats.recoveries;
        migrations += stats.migrations;
        redelivered += stats.redelivered;
        replayed += stats.replayed;
        doubles += stats.doubles;
        failovers += stats.failovers;
        via_replicas += stats.via_replicas;
        if !stats.violations.is_empty() {
            violating.push((schedule[i], stats.violations));
        }
    }

    let mut out = format!(
        "explore app={} scenario={scenario} network={} seed={}\n",
        app.name(),
        opts.network_name,
        opts.seed
    );
    out.push_str(&format!(
        "calibration: ks={fit:.3} tolerance={:.3}\n",
        calibration::KS_TOLERANCE
    ));
    if illegal.is_empty() {
        out.push_str(&format!(
            "replication: legal ({} replicable, {} mutable-shared, disjoint)\n",
            replication.replicable.len(),
            replication.mutable_shared.len()
        ));
    } else {
        out.push_str(&format!(
            "replication: {} ILLEGAL class(es): {}\n",
            illegal.len(),
            illegal
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out.push_str(&format!(
        "horizon: {horizon_us} us; schedule: {} instant(s) x {} threshold(s) x {} drift mode(s) \
         = {} interleaving(s)\n",
        instants.len(),
        thresholds.len(),
        drift_modes.len(),
        schedule.len()
    ));
    out.push_str(&format!(
        "outcomes: ok={ok} recovered={recovered} failed={failed}\n"
    ));
    out.push_str(&format!(
        "recoveries={recoveries} migrations={migrations} redelivered={redelivered} \
         replayed={replayed} double={doubles}\n"
    ));
    if opts.with_replicas {
        out.push_str(&format!(
            "failover: routed={} failovers={failovers} via_replicas={via_replicas}\n",
            match &harness.replicas {
                Some(router) => format!("{} class(es)", router.replicated_class_count()),
                None => "none".to_string(),
            },
        ));
    }
    out.push_str(&format!(
        "ledger: {} commit(s) scripted per completed {scenario} run; exact on every completed run\n",
        app.expected_commits(scenario)
    ));

    let violation_count = violating.iter().map(|(_, v)| v.len()).sum::<usize>() + illegal.len();
    if violation_count == 0 {
        out.push_str(&format!(
            "invariants: ok (0 violation(s) over {} interleaving(s))\n",
            schedule.len()
        ));
        return Ok(ExploreReport {
            summary: out,
            interleavings: schedule.len(),
            violations: 0,
            calibration_fit: fit,
        });
    }

    out.push_str(&format!("invariants: {violation_count} VIOLATION(S)\n"));
    for (point, violations) in violating.iter().take(5) {
        for violation in violations {
            out.push_str(&format!(
                "  [t={} threshold={} drift={}] {violation}\n",
                point.instant_us,
                point.threshold,
                if point.drift { "on" } else { "off" }
            ));
        }
        let min = harness.minimize(*point, &thresholds);
        out.push_str(&format!(
            "  minimized replay: coign explore gen:{}:{} {scenario} {} --faults-at {} \
             --thresholds {}{} --seed {}\n",
            spec.seed,
            spec.size.name(),
            opts.network_name,
            min.instant_us,
            min.threshold,
            if min.drift { " --drift" } else { "" },
            opts.seed
        ));
    }
    if violating.len() > 5 {
        out.push_str(&format!(
            "  ... and {} more violating interleaving(s)\n",
            violating.len() - 5
        ));
    }
    Err(ComError::App(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenSize;

    #[test]
    fn instant_grid_is_deduped_and_sized() {
        let grid = instant_grid(&None, 2, 1_000_000);
        assert_eq!(grid.len(), 256);
        let explicit = instant_grid(&Some(vec![30, 10, 30, 20]), 2, 1_000_000);
        assert_eq!(explicit, vec![10, 20, 30]);
    }

    #[test]
    fn replicated_exploration_holds_the_failover_invariants() {
        let opts = ExploreOptions {
            faults_at: Some(vec![5_000, 15_000, 30_000]),
            thresholds: vec![1, 3],
            with_replicas: true,
            jobs: 2,
            ..ExploreOptions::default()
        };
        let report = explore(GenSpec::new(3, GenSize::Small), "g_main", &opts).unwrap();
        assert_eq!(report.violations, 0);
        assert_eq!(report.interleavings, 6);
        assert!(
            report.summary.contains("failover: routed="),
            "{}",
            report.summary
        );
        // Byte-identical across --jobs, replicas installed or not.
        let sequential = explore(
            GenSpec::new(3, GenSize::Small),
            "g_main",
            &ExploreOptions { jobs: 1, ..opts },
        )
        .unwrap();
        assert_eq!(report.summary, sequential.summary);
    }

    #[test]
    fn rejects_unknown_scenarios() {
        let err = explore(
            GenSpec::new(1, GenSize::Small),
            "nope",
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no scenario"));
    }
}
