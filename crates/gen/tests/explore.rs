//! Schedule-space exploration acceptance tests.
//!
//! The headline guarantee (ISSUE 7): on a small generated application,
//! `explore` enumerates >= 1000 distinct interleavings around a
//! machine-death epoch with zero exactly-once / placement invariant
//! violations — deterministically per seed and across `--jobs`.

use coign_gen::explore::{explore, ExploreOptions};
use coign_gen::{GenSize, GenSpec};

#[test]
fn small_schedule_is_deterministic_across_jobs() {
    let spec = GenSpec::new(42, GenSize::Small);
    let opts = |jobs| ExploreOptions {
        faults_at: Some(vec![4_000, 9_000, 14_000, 21_000]),
        thresholds: vec![1, 3],
        jobs,
        ..ExploreOptions::default()
    };
    let one = explore(spec, "g_main", &opts(1)).expect("jobs=1");
    let four = explore(spec, "g_main", &opts(4)).expect("jobs=4");
    assert_eq!(one.summary, four.summary);
    assert_eq!(one.interleavings, 8);
    assert_eq!(one.violations, 0);
    let again = explore(spec, "g_main", &opts(4)).expect("repeat");
    assert_eq!(one.summary, again.summary);
}

#[test]
fn acceptance_thousand_interleavings_zero_violations() {
    let spec = GenSpec::new(7, GenSize::Small);
    let opts = ExploreOptions {
        jobs: 4,
        ..ExploreOptions::default()
    };
    let report = explore(spec, "g_main", &opts).expect("explore must be violation-free");
    assert!(
        report.interleavings >= 1000,
        "only {} interleavings",
        report.interleavings
    );
    assert_eq!(report.violations, 0);
    assert!(
        report.summary.contains("invariants: ok"),
        "{}",
        report.summary
    );
    // Schedules actually hit the recovery machinery, not just clean runs.
    assert!(report.summary.contains("recovered="), "{}", report.summary);
    let recovered: usize = report
        .summary
        .lines()
        .find(|l| l.starts_with("outcomes:"))
        .and_then(|l| {
            l.split_whitespace()
                .find_map(|tok| tok.strip_prefix("recovered=").and_then(|v| v.parse().ok()))
        })
        .expect("outcomes line");
    assert!(
        recovered > 0,
        "no interleaving recovered:\n{}",
        report.summary
    );
}
