//! Calibration goodness-of-fit: ICC size histograms of *profiled*
//! generated applications must land inside the paper's 64·2^k bucket
//! envelope.
//!
//! Tolerances (documented in `coign_gen::calibration`): the K-S sup-norm
//! between the observed bucket CDF and `TARGET_BUCKET_PROBS` must be at
//! most `KS_TOLERANCE` (0.15). The slack covers request/reply header
//! messages, marshaling overhead near bucket boundaries, and structural
//! GUI chatter — see the module docs for the full accounting.

use std::sync::Arc;

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::profile_scenarios;
use coign::Application;
use coign_gen::calibration::{bucket_histogram, ks_distance, KS_TOLERANCE, TARGET_BUCKET_PROBS};
use coign_gen::{GenSize, GenSpec, GeneratedApp};

fn fit_for(seed: u64, size: GenSize) -> f64 {
    let app = GeneratedApp::new(GenSpec::new(seed, size));
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let scenarios = app.scenarios();
    let profile = profile_scenarios(&app, &scenarios, &classifier).expect("profile");
    let hist = bucket_histogram(&profile);
    assert!(hist.iter().sum::<u64>() > 0, "empty profile");
    ks_distance(&hist)
}

#[test]
fn medium_seeds_fit_the_envelope() {
    for seed in [1u64, 7, 13, 42] {
        let fit = fit_for(seed, GenSize::Medium);
        assert!(
            fit <= KS_TOLERANCE,
            "seed {seed}: K-S {fit:.4} exceeds tolerance {KS_TOLERANCE}"
        );
    }
}

#[test]
fn large_seed_fits_the_envelope() {
    let fit = fit_for(5, GenSize::Large);
    assert!(
        fit <= KS_TOLERANCE,
        "large seed 5: K-S {fit:.4} exceeds tolerance {KS_TOLERANCE}"
    );
}

#[test]
fn tail_buckets_are_populated() {
    // The envelope has a heavy tail (content pages up to 128 KiB); the
    // generated traffic must actually reach it, not just fit the head.
    let app = GeneratedApp::new(GenSpec::new(7, GenSize::Medium));
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let scenarios = app.scenarios();
    let profile = profile_scenarios(&app, &scenarios, &classifier).expect("profile");
    let hist = bucket_histogram(&profile);
    let tail: u64 = hist[7..].iter().sum();
    assert!(tail > 0, "no messages beyond 8 KiB: {hist:?}");
    // And nothing escapes the documented 12-bucket envelope by more than
    // the one-bucket marshaling-overhead allowance.
    let beyond: u64 = hist[TARGET_BUCKET_PROBS.len() + 1..].iter().sum();
    assert_eq!(beyond, 0, "messages beyond the envelope: {hist:?}");
}
