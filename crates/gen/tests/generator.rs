//! Property tests over the generator: 100 seeds of instrumented images
//! pass `coign check` with zero COIGN0xx *errors* (warnings are fine —
//! generated apps deliberately carry non-remotable interfaces and partially
//! annotated metadata, the same hazards the hand-built apps have), and
//! generation is byte-identical per seed — both at the image level and
//! through the parallel profiling path (`--jobs`).

use std::sync::Arc;

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::lint::check_app_image;
use coign::runtime::{profile_scenarios, profile_scenarios_parallel};
use coign::{rewriter, Application};
use coign_gen::{app_for_name, GenSize, GenSpec, GeneratedApp};

fn size_for(seed: u64) -> GenSize {
    // Cycle all three size classes across the 100-seed sweep.
    match seed % 3 {
        0 => GenSize::Small,
        1 => GenSize::Medium,
        _ => GenSize::Large,
    }
}

#[test]
fn hundred_seeds_check_clean() {
    for seed in 0..100u64 {
        let app = GeneratedApp::new(GenSpec::new(seed, size_for(seed)));
        let mut image = app.image();
        rewriter::instrument(&mut image, &InstanceClassifier::new(ClassifierKind::Ifcb));
        let sink = check_app_image(&image, &app);
        assert!(
            !sink.has_errors(),
            "seed {seed} ({}) has check errors:\n{}",
            app.name(),
            sink.render_human()
        );
    }
}

#[test]
fn generation_is_byte_identical_per_seed() {
    for seed in [0u64, 7, 42, 99] {
        let spec = GenSpec::new(seed, size_for(seed));
        let a = GeneratedApp::new(spec);
        let b = GeneratedApp::new(spec);
        assert_eq!(
            a.image().encode(),
            b.image().encode(),
            "seed {seed} image differs between generations"
        );
        assert_eq!(a.summary(true), b.summary(true));
        assert_eq!(a.summary(false), b.summary(false));
        // The resolver path produces the same application again.
        let resolved = app_for_name(&spec.image_name()).expect("resolves");
        assert_eq!(resolved.image().encode(), a.image().encode());
        assert_eq!(
            resolved.explicit_constraints().len(),
            a.explicit_constraints().len()
        );
    }
}

#[test]
fn profiles_are_byte_identical_across_jobs() {
    for seed in [3u64, 16] {
        let spec = GenSpec::new(seed, GenSize::Small);
        let app = GeneratedApp::new(spec);
        let scenarios = app.scenarios();

        let sequential = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let base = profile_scenarios(&app, &scenarios, &sequential).expect("sequential profile");

        for jobs in [1usize, 4] {
            let fresh = GeneratedApp::new(spec);
            let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
            let profile = profile_scenarios_parallel(&fresh, &scenarios, &classifier, jobs)
                .expect("parallel profile");
            assert_eq!(
                profile.encode(),
                base.encode(),
                "seed {seed}: profile differs at --jobs {jobs}"
            );
        }
    }
}

#[test]
fn distinct_seeds_yield_distinct_topologies() {
    let mut images = std::collections::HashSet::new();
    for seed in 0..25u64 {
        let app = GeneratedApp::new(GenSpec::new(seed, GenSize::Medium));
        images.insert(app.image().encode());
    }
    // Different seeds must not collapse onto a handful of shapes.
    assert!(
        images.len() >= 24,
        "only {} distinct images across 25 seeds",
        images.len()
    );
}
