//! Instance classification in action (§3.4, Figure 3, Table 2).
//!
//! Profiles Octarine with every classifier and shows how each trades
//! granularity (distinct classifications) against overhead, plus how the
//! stack-walk depth tunes the internal-function called-by classifier.
//!
//! Run with: `cargo run --release --example classifier_demo`

use coign::application::Application;
use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::logger::ProfilingLogger;
use coign::rte::CoignRte;
use coign_apps::Octarine;
use coign_com::ComRuntime;
use std::sync::Arc;

fn classify_scenario(kind: ClassifierKind, depth: Option<usize>) -> (u32, u64) {
    let app = Octarine;
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let classifier = Arc::new(InstanceClassifier::with_depth(kind, depth));
    rt.add_hook(Arc::new(CoignRte::profiling(
        classifier.clone(),
        Arc::new(ProfilingLogger::new()),
    )));
    app.run_scenario(&rt, "o_oldbth").expect("scenario");
    let stats = classifier.stats();
    (stats.classifications, stats.instances)
}

fn main() {
    println!("Classifying one Octarine execution (o_oldbth):\n");
    println!(
        "{:<28} {:>16} {:>12}",
        "classifier", "classifications", "instances"
    );
    for kind in ClassifierKind::ALL {
        let (classes, instances) = classify_scenario(kind, None);
        println!("{:<28} {:>16} {:>12}", kind.name(), classes, instances);
    }

    println!("\nIFCB granularity as a function of stack-walk depth:\n");
    println!("{:<10} {:>16}", "depth", "classifications");
    for depth in [Some(1), Some(2), Some(3), Some(4), Some(8), None] {
        let (classes, _) = classify_scenario(ClassifierKind::Ifcb, depth);
        let label = depth.map(|d| d.to_string()).unwrap_or("complete".into());
        println!("{label:<10} {classes:>16}");
    }
    println!();
    println!("Deeper walks recognize more unique instantiation contexts; accuracy");
    println!("saturates once the distinguishing frames are within reach (Table 3).");
    println!("Run `cargo run -p coign-bench --bin fig3` for the paper's worked");
    println!("descriptor example, and `--bin table2` for the accuracy evaluation.");
}
