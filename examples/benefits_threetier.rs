//! Corporate Benefits: Coign improves a distribution designed by
//! experienced client/server programmers (§4.3, Figure 6).
//!
//! The programmer split the application cleanly: Visual Basic forms on the
//! client, all business logic on the middle tier. Coign discovers that the
//! result-caching components talk overwhelmingly to the client and moves
//! them there — without touching the business logic or the database
//! boundary.
//!
//! Run with: `cargo run --release --example benefits_threetier`

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario, run_default, run_distributed};
use coign_apps::Benefits;
use coign_com::{ComRuntime, MachineId};
use coign_dcom::{NetworkModel, NetworkProfile};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let app = Benefits::default();
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 40, 7);
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(&app, "b_bigone", &classifier).expect("profile");
    let dist = choose_distribution(&app, &run.profile, &network).expect("analyze");

    let programmer = run_default(&app, "b_bigone", NetworkModel::ethernet_10baset(), 3)
        .expect("programmer distribution");
    let coign = run_distributed(
        &app,
        "b_bigone",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        3,
    )
    .expect("coign distribution");

    // Which classes moved?
    let rt = ComRuntime::single_machine();
    use coign::application::Application;
    app.register(&rt);
    let count_by_class = |placements: &[(coign_com::Clsid, MachineId)], side: MachineId| {
        let mut map: BTreeMap<String, usize> = BTreeMap::new();
        for (clsid, machine) in placements {
            if *machine == side {
                let name = rt
                    .registry()
                    .get(*clsid)
                    .map(|d| d.name.clone())
                    .unwrap_or_default();
                *map.entry(name).or_insert(0) += 1;
            }
        }
        map
    };
    let programmer_client = count_by_class(&programmer.instance_placements, MachineId::CLIENT);
    let coign_client = count_by_class(&coign.instance_placements, MachineId::CLIENT);

    println!("Programmer's client side: {programmer_client:?}");
    println!("Coign's client side:      {coign_client:?}");
    println!();
    println!(
        "communication: programmer {:.3} s -> Coign {:.3} s ({:.0}% less)",
        programmer.comm_secs(),
        coign.comm_secs(),
        100.0 * (programmer.stats.comm_us.saturating_sub(coign.stats.comm_us)) as f64
            / programmer.stats.comm_us.max(1) as f64
    );
    println!();
    println!("The moved components are exactly the result caches — the business");
    println!("logic (managers, records, validators) and the ODBC driver stay on the");
    println!("middle tier, so the application's security structure is preserved.");

    let moved: usize = coign_client.get("BenResultCache").copied().unwrap_or(0);
    assert!(moved > 0, "the caches should move to the client");
    assert!(
        !coign_client.contains_key("BenOdbcDriver"),
        "the database boundary must stay put"
    );
}
