//! PhotoDraw: how non-remotable interfaces constrain distribution (§4.3,
//! Figure 4).
//!
//! The sprite caches pass pixels through shared-memory regions — opaque
//! pointers the standard marshaler cannot transfer — so most of the
//! application is pinned together on the client. Only the file reader and
//! the seven property sets can usefully move. This example shows both the
//! chosen distribution and what happens if a constraint-violating placement
//! is attempted by hand.
//!
//! Run with: `cargo run --release --example photodraw_constraints`

use coign::analysis::Distribution;
use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario, run_distributed};
use coign_apps::PhotoDraw;
use coign_com::MachineId;
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

fn main() {
    let app = PhotoDraw;
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 40, 7);
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(&app, "p_oldmsr", &classifier).expect("profile");

    println!(
        "profiling p_oldmsr: {} non-remotable interface pair(s) observed",
        run.profile.non_remotable.len()
    );

    let dist = choose_distribution(&app, &run.profile, &network).expect("analyze");
    println!(
        "Coign's distribution: {} classifications on the server",
        dist.count_on(MachineId::SERVER)
    );

    let report = run_distributed(
        &app,
        "p_oldmsr",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        5,
    )
    .expect("distributed run");
    println!(
        "distributed run succeeds: {} of {} instances on the server, {:.2} s communication",
        report.server_instances(),
        report.total_instances(),
        report.comm_secs()
    );

    // Now sabotage the distribution: put the sprite caches on the server
    // while the canvas they blit into stays on the client. Their
    // shared-memory interface must then cross the machine boundary, and the
    // lightweight runtime refuses to marshal it.
    let sprite_clsid = coign_com::Clsid::from_name("PdSpriteCache");
    let sabotaged = Distribution {
        placement: run
            .profile
            .class_of
            .iter()
            .map(|(&class, &clsid)| {
                let machine = if clsid == sprite_clsid {
                    MachineId::SERVER
                } else {
                    MachineId::CLIENT
                };
                (class, machine)
            })
            .collect(),
        predicted_comm_us: 0.0,
        network_name: dist.network_name.clone(),
    };
    let classifier2 = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    profile_scenario(&app, "p_oldmsr", &classifier2).expect("re-profile");
    match run_distributed(
        &app,
        "p_oldmsr",
        &classifier2,
        &sabotaged,
        NetworkModel::ethernet_10baset(),
        5,
    ) {
        Ok(_) => println!("unexpected: the sabotaged distribution ran"),
        Err(e) => {
            println!("\nsplitting the sprite caches from their canvas fails, as it must:");
            println!("  {e}");
        }
    }
    println!("\nThe analysis engine never produces such a distribution: non-remotable");
    println!("pairs carry infinite capacity in the cut graph, so they are never severed.");
}
