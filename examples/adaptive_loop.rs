//! The fully automatic optimization loop of the paper's §6.
//!
//! "In the future, Coign could automatically decide when usage differs
//! significantly from profiled scenarios and silently enable profiling to
//! re-optimize the distribution. The Coign runtime already contains
//! sufficient infrastructure…"
//!
//! This example closes the loop: the application ships optimized for small
//! text documents; the user's workload shifts to giant tables; the
//! lightweight runtime's message counters notice; profiling silently
//! re-runs; the distribution is re-cut; communication collapses.
//!
//! Run with: `cargo run --release --example adaptive_loop`

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario, run_distributed_monitored};
use coign_apps::Octarine;
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

const DRIFT_THRESHOLD: f64 = 0.15;

fn main() {
    let app = Octarine;
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 40, 7);
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));

    // Day 1: the application is profiled on the user's then-current work —
    // small text documents — and distributed accordingly.
    let mut baseline = profile_scenario(&app, "o_oldwp0", &classifier)
        .expect("initial profiling")
        .profile;
    let mut distribution =
        choose_distribution(&app, &baseline, &network).expect("initial analysis");
    println!("day 1: optimized for small text documents");

    // Days 2..: the user's workload shifts. Each execution runs under the
    // current distribution with cheap message counting.
    for (day, scenario) in [(2, "o_oldwp0"), (3, "o_oldtb3"), (4, "o_oldtb3")] {
        let (report, monitor) = run_distributed_monitored(
            &app,
            scenario,
            &classifier,
            &distribution,
            &baseline,
            NetworkModel::ethernet_10baset(),
            day,
        )
        .expect("distributed run");
        let drift = monitor.drift();
        println!(
            "day {day}: ran {scenario:>9}, communication {:.3} s, usage drift {:.2}",
            report.comm_secs(),
            drift
        );
        if monitor.should_reprofile(DRIFT_THRESHOLD) {
            // Silently re-profile on the observed workload and re-cut.
            println!("        drift over {DRIFT_THRESHOLD}: re-profiling silently…");
            baseline = profile_scenario(&app, scenario, &classifier)
                .expect("re-profiling")
                .profile;
            distribution = choose_distribution(&app, &baseline, &network).expect("re-analysis");
            let (fresh, _) = run_distributed_monitored(
                &app,
                scenario,
                &classifier,
                &distribution,
                &baseline,
                NetworkModel::ethernet_10baset(),
                day + 100,
            )
            .expect("re-run");
            println!(
                "        re-optimized: communication now {:.3} s",
                fresh.comm_secs()
            );
        }
    }
    println!();
    println!("The user never saw a dialog: the runtime noticed the workload change,");
    println!("re-profiled, re-cut the graph, and rewrote its own configuration record.");
}
