//! Repartitioning for different networks (§4.4).
//!
//! "Changes in underlying network, from ISDN to 100BaseT to ATM to SAN,
//! strain static distributions as bandwidth-to-latency tradeoffs change by
//! more than an order of magnitude." Coign can repartition arbitrarily
//! often — in the limit, once per execution. This example partitions the
//! same Octarine profile for four networks and shows how the chosen
//! distribution shifts.
//!
//! Run with: `cargo run --release --example network_adaptation`

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario, run_distributed};
use coign_apps::Octarine;
use coign_com::MachineId;
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

fn main() {
    let app = Octarine;
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    // One profile, many networks: the abstract ICC graph is network-
    // independent; only the concretization changes.
    let run = profile_scenario(&app, "o_fig5", &classifier).expect("profile");

    println!("Octarine, 35-page text document, partitioned for four networks:\n");
    println!(
        "{:<18} {:>14} {:>16} {:>16}",
        "network", "server classes", "predicted comm", "measured comm"
    );
    for network in [
        NetworkModel::isdn(),
        NetworkModel::ethernet_10baset(),
        NetworkModel::atm155(),
        NetworkModel::san(),
    ] {
        let profile = NetworkProfile::measure(&network, 40, 7);
        let dist = choose_distribution(&app, &run.profile, &profile).expect("analyze");
        let report = run_distributed(&app, "o_fig5", &classifier, &dist, network.clone(), 11)
            .expect("distributed run");
        println!(
            "{:<18} {:>14} {:>13.3} s {:>13.3} s",
            network.name,
            dist.count_on(MachineId::SERVER),
            dist.predicted_comm_us / 1e6,
            report.comm_secs(),
        );
    }
    println!();
    println!("On slow links the cut is conservative; as latency and serialization");
    println!("costs fall, more of the document pipeline can afford to live on the");
    println!("server. The application binary never changes — only the configuration");
    println!("record written by the rewriter.");
}
