//! Octarine: one application, three radically different optimal
//! distributions depending on the user's document mix (§4.4, Figures 5/7/8).
//!
//! Run with: `cargo run --release --example octarine_documents`

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario, run_default, run_distributed};
use coign_apps::Octarine;
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

fn main() {
    let app = Octarine;
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 40, 7);
    println!("Octarine under different document mixes (10BaseT Ethernet):\n");
    println!(
        "{:<10} {:>9} {:>8} {:>12} {:>12} {:>9}",
        "scenario", "instances", "server", "default(s)", "coign(s)", "savings"
    );
    for (scenario, label) in [
        ("o_oldwp0", "5-page text"),
        ("o_fig5", "35-page text"),
        ("o_oldwp7", "208-page text"),
        ("o_oldtb0", "5-page table"),
        ("o_oldtb3", "150-page table"),
        ("o_oldbth", "text + 11 tables"),
    ] {
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let run = profile_scenario(&app, scenario, &classifier).expect("profile");
        let dist = choose_distribution(&app, &run.profile, &network).expect("analyze");
        let default =
            run_default(&app, scenario, NetworkModel::ethernet_10baset(), 1).expect("default run");
        let coign = run_distributed(
            &app,
            scenario,
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            1,
        )
        .expect("distributed run");
        let savings = if default.stats.comm_us > 0 {
            100.0 * (default.stats.comm_us.saturating_sub(coign.stats.comm_us)) as f64
                / default.stats.comm_us as f64
        } else {
            0.0
        };
        println!(
            "{:<10} {:>9} {:>8} {:>12.3} {:>12.3} {:>8.0}%   ({label})",
            scenario,
            coign.total_instances(),
            coign.server_instances(),
            default.comm_secs(),
            coign.comm_secs(),
            savings,
        );
    }
    println!();
    println!("Small text documents stay whole; big ones send the reader and the");
    println!("text-properties component to the server; embedded tables move the whole");
    println!("page-placement negotiation cluster. No source code was modified —");
    println!("the same binary serves every distribution.");
}
