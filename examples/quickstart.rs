//! Quickstart: the complete Coign pipeline on a small application.
//!
//! Mirrors the paper's Figure 1: take an application binary, instrument it
//! with the binary rewriter, profile it through a usage scenario, analyze
//! the profile against a measured network, write the chosen distribution
//! back into the binary, and run the application distributed.
//!
//! Run with: `cargo run --example quickstart`

use coign::analysis::Distribution;
use coign::application::Application;
use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::rewriter;
use coign::runtime::{choose_distribution, profile_scenario, run_distributed};
use coign_com::idl::InterfaceBuilder;
use coign_com::{
    ApiImports, AppImage, CallCtx, Clsid, ComObject, ComResult, ComRuntime, Iid, MachineId,
    Message, PType, Value,
};
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

/// A tiny mail client: a GUI shell asks an index component for headers;
/// the index reads a storage-pinned mailbox file.
struct MailApp;

struct Shell;
impl ComObject for Shell {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        ctx.compute(100);
        let index = ctx.create(Clsid::from_name("MailIndex"), Iid::from_name("IMailIndex"))?;
        // Ask for the 50 newest headers, one at a time (a chatty pattern).
        let mut shown = 0;
        for i in 0..50 {
            let mut q = Message::new(vec![Value::I4(i), Value::Null]);
            index.call(ctx.rt(), 1, &mut q)?;
            shown += 1;
        }
        msg.set(0, Value::I4(shown));
        Ok(())
    }
}

struct MailIndex;
impl ComObject for MailIndex {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        match method {
            0 => Ok(()),
            _ => {
                // First call scans the whole mailbox from storage.
                let mailbox =
                    ctx.create(Clsid::from_name("Mailbox"), Iid::from_name("IMailbox"))?;
                let mut scan = Message::outputs(1);
                mailbox.call(ctx.rt(), 0, &mut scan)?;
                ctx.compute(30);
                msg.set(1, Value::Blob(180)); // one header
                Ok(())
            }
        }
    }
}

struct Mailbox;
impl ComObject for Mailbox {
    fn invoke(
        &self,
        ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        msg: &mut Message,
    ) -> ComResult<()> {
        ctx.compute(50);
        msg.set(0, Value::Blob(64_000)); // a mailbox segment
        Ok(())
    }
}

impl Application for MailApp {
    fn name(&self) -> &str {
        "mailapp"
    }
    fn register(&self, rt: &ComRuntime) {
        let ishell = InterfaceBuilder::new("IMailShell")
            .method("Run", |m| m.output("shown", PType::I4))
            .build();
        let iindex = InterfaceBuilder::new("IMailIndex")
            .method("Open", |m| m)
            .method("Header", |m| {
                m.input("i", PType::I4).output("hdr", PType::Blob)
            })
            .build();
        let ibox = InterfaceBuilder::new("IMailbox")
            .method("Scan", |m| m.output("segment", PType::Blob))
            .build();
        rt.registry()
            .register("MailShell", vec![ishell], ApiImports::GUI, |_, _| {
                Arc::new(Shell)
            });
        rt.registry()
            .register("MailIndex", vec![iindex], ApiImports::NONE, |_, _| {
                Arc::new(MailIndex)
            });
        rt.registry()
            .register("Mailbox", vec![ibox], ApiImports::STORAGE, |_, _| {
                Arc::new(Mailbox)
            });
    }
    fn scenarios(&self) -> Vec<&'static str> {
        vec!["m_read"]
    }
    fn run_scenario(&self, rt: &ComRuntime, _scenario: &str) -> ComResult<()> {
        let shell =
            rt.create_instance(Clsid::from_name("MailShell"), Iid::from_name("IMailShell"))?;
        shell.call(rt, 0, &mut Message::outputs(1))?;
        Ok(())
    }
    fn image(&self) -> AppImage {
        AppImage::new("mailapp.exe", vec![Clsid::from_name("MailShell")])
    }
}

fn main() {
    let app = MailApp;

    // 1. The binary rewriter instruments the application image: the Coign
    //    runtime goes into the first import slot, and a configuration
    //    record is appended.
    let mut image = app.image();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    rewriter::instrument(&mut image, &classifier);
    println!(
        "instrumented {}: imports = {:?}",
        image.name,
        image
            .imports
            .iter()
            .map(|i| i.name.as_str())
            .collect::<Vec<_>>()
    );

    // 2. Scenario-based profiling: run the instrumented application and
    //    summarize inter-component communication online.
    let run = profile_scenario(&app, "m_read", &classifier).expect("profiling");
    rewriter::accumulate_profile(&mut image, &run.profile).expect("accumulate");
    println!(
        "profiled m_read: {} messages, {} bytes, {} instances",
        run.profile.total_messages(),
        run.profile.total_bytes(),
        run.report.total_instances(),
    );

    // 3. The network profiler measures the target network; the analysis
    //    engine cuts the concrete ICC graph with lift-to-front min-cut.
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 40, 7);
    let record = rewriter::read_config(&image).expect("config record");
    let distribution: Distribution =
        choose_distribution(&app, &record.profile, &network).expect("analysis");
    println!(
        "distribution: {} classification(s) on the client, {} on the server \
         (predicted communication {:.1} ms)",
        distribution.count_on(MachineId::CLIENT),
        distribution.count_on(MachineId::SERVER),
        distribution.predicted_comm_us / 1000.0
    );

    // 4. The rewriter realizes the distribution: lightweight runtime in the
    //    import table, distribution in the configuration record.
    rewriter::realize(&mut image, &classifier, &distribution).expect("realize");
    println!(
        "realized: imports = {:?}",
        image
            .imports
            .iter()
            .map(|i| i.name.as_str())
            .collect::<Vec<_>>()
    );

    // 5. Run distributed: the component factory relocates instantiations,
    //    DCOM-style proxies carry cross-machine calls.
    let report = run_distributed(
        &app,
        "m_read",
        &classifier,
        &distribution,
        NetworkModel::ethernet_10baset(),
        42,
    )
    .expect("distributed run");
    println!(
        "distributed run: {} instance(s) on the server, {:.1} ms of communication, \
         {} cross-machine call(s)",
        report.server_instances(),
        report.stats.comm_us as f64 / 1000.0,
        report.stats.cross_machine_calls,
    );
    // The chatty index followed the mailbox to the server: the 50 header
    // queries cross the network instead of the mailbox scans.
    assert!(report.server_instances() >= 1);
}
